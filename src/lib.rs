//! Workspace root crate for the PGX.D distributed-sort reproduction.
//!
//! This crate only re-exports the member crates so that the `examples/`
//! and `tests/` directories at the workspace root can exercise the whole
//! stack through a single dependency. The actual implementation lives in:
//!
//! - [`pgxd`] — the distributed runtime simulator (machines, task manager,
//!   data manager, communication manager, collectives, metrics).
//! - [`pgxd_algos`] — single-machine sorting algorithms (parallel
//!   quicksort, balanced merge handler, TimSort, k-way merge, radix,
//!   bitonic).
//! - [`pgxd_core`] — the paper's contribution: the load-balanced
//!   distributed sample sort with the duplicate-splitter investigator.
//! - [`pgxd_datagen`] — workload generators (four key distributions,
//!   R-MAT graphs, CSR).
//! - [`pgxd_baselines`] — comparators (Spark-like sortByKey, distributed
//!   bitonic, partitioned radix, naive sample sort).
//! - [`pgxd_memtrack`] — tracking allocator for memory experiments.

#![forbid(unsafe_code)]

pub use pgxd;
pub use pgxd_algos;
pub use pgxd_baselines;
pub use pgxd_core;
pub use pgxd_datagen;
pub use pgxd_memtrack;
