//! Property-based integration tests: for *arbitrary* inputs, machine
//! counts, duplication levels, and configurations, every sorter must
//! produce a sorted permutation, the investigator must tile the input,
//! and provenance must be a bijection.

use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd_baselines::SparkEngine;
use pgxd_core::investigator::splitter_offsets_investigated;
use pgxd_core::{DistSorter, SortConfig};
use pgxd_datagen::partition_even;
use proptest::collection::vec as pvec;
use proptest::prelude::*;

fn sorted_copy(v: &[u64]) -> Vec<u64> {
    let mut s = v.to_vec();
    s.sort_unstable();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_sort_is_sorted_permutation(
        data in pvec(any::<u64>(), 0..3000),
        machines in 1usize..7,
        workers in 1usize..3,
    ) {
        let parts = partition_even(&data, machines);
        let expect = sorted_copy(&data);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(workers));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data);
        prop_assert_eq!(report.results.concat(), expect);
    }

    #[test]
    fn distributed_sort_heavy_duplicates(
        data in pvec(0u64..6, 0..3000),
        machines in 1usize..7,
    ) {
        let parts = partition_even(&data, machines);
        let expect = sorted_copy(&data);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(1));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data);
        prop_assert_eq!(report.results.concat(), expect);
    }

    #[test]
    fn spark_sim_is_sorted_permutation(
        data in pvec(any::<u64>(), 0..2000),
        machines in 1usize..6,
    ) {
        let parts = partition_even(&data, machines);
        let expect = sorted_copy(&data);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(1));
        let engine = SparkEngine::default();
        let report = cluster.run(|ctx| engine.sort_by_key(ctx, parts[ctx.id()].clone()).data);
        prop_assert_eq!(report.results.concat(), expect);
    }

    #[test]
    fn investigator_offsets_tile_any_sorted_input(
        mut data in pvec(0u64..50, 0..500),
        mut splitters in pvec(0u64..50, 0..12),
    ) {
        data.sort_unstable();
        splitters.sort_unstable();
        let offsets = splitter_offsets_investigated(&data, &splitters);
        prop_assert_eq!(offsets.len(), splitters.len() + 2);
        prop_assert_eq!(offsets[0], 0);
        prop_assert_eq!(*offsets.last().unwrap(), data.len());
        for w in offsets.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // Range contents respect the splitter order: everything sent to
        // destination j is <= everything sent to destination j+1.
        for j in 0..offsets.len() - 2 {
            let a = &data[offsets[j]..offsets[j + 1]];
            let b = &data[offsets[j + 1]..offsets[j + 2]];
            if let (Some(&amax), Some(&bmin)) = (a.last(), b.first()) {
                prop_assert!(amax <= bmin);
            }
        }
    }

    #[test]
    fn provenance_is_a_bijection(
        data in pvec(any::<u64>(), 1..1500),
        machines in 1usize..5,
    ) {
        let parts = partition_even(&data, machines);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(1));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| sorter.sort_keyed(ctx, &parts[ctx.id()]).data);
        let mut seen = std::collections::HashSet::new();
        let mut count = 0;
        for item in report.results.iter().flatten() {
            // Every provenance pair unique, every key correct.
            prop_assert!(seen.insert((item.origin, item.index)));
            prop_assert_eq!(parts[item.origin as usize][item.index as usize], item.key);
            count += 1;
        }
        prop_assert_eq!(count, data.len());
    }

    #[test]
    fn investigator_never_worse_balance_than_naive_on_uniform_splitters(
        data in pvec(0u64..8, 50..800),
        machines in 2usize..8,
    ) {
        // On heavily duplicated data, the investigator's max share must
        // not exceed the naive partitioner's max share.
        let mut sorted = data.clone();
        sorted.sort_unstable();
        // Build splitters the way the sort would: regular positions.
        let p = machines;
        let splitters: Vec<u64> =
            (0..p - 1).map(|j| sorted[(j + 1) * sorted.len() / p]).collect();
        let inv = splitter_offsets_investigated(&sorted, &splitters);
        let naive = pgxd_algos::search::naive_splitter_offsets(&sorted, &splitters);
        let max_share = |off: &[usize]| {
            off.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0)
        };
        prop_assert!(max_share(&inv) <= max_share(&naive));
    }

    #[test]
    fn batch_sort_each_batch_is_sorted_permutation(
        batch_a in pvec(any::<u64>(), 0..1200),
        batch_b in pvec(0u64..5, 0..1200),
        machines in 1usize..5,
    ) {
        let parts_a = partition_even(&batch_a, machines);
        let parts_b = partition_even(&batch_b, machines);
        let expect_a = sorted_copy(&batch_a);
        let expect_b = sorted_copy(&batch_b);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(1));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            let out = sorter.sort_batch(
                ctx,
                vec![parts_a[ctx.id()].clone(), parts_b[ctx.id()].clone()],
            );
            (out[0].data.clone(), out[1].data.clone())
        });
        let got_a: Vec<u64> = report.results.iter().flat_map(|(a, _)| a.clone()).collect();
        let got_b: Vec<u64> = report.results.iter().flat_map(|(_, b)| b.clone()).collect();
        prop_assert_eq!(got_a, expect_a);
        prop_assert_eq!(got_b, expect_b);
    }

    #[test]
    fn string_keys_sort_like_strings(
        words in pvec("[a-z]{0,12}", 0..600),
        machines in 1usize..5,
    ) {
        use pgxd_algos::FixedStr;
        let keys: Vec<FixedStr<12>> = words.iter().map(|w| FixedStr::new(w)).collect();
        let mut expect = keys.clone();
        expect.sort();
        let sorted = pgxd_core::sort_all(keys, machines, 1);
        prop_assert_eq!(sorted, expect);
    }

    #[test]
    fn sort_all_matches_std(data in pvec(any::<u64>(), 0..2000), machines in 1usize..6) {
        let expect = sorted_copy(&data);
        prop_assert_eq!(pgxd_core::sort_all(data, machines, 2), expect);
    }

    #[test]
    fn fault_plan_without_drops_is_output_equivalent(
        data in pvec(any::<u64>(), 0..2000),
        machines in 1usize..6,
        fault_seed in any::<u64>(),
        delay_permille in 0u32..400,
        reorder_permille in 0u32..600,
    ) {
        // Any drop-free fault plan only perturbs *timing* (send delays,
        // mailbox drain order); the sorted output must be identical to a
        // fault-free run on the same input. Drops are excluded here
        // because they are also output-equivalent only via redelivery,
        // which the chaos suite covers separately.
        use pgxd::FaultPlan;
        let parts = partition_even(&data, machines);
        let expect = sorted_copy(&data);
        let plan = FaultPlan::enabled(fault_seed)
            .chunk_delay(delay_permille, 50)
            .reorder(reorder_permille)
            .without_drops();
        let run = |plan: FaultPlan| {
            let cluster = Cluster::new(
                ClusterConfig::new(machines).workers_per_machine(2).fault(plan),
            );
            let sorter = DistSorter::default();
            let parts_ref = &parts;
            cluster.run(|ctx| sorter.sort(ctx, parts_ref[ctx.id()].clone()).data)
        };
        let faulted = run(plan);
        let clean = run(FaultPlan::disabled());
        prop_assert_eq!(&faulted.results.concat(), &expect);
        prop_assert_eq!(faulted.results, clean.results);
        prop_assert_eq!(faulted.comm.exchange.chunks_sent, clean.comm.exchange.chunks_sent);
    }

    #[test]
    fn sample_factor_sweep_stays_correct(
        data in pvec(any::<u64>(), 0..1200),
        factor_milli in 1u64..2000,
    ) {
        let machines = 4;
        let parts = partition_even(&data, machines);
        let expect = sorted_copy(&data);
        let config = SortConfig::default().sample_factor(factor_milli as f64 / 1000.0);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(1));
        let sorter = DistSorter::new(config);
        let report = cluster.run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data);
        prop_assert_eq!(report.results.concat(), expect);
    }
}
