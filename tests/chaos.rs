//! Chaos harness: the full distributed sort under the deterministic
//! fault-injection plane, across adversarial key distributions.
//!
//! Every cell of the plan × distribution matrix must produce exactly the
//! flat-sorted reference — faults may slow a run down or reorder its
//! mailbox, never corrupt it. Runs are seeded end to end: any failing cell
//! replays bit-identically from its `(plan seed, data seed)` pair. Clean
//! completion also implies protocol-checker quiescence (in debug builds
//! teardown panics on undelivered packets or leaked chunks).

use std::time::{Duration, Instant};

use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd::fault::FaultPlan;
use pgxd::trace::EventKind;
use pgxd::{RunErrorKind, TraceConfig};
use pgxd_core::DistSorter;
use pgxd_datagen::{generate_partitioned, partition_even, Distribution};

const MACHINES: usize = 4;
const N: usize = 6_000;

/// The adversarial input set: the two new chaos distributions plus the
/// classic pathological orders and a uniform control.
fn inputs(data_seed: u64) -> Vec<(&'static str, Vec<Vec<u64>>)> {
    let presorted: Vec<u64> = (0..N as u64).map(|i| i * 7).collect();
    let reversed: Vec<u64> = (0..N as u64).rev().map(|i| i * 7).collect();
    vec![
        (
            "skew-storm",
            generate_partitioned(Distribution::skew_storm(0.85), N, MACHINES, data_seed),
        ),
        (
            "duplicate-heavy",
            generate_partitioned(Distribution::duplicate_heavy(16), N, MACHINES, data_seed),
        ),
        ("pre-sorted", partition_even(&presorted, MACHINES)),
        ("reverse", partition_even(&reversed, MACHINES)),
        (
            "uniform",
            generate_partitioned(Distribution::Uniform, N, MACHINES, data_seed),
        ),
    ]
}

fn plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("delays", FaultPlan::delays(seed)),
        ("reorders", FaultPlan::reorders(seed)),
        ("drops", FaultPlan::drops(seed)),
        ("straggler", FaultPlan::straggler(seed, 1)),
        ("chaos", FaultPlan::chaos(seed)),
    ]
}

fn flat_sorted(parts: &[Vec<u64>]) -> Vec<u64> {
    let mut all: Vec<u64> = parts.concat();
    all.sort_unstable();
    all
}

fn sort_under(plan: FaultPlan, parts: &[Vec<u64>]) -> Vec<u64> {
    let cluster = Cluster::new(
        ClusterConfig::new(MACHINES)
            .workers_per_machine(2)
            .buffer_bytes(4096)
            .fault(plan),
    );
    let sorter = DistSorter::default();
    cluster
        .run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data)
        .results
        .concat()
}

#[test]
fn fault_matrix_sorts_exactly() {
    // 5 plans × 5 distributions = 25 cells, all seeded.
    for (dist_name, parts) in inputs(101) {
        let expect = flat_sorted(&parts);
        for (plan_name, plan) in plans(17) {
            let got = sort_under(plan, &parts);
            assert_eq!(
                got, expect,
                "cell plan={plan_name} dist={dist_name} corrupted the sort"
            );
        }
    }
}

#[test]
fn chaos_schedule_replays_from_its_seed() {
    // Same seed ⇒ same fault schedule ⇒ same verdict AND same traffic.
    let parts = generate_partitioned(Distribution::skew_storm(0.85), N, MACHINES, 5);
    let run = || {
        let cluster = Cluster::new(
            ClusterConfig::new(MACHINES)
                .workers_per_machine(2)
                .buffer_bytes(4096)
                .fault(FaultPlan::chaos(99)),
        );
        let sorter = DistSorter::default();
        let parts_ref = &parts;
        cluster.run(|ctx| sorter.sort(ctx, parts_ref[ctx.id()].clone()).data)
    };
    let a = run();
    let b = run();
    assert_eq!(a.results, b.results);
    assert_eq!(a.comm.bytes_sent, b.comm.bytes_sent);
    assert_eq!(a.comm.messages_sent, b.comm.messages_sent);
    assert_eq!(a.comm.exchange.chunks_sent, b.comm.exchange.chunks_sent);
}

#[test]
fn kill_mid_exchange_is_a_structured_error_not_a_hang() {
    // Machine 1 dies partway through the sort's exchange traffic; the run
    // must come back as a structured error within the step timeout, with
    // the checker reporting residue (not panicking) on the surviving
    // teardown path.
    let parts = generate_partitioned(Distribution::duplicate_heavy(64), N, MACHINES, 7);
    // Threshold 3 lands inside the exchange's count-phase all-gather
    // (p-1 = 3 mainline receives) no matter how skewed the data chunk
    // routing is, so the victim always dies mid-exchange.
    let plan = FaultPlan::chaos(31)
        .kill(1, 3)
        .step_timeout(Duration::from_secs(5));
    let cluster = Cluster::new(
        ClusterConfig::new(MACHINES)
            .workers_per_machine(2)
            .buffer_bytes(4096)
            .fault(plan),
    );
    let sorter = DistSorter::default();
    let parts_ref = &parts;
    let started = Instant::now();
    let err = cluster
        .try_run(|ctx| sorter.sort(ctx, parts_ref[ctx.id()].clone()).data)
        .expect_err("killed machine must fail the run");
    let elapsed = started.elapsed();
    assert_eq!(err.kind, RunErrorKind::InjectedKill);
    assert_eq!(err.machine, Some(1));
    assert!(
        elapsed < Duration::from_secs(60),
        "survivors must not hang; took {elapsed:?}"
    );
    if cfg!(debug_assertions) {
        assert!(err.residual.is_some(), "checker must report teardown residue");
    }
}

#[test]
fn hung_step_times_out_under_the_sorter_closure_shape() {
    // A machine that never reaches the collective converts the barrier
    // into a StepTimeout within the configured bound.
    let plan = FaultPlan::enabled(3).step_timeout(Duration::from_millis(250));
    let cluster = Cluster::new(ClusterConfig::new(3).fault(plan));
    let started = Instant::now();
    let err = cluster
        .try_run(|ctx| {
            if ctx.id() != 0 {
                ctx.barrier();
            }
        })
        .expect_err("must time out");
    assert_eq!(err.kind, RunErrorKind::StepTimeout);
    assert!(started.elapsed() < Duration::from_secs(10));
}

#[test]
fn traced_chaos_run_keeps_trace_invariants() {
    // Tracing and fault injection compose: no ring drops at this
    // capacity, and the trace's ChunkSend count must equal the stats
    // counter — the fault plane's park/flush path may not double-count.
    let parts = generate_partitioned(Distribution::skew_storm(0.7), N, MACHINES, 13);
    let cluster = Cluster::new(
        ClusterConfig::new(MACHINES)
            .workers_per_machine(2)
            .buffer_bytes(4096)
            .trace(TraceConfig::enabled().ring_capacity(1 << 16))
            .fault(FaultPlan::chaos(55)),
    );
    let sorter = DistSorter::default();
    let parts_ref = &parts;
    let report = cluster.run(|ctx| sorter.sort(ctx, parts_ref[ctx.id()].clone()).data);
    let expect = flat_sorted(&parts);
    assert_eq!(report.results.concat(), expect);
    let trace = report.trace.expect("tracing was enabled");
    assert_eq!(trace.dropped, 0, "ring capacity must hold the whole run");
    let chunk_sends = trace.events_of_kind(EventKind::ChunkSend).count() as u64;
    assert_eq!(chunk_sends, report.comm.exchange.chunks_sent);
}

#[test]
fn try_run_ok_carries_the_full_report() {
    let parts = generate_partitioned(Distribution::Uniform, N, MACHINES, 23);
    let cluster = Cluster::new(
        ClusterConfig::new(MACHINES)
            .workers_per_machine(2)
            .fault(FaultPlan::delays(77)),
    );
    let sorter = DistSorter::default();
    let parts_ref = &parts;
    let report = cluster
        .try_run(|ctx| sorter.sort(ctx, parts_ref[ctx.id()].clone()).data)
        .expect("benign plan must succeed");
    assert_eq!(report.results.concat(), flat_sorted(&parts));
    assert!(report.comm.bytes_sent > 0);
}
