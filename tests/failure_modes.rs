//! Failure and adversity injection: the sort must stay correct under
//! stragglers, extreme skew, degenerate data, and hostile configurations
//! (the asynchronous execution the paper touts must tolerate slow
//! machines without deadlock or data loss).

use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd_core::{DistSorter, SortConfig};
use pgxd_datagen::{generate_partitioned, partition_even, Distribution};
use std::time::Duration;

fn flat_sorted(parts: &[Vec<u64>]) -> Vec<u64> {
    let mut all: Vec<u64> = parts.concat();
    all.sort_unstable();
    all
}

#[test]
fn straggler_machine_does_not_break_the_sort() {
    // One machine enters every step late; the async exchange and the
    // mailbox must absorb the skew.
    let machines = 4;
    let parts = generate_partitioned(Distribution::Uniform, 8000, machines, 1);
    let expect = flat_sorted(&parts);
    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(1));
    let sorter = DistSorter::default();
    let report = cluster.run(|ctx| {
        if ctx.id() == 2 {
            std::thread::sleep(Duration::from_millis(30));
        }
        let out = sorter.sort(ctx, parts[ctx.id()].clone());
        if ctx.id() == 2 {
            std::thread::sleep(Duration::from_millis(10));
        }
        out.data
    });
    assert_eq!(report.results.concat(), expect);
}

#[test]
fn alternating_stragglers_across_repeated_sorts() {
    // Different machine lags in each of three consecutive sorts on the
    // same cluster run: collective sequence numbers must keep packets of
    // different rounds apart.
    let machines = 3;
    let rounds: Vec<Vec<Vec<u64>>> = (0..3)
        .map(|r| generate_partitioned(Distribution::Exponential, 3000, machines, r as u64 + 10))
        .collect();
    let expects: Vec<Vec<u64>> = rounds.iter().map(|p| flat_sorted(p)).collect();
    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(1));
    let sorter = DistSorter::default();
    let rounds_ref = &rounds;
    let report = cluster.run(|ctx| {
        let mut outs = Vec::new();
        for (r, round) in rounds_ref.iter().enumerate() {
            if ctx.id() == r % 3 {
                std::thread::sleep(Duration::from_millis(15));
            }
            outs.push(sorter.sort(ctx, round[ctx.id()].clone()).data);
        }
        outs
    });
    for r in 0..3 {
        let got: Vec<u64> = report
            .results
            .iter()
            .flat_map(|outs| outs[r].clone())
            .collect();
        assert_eq!(got, expects[r], "round {r}");
    }
}

#[test]
fn single_value_dataset_survives_every_config() {
    let machines = 6;
    let parts: Vec<Vec<u64>> = (0..machines).map(|_| vec![u64::MAX; 500]).collect();
    for investigator in [true, false] {
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let sorter = DistSorter::new(SortConfig::default().investigator(investigator));
        let report = cluster.run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data);
        let flat: Vec<u64> = report.results.concat();
        assert_eq!(flat.len(), machines * 500);
        assert!(flat.iter().all(|&x| x == u64::MAX));
    }
}

#[test]
fn extreme_key_values_roundtrip() {
    let machines = 3;
    let special = [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) - 1];
    let mut data = Vec::new();
    for i in 0..999u64 {
        data.push(special[i as usize % special.len()]);
    }
    let parts = partition_even(&data, machines);
    let expect = flat_sorted(&parts);
    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
    let sorter = DistSorter::default();
    let report = cluster.run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data);
    assert_eq!(report.results.concat(), expect);
}

#[test]
fn one_element_per_machine() {
    let machines = 5;
    let parts: Vec<Vec<u64>> = (0..machines).map(|m| vec![(machines - m) as u64]).collect();
    let expect = flat_sorted(&parts);
    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(4));
    let sorter = DistSorter::default();
    let report = cluster.run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data);
    assert_eq!(report.results.concat(), expect);
}

#[test]
fn pathological_buffer_of_one_element() {
    // 8-byte buffers: every exchanged key is its own packet.
    let machines = 3;
    let parts = generate_partitioned(Distribution::Normal, 1500, machines, 5);
    let expect = flat_sorted(&parts);
    let cluster = Cluster::new(
        ClusterConfig::new(machines)
            .workers_per_machine(1)
            .buffer_bytes(8),
    );
    let sorter = DistSorter::default();
    let report = cluster.run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data);
    assert_eq!(report.results.concat(), expect);
}

#[test]
fn oversubscribed_workers_are_safe() {
    // Far more workers than items: the clamps must keep chunking sane.
    let machines = 2;
    let parts = generate_partitioned(Distribution::Uniform, 200, machines, 6);
    let expect = flat_sorted(&parts);
    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(64));
    let sorter = DistSorter::default();
    let report = cluster.run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data);
    assert_eq!(report.results.concat(), expect);
}

#[test]
fn adversarial_presorted_shards_with_disjoint_ranges() {
    // Shards already range-partitioned in *reverse* machine order: the
    // sort must fully re-shuffle them.
    let machines = 4;
    let parts: Vec<Vec<u64>> = (0..machines)
        .map(|m| {
            let base = ((machines - 1 - m) * 10_000) as u64;
            (0..2500).map(|i| base + i).collect()
        })
        .collect();
    let expect = flat_sorted(&parts);
    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
    let sorter = DistSorter::default();
    let report = cluster.run(|ctx| {
        let part = sorter.sort(ctx, parts[ctx.id()].clone());
        let range = part.range().map(|(a, b)| (*a, *b));
        (part.data, range)
    });
    let flat: Vec<u64> = report.results.iter().flat_map(|(d, _)| d.clone()).collect();
    assert_eq!(flat, expect);
    // Machine 0 must now hold the smallest range (it originally held the
    // largest).
    let (_, first_range) = &report.results[0];
    assert_eq!(first_range.unwrap().0, 0);
}

#[test]
fn many_machines_tiny_data() {
    // More machines than elements.
    let machines = 12;
    let data: Vec<u64> = (0..7).rev().collect();
    let parts = partition_even(&data, machines);
    let expect = flat_sorted(&parts);
    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(1));
    let sorter = DistSorter::default();
    let report = cluster.run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data);
    assert_eq!(report.results.concat(), expect);
}
