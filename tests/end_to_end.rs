//! Cross-crate integration tests: every distributed sorter against a flat
//! `std` sort, on every distribution, across machine counts, plus
//! cross-system agreement.

use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd_baselines::bitonic::bitonic_sort_dist;
use pgxd_baselines::radix::radix_sort_dist;
use pgxd_baselines::SparkEngine;
use pgxd_core::{DistSorter, SortConfig};
use pgxd_datagen::{generate_partitioned, partition_even, twitter_like_keys, Distribution};

fn flat_sorted(parts: &[Vec<u64>]) -> Vec<u64> {
    let mut all: Vec<u64> = parts.concat();
    all.sort_unstable();
    all
}

#[test]
fn pgxd_sort_matches_std_all_distributions_and_machine_counts() {
    for dist in Distribution::ALL {
        for machines in [1usize, 2, 5, 9] {
            let parts = generate_partitioned(dist, 12_000, machines, 1);
            let expect = flat_sorted(&parts);
            let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
            let sorter = DistSorter::default();
            let report = cluster.run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data);
            assert_eq!(
                report.results.concat(),
                expect,
                "{} p={machines}",
                dist.name()
            );
        }
    }
}

#[test]
fn all_systems_agree_on_the_same_input() {
    let machines = 4;
    let parts = generate_partitioned(Distribution::RightSkewed, 16_000, machines, 2);
    let expect = flat_sorted(&parts);

    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));

    let sorter = DistSorter::default();
    let pgxd_out = cluster
        .run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data)
        .results
        .concat();

    let engine = SparkEngine::default();
    let spark_out = cluster
        .run(|ctx| engine.sort_by_key(ctx, parts[ctx.id()].clone()).data)
        .results
        .concat();

    let bitonic_out = cluster
        .run(|ctx| bitonic_sort_dist(ctx, parts[ctx.id()].clone()))
        .results
        .concat();

    let radix_out = cluster
        .run(|ctx| radix_sort_dist(ctx, parts[ctx.id()].clone()))
        .results
        .concat();

    assert_eq!(pgxd_out, expect);
    assert_eq!(spark_out, expect);
    assert_eq!(bitonic_out, expect);
    assert_eq!(radix_out, expect);
}

#[test]
fn twitter_like_workload_end_to_end() {
    let machines = 6;
    let keys = twitter_like_keys(12, 8, 3);
    let parts = partition_even(&keys, machines);
    let expect = flat_sorted(&parts);
    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
    let sorter = DistSorter::default();
    let report = cluster.run(|ctx| {
        let part = sorter.sort(ctx, parts[ctx.id()].clone());
        let range = part.range().map(|(a, b)| (*a, *b));
        (part.data, range)
    });
    let flat: Vec<u64> = report.results.iter().flat_map(|(d, _)| d.clone()).collect();
    assert_eq!(flat, expect);
    // Table III property: ranges ascend with machine id.
    let ranges = pgxd_core::RangeStats::new(report.results.iter().map(|(_, r)| *r).collect());
    assert!(ranges.is_ascending());
}

#[test]
fn pgxd_beats_spark_on_load_balance_for_duplicates() {
    // Not a timing test (single-core CI) — a *balance* test: on heavily
    // duplicated data the investigator keeps loads even where Spark's
    // range partitioner collapses.
    let machines = 8;
    let parts: Vec<Vec<u64>> = (0..machines).map(|_| vec![77u64; 2000]).collect();
    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(1));

    let sorter = DistSorter::default();
    let pgxd_sizes: Vec<usize> = cluster
        .run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).len())
        .results;

    let engine = SparkEngine::default();
    let spark_sizes: Vec<usize> = cluster
        .run(|ctx| engine.sort_by_key(ctx, parts[ctx.id()].clone()).data.len())
        .results;

    let pgxd_stats = pgxd_core::LoadStats::new(pgxd_sizes);
    let spark_stats = pgxd_core::LoadStats::new(spark_sizes);
    assert_eq!(pgxd_stats.load_difference(), 0, "{:?}", pgxd_stats.counts);
    assert_eq!(
        spark_stats.max(),
        machines * 2000,
        "{:?}",
        spark_stats.counts
    );
}

#[test]
fn uneven_input_shards_still_sort() {
    // One machine holds 90% of the input; the sort must rebalance it.
    let machines = 4;
    let big = generate_partitioned(Distribution::Uniform, 18_000, 1, 5).pop().unwrap();
    let small = generate_partitioned(Distribution::Uniform, 2_000, 3, 6);
    let mut parts = vec![big];
    parts.extend(small);
    let expect = flat_sorted(&parts);

    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
    let sorter = DistSorter::default();
    let report = cluster.run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data);
    assert_eq!(report.results.concat(), expect);
    // Output is rebalanced even though input was 90/10.
    let sizes: Vec<usize> = report.results.iter().map(|r| r.len()).collect();
    let max = *sizes.iter().max().unwrap();
    assert!(max < 9 * 20_000 / 10, "not rebalanced: {sizes:?}");
}

#[test]
fn some_machines_start_empty() {
    let machines = 5;
    let mut parts = vec![Vec::new(); machines];
    parts[2] = generate_partitioned(Distribution::Normal, 10_000, 1, 7).pop().unwrap();
    let expect = flat_sorted(&parts);
    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
    let sorter = DistSorter::default();
    let report = cluster.run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data);
    assert_eq!(report.results.concat(), expect);
}

#[test]
fn presorted_and_reversed_inputs() {
    let machines = 3;
    let asc: Vec<u64> = (0..9000).collect();
    let desc: Vec<u64> = (0..9000).rev().collect();
    for input in [asc, desc] {
        let parts = partition_even(&input, machines);
        let expect = flat_sorted(&parts);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data);
        assert_eq!(report.results.concat(), expect);
    }
}

#[test]
fn repeated_sorts_on_one_cluster_are_independent() {
    // Two sorts back-to-back inside the same SPMD closure: collective
    // sequencing must keep their traffic separate.
    let machines = 3;
    let parts_a = generate_partitioned(Distribution::Uniform, 6000, machines, 8);
    let parts_b = generate_partitioned(Distribution::Exponential, 6000, machines, 9);
    let expect_a = flat_sorted(&parts_a);
    let expect_b = flat_sorted(&parts_b);
    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
    let sorter = DistSorter::default();
    let report = cluster.run(|ctx| {
        let a = sorter.sort(ctx, parts_a[ctx.id()].clone()).data;
        let b = sorter.sort(ctx, parts_b[ctx.id()].clone()).data;
        (a, b)
    });
    let got_a: Vec<u64> = report.results.iter().flat_map(|(a, _)| a.clone()).collect();
    let got_b: Vec<u64> = report.results.iter().flat_map(|(_, b)| b.clone()).collect();
    assert_eq!(got_a, expect_a);
    assert_eq!(got_b, expect_b);
}

#[test]
fn tiny_buffer_sizes_exercise_chunked_exchange() {
    // 128-byte buffers force the exchange through many chunks.
    let machines = 4;
    let parts = generate_partitioned(Distribution::Uniform, 8000, machines, 10);
    let expect = flat_sorted(&parts);
    let cluster = Cluster::new(
        ClusterConfig::new(machines)
            .workers_per_machine(2)
            .buffer_bytes(128),
    );
    let sorter = DistSorter::default();
    let report = cluster.run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data);
    assert_eq!(report.results.concat(), expect);
    assert!(report.comm.messages_sent > 100, "{:?}", report.comm);
}

#[test]
fn workers_sweep_does_not_change_results() {
    let machines = 3;
    let parts = generate_partitioned(Distribution::Normal, 9000, machines, 11);
    let expect = flat_sorted(&parts);
    for workers in [1usize, 2, 4] {
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(workers));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data);
        assert_eq!(report.results.concat(), expect, "workers={workers}");
    }
}

#[test]
fn sort_config_matrix_all_correct() {
    let machines = 4;
    let parts = generate_partitioned(Distribution::Exponential, 8000, machines, 12);
    let expect = flat_sorted(&parts);
    for investigator in [true, false] {
        for balanced in [true, false] {
            for algo in [
                pgxd_core::LocalSortAlgo::ParallelQuicksort,
                pgxd_core::LocalSortAlgo::Timsort,
                pgxd_core::LocalSortAlgo::SuperScalarSampleSort,
            ] {
                let config = SortConfig::default()
                    .investigator(investigator)
                    .balanced_final_merge(balanced)
                    .local_sort(algo);
                let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
                let sorter = DistSorter::new(config);
                let report =
                    cluster.run(|ctx| sorter.sort(ctx, parts[ctx.id()].clone()).data);
                assert_eq!(
                    report.results.concat(),
                    expect,
                    "inv={investigator} bal={balanced} algo={algo:?}"
                );
            }
        }
    }
}
