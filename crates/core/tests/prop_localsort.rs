//! Property tests for the local-sort path: every [`LocalSortAlgo`]
//! variant (and every [`FinalMergeAlgo`]) must produce the same globally
//! sorted permutation as `sort_unstable`, across uniform, skew-storm
//! (one hot key dominating a uniform tail) and duplicate-heavy (tiny key
//! domain) data, plus the empty/single/all-equal edge cases.

use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd_core::{DistSorter, FinalMergeAlgo, LocalSortAlgo, SortConfig};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Runs the full distributed sort over `machines` shards of `data` with
/// the given config and returns the concatenated global output.
fn dist_sort(data: &[u64], machines: usize, workers: usize, config: SortConfig) -> Vec<u64> {
    let bounds = pgxd_algos::exec::even_chunk_bounds(data.len(), machines);
    let shards: Vec<Vec<u64>> = bounds
        .windows(2)
        .map(|w| data[w[0]..w[1]].to_vec())
        .collect();
    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(workers));
    let sorter = DistSorter::new(config);
    let report = cluster.run(|ctx| sorter.sort(ctx, shards[ctx.id()].clone()).data);
    report.results.concat()
}

fn sorted_copy(v: &[u64]) -> Vec<u64> {
    let mut s = v.to_vec();
    s.sort_unstable();
    s
}

/// Uniform keys over the full u64 domain.
fn uniform(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    pvec(any::<u64>(), 0..max_len)
}

/// Skew storm: one hot key claims most slots, a uniform tail the rest —
/// the distribution that collapses naive sample sort (Fig. 3b).
fn skew_storm(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    pvec(
        prop_oneof![4 => Just(0xdead_beefu64), 1 => any::<u64>()],
        0..max_len,
    )
}

/// Duplicate heavy: keys drawn from a tiny domain, so every splitter is a
/// duplicate and the investigator must split equal-key ranges.
fn duplicate_heavy(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    pvec(0u64..4, 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_local_algo_matches_std_uniform(v in uniform(4000)) {
        let expect = sorted_copy(&v);
        for algo in LocalSortAlgo::ALL {
            let got = dist_sort(&v, 3, 2, SortConfig::default().local_sort(algo));
            prop_assert_eq!(&got, &expect, "algo {}", algo.name());
        }
    }

    #[test]
    fn every_local_algo_matches_std_skew_storm(v in skew_storm(4000)) {
        let expect = sorted_copy(&v);
        for algo in LocalSortAlgo::ALL {
            let got = dist_sort(&v, 3, 2, SortConfig::default().local_sort(algo));
            prop_assert_eq!(&got, &expect, "algo {}", algo.name());
        }
    }

    #[test]
    fn every_local_algo_matches_std_duplicate_heavy(v in duplicate_heavy(4000)) {
        let expect = sorted_copy(&v);
        for algo in LocalSortAlgo::ALL {
            let got = dist_sort(&v, 3, 2, SortConfig::default().local_sort(algo));
            prop_assert_eq!(&got, &expect, "algo {}", algo.name());
        }
    }

    #[test]
    fn every_final_merge_matches_std(v in uniform(4000)) {
        let expect = sorted_copy(&v);
        for merge in [
            FinalMergeAlgo::Balanced,
            FinalMergeAlgo::SequentialKway,
            FinalMergeAlgo::ParallelKway,
        ] {
            let got = dist_sort(
                &v,
                3,
                2,
                SortConfig::default()
                    .local_sort(LocalSortAlgo::InPlaceSampleSort)
                    .final_merge(merge),
            );
            prop_assert_eq!(&got, &expect, "final merge {}", merge.name());
        }
    }
}

#[test]
fn every_local_algo_handles_edge_inputs() {
    let cases: [Vec<u64>; 4] = [
        Vec::new(),
        vec![42],
        vec![7; 500],
        (0..17u64).rev().collect(),
    ];
    for algo in LocalSortAlgo::ALL {
        for case in &cases {
            let expect = sorted_copy(case);
            let got = dist_sort(case, 3, 2, SortConfig::default().local_sort(algo));
            assert_eq!(got, expect, "algo {} on {case:?}", algo.name());
        }
    }
}
