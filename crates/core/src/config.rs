//! Configuration of the distributed sort.
//!
//! The defaults are the paper's choices: buffer-sized sampling
//! (`X = 256 KiB / p` per machine, §IV-B), the duplicate-splitter
//! investigator enabled, parallel quicksort for the local sort, and the
//! Fig. 2 balanced merge for both the local and the final merge. Every
//! knob exists because an experiment or ablation in DESIGN.md sweeps it.

/// Which algorithm sorts each machine's data locally (step 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalSortAlgo {
    /// The paper's choice: per-worker quicksort + balanced merge handler.
    ParallelQuicksort,
    /// TimSort (what Spark uses) — for like-for-like local-sort ablations.
    Timsort,
    /// Super scalar sample sort (the paper's reference \[21\]) — the
    /// cache/branch-friendly sample-sort kernel, as a local-sort ablation.
    SuperScalarSampleSort,
    /// ips4o-style in-place parallel samplesort: the same splitter-tree
    /// classification as [`SuperScalarSampleSort`](Self::SuperScalarSampleSort)
    /// but permuting constant-memory bucket blocks in place — the fast
    /// comparison path.
    InPlaceSampleSort,
    /// LSD radix fast path for radix-capable key types (u64/u32/i64);
    /// silently falls back to [`InPlaceSampleSort`](Self::InPlaceSampleSort)
    /// for key types without a radix image.
    Radix,
    /// Pick automatically: radix for radix-capable keys past
    /// [`AUTO_RADIX_MIN`] elements per machine, in-place samplesort
    /// otherwise.
    Auto,
}

/// Below this per-machine element count, `LocalSortAlgo::Auto` prefers the
/// comparison path even for radix-capable keys: at small `n` the fixed
/// 8-pass cost of LSD radix dominates the `n log n` advantage.
pub const AUTO_RADIX_MIN: usize = 1 << 16;

impl LocalSortAlgo {
    /// Every variant, for sweeps and benches.
    pub const ALL: [LocalSortAlgo; 6] = [
        LocalSortAlgo::ParallelQuicksort,
        LocalSortAlgo::Timsort,
        LocalSortAlgo::SuperScalarSampleSort,
        LocalSortAlgo::InPlaceSampleSort,
        LocalSortAlgo::Radix,
        LocalSortAlgo::Auto,
    ];

    /// Stable short name (bench tables, JSON results).
    pub fn name(self) -> &'static str {
        match self {
            LocalSortAlgo::ParallelQuicksort => "pquick",
            LocalSortAlgo::Timsort => "timsort",
            LocalSortAlgo::SuperScalarSampleSort => "ssss",
            LocalSortAlgo::InPlaceSampleSort => "ipssort",
            LocalSortAlgo::Radix => "radix",
            LocalSortAlgo::Auto => "auto",
        }
    }
}

/// Which algorithm combines the per-source sorted runs in step 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalMergeAlgo {
    /// The paper's Fig. 2 balanced pairwise merge tree (default).
    Balanced,
    /// Sequential loser-tree k-way merge (ablation baseline).
    SequentialKway,
    /// Splitter-planned parallel k-way merge: one pass over the data,
    /// output split across workers by binary-searched splitter ranges.
    ParallelKway,
}

impl FinalMergeAlgo {
    /// Stable short name (bench tables, JSON results).
    pub fn name(self) -> &'static str {
        match self {
            FinalMergeAlgo::Balanced => "balanced",
            FinalMergeAlgo::SequentialKway => "kway",
            FinalMergeAlgo::ParallelKway => "par_kway",
        }
    }
}

/// Tuning knobs for [`DistSorter`](crate::DistSorter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SortConfig {
    /// Multiplier on the paper's sample size `X = buffer_bytes / p`.
    /// Fig. 9 sweeps {0.004, 0.04, 0.4, 1, 1.004, 1.04, 1.4}.
    pub sample_factor: f64,
    /// If set, overrides the buffer-sized rule with an absolute per-machine
    /// sample count.
    pub fixed_samples_per_machine: Option<usize>,
    /// Enable the duplicate-splitter investigator (§IV-B, Fig. 3c).
    /// Disabling reverts to naive `upper_bound` partitioning (Fig. 3b) —
    /// the load-imbalance ablation.
    pub investigator: bool,
    /// Final-merge strategy for step 6.
    pub final_merge: FinalMergeAlgo,
    /// Local sort algorithm for step 1.
    pub local_sort: LocalSortAlgo,
}

impl Default for SortConfig {
    fn default() -> Self {
        SortConfig {
            sample_factor: 1.0,
            fixed_samples_per_machine: None,
            investigator: true,
            final_merge: FinalMergeAlgo::Balanced,
            local_sort: LocalSortAlgo::ParallelQuicksort,
        }
    }
}

impl SortConfig {
    /// Paper defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the Fig. 9 sample-size factor.
    pub fn sample_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "sample factor must be positive");
        self.sample_factor = factor;
        self
    }

    /// Overrides the buffer-sized sampling rule with a fixed count.
    pub fn fixed_samples(mut self, count: usize) -> Self {
        self.fixed_samples_per_machine = Some(count);
        self
    }

    /// Toggles the duplicate-splitter investigator.
    pub fn investigator(mut self, on: bool) -> Self {
        self.investigator = on;
        self
    }

    /// Toggles the balanced final merge: `true` is the Fig. 2 tree,
    /// `false` the sequential k-way ablation. Kept for the pre-existing
    /// boolean ablation surface; [`Self::final_merge`] selects among all
    /// strategies.
    pub fn balanced_final_merge(mut self, on: bool) -> Self {
        self.final_merge = if on {
            FinalMergeAlgo::Balanced
        } else {
            FinalMergeAlgo::SequentialKway
        };
        self
    }

    /// Selects the final-merge strategy.
    pub fn final_merge(mut self, algo: FinalMergeAlgo) -> Self {
        self.final_merge = algo;
        self
    }

    /// Selects the local sort algorithm.
    pub fn local_sort(mut self, algo: LocalSortAlgo) -> Self {
        self.local_sort = algo;
        self
    }

    /// Samples each machine contributes: the §IV-B rule
    /// `factor · (buffer_bytes / p) / key_size`, at least 1 (when any data
    /// exists), or the fixed override.
    pub fn samples_per_machine(&self, buffer_bytes: usize, p: usize, key_size: usize) -> usize {
        if let Some(fixed) = self.fixed_samples_per_machine {
            return fixed;
        }
        let x_bytes = buffer_bytes as f64 / p.max(1) as f64;
        let samples = (self.sample_factor * x_bytes / key_size.max(1) as f64).round() as usize;
        samples.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rule_x_for_u64() {
        let cfg = SortConfig::default();
        // 256 KiB / 8 machines / 8-byte keys = 4096 samples.
        assert_eq!(cfg.samples_per_machine(256 * 1024, 8, 8), 4096);
        // More machines ⇒ fewer samples each, same master total.
        assert_eq!(cfg.samples_per_machine(256 * 1024, 32, 8), 1024);
    }

    #[test]
    fn factor_scales_linearly() {
        let small = SortConfig::default().sample_factor(0.004);
        let big = SortConfig::default().sample_factor(1.4);
        let base = SortConfig::default();
        let b = base.samples_per_machine(256 * 1024, 8, 8);
        assert_eq!(small.samples_per_machine(256 * 1024, 8, 8), 16);
        assert_eq!(big.samples_per_machine(256 * 1024, 8, 8), (b as f64 * 1.4) as usize);
    }

    #[test]
    fn fixed_override_wins() {
        let cfg = SortConfig::default().fixed_samples(77);
        assert_eq!(cfg.samples_per_machine(256 * 1024, 8, 8), 77);
    }

    #[test]
    fn never_zero_samples() {
        let cfg = SortConfig::default().sample_factor(1e-9);
        assert_eq!(cfg.samples_per_machine(256 * 1024, 64, 8), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_rejected() {
        let _ = SortConfig::default().sample_factor(0.0);
    }

    #[test]
    fn balanced_final_merge_bool_maps_to_enum() {
        assert_eq!(
            SortConfig::default().balanced_final_merge(true).final_merge,
            FinalMergeAlgo::Balanced
        );
        assert_eq!(
            SortConfig::default().balanced_final_merge(false).final_merge,
            FinalMergeAlgo::SequentialKway
        );
        assert_eq!(
            SortConfig::default()
                .final_merge(FinalMergeAlgo::ParallelKway)
                .final_merge,
            FinalMergeAlgo::ParallelKway
        );
    }

    #[test]
    fn algo_names_are_unique() {
        let mut names: Vec<&str> = LocalSortAlgo::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LocalSortAlgo::ALL.len());
    }
}
