//! A distributed vector facade — the user-level handle §III promises
//! ("user can also easily sort data of their multiple graphs … retrieving
//! top values from their graph data or implementing binary search on the
//! sorted data"), wrapping one machine's shard plus the collective
//! queries over the whole.
//!
//! SPMD like everything else: every machine holds its own [`DistVec`] and
//! all machines must make the same sequence of collective calls.

use crate::api;
use crate::sorter::{DistSorter, SortedPartition};
use pgxd::machine::MachineCtx;
use pgxd_algos::Key;

/// One machine's handle on a cluster-wide vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistVec<K> {
    local: Vec<K>,
    /// Set after a successful [`DistVec::sort`]; rank/range queries
    /// require it.
    sorted: bool,
    /// Splitters from the last sort (empty before sorting).
    splitters: Vec<K>,
}

impl<K: Key> DistVec<K> {
    /// Wraps this machine's shard of an unsorted distributed vector.
    pub fn from_local(local: Vec<K>) -> Self {
        DistVec {
            local,
            sorted: false,
            splitters: Vec::new(),
        }
    }

    /// Adopts an already-sorted partition (e.g. from
    /// [`DistSorter::sort`]).
    pub fn from_sorted(part: SortedPartition<K>) -> Self {
        DistVec {
            local: part.data,
            sorted: true,
            splitters: part.splitters,
        }
    }

    /// This machine's shard.
    pub fn local(&self) -> &[K] {
        &self.local
    }

    /// Number of elements on this machine.
    pub fn local_len(&self) -> usize {
        self.local.len()
    }

    /// `true` once globally sorted.
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Collective: total elements across the cluster.
    pub fn global_len(&self, ctx: &mut MachineCtx) -> usize {
        ctx.all_gather(vec![self.local.len()])
            .into_iter()
            .map(|v| v[0])
            .sum()
    }

    /// Collective: sorts the distributed vector in place (every machine's
    /// shard is replaced by its slice of the global order).
    pub fn sort(&mut self, ctx: &mut MachineCtx, sorter: &DistSorter) {
        let data = std::mem::take(&mut self.local);
        let part = sorter.sort(ctx, data);
        self.local = part.data;
        self.splitters = part.splitters;
        self.sorted = true;
    }

    /// Collective: global minimum (None when empty). Works unsorted.
    pub fn global_min(&self, ctx: &mut MachineCtx) -> Option<K> {
        let mine = self.local.iter().copied().min();
        ctx.all_gather(vec![mine]).into_iter().flat_map(|v| v[0]).min()
    }

    /// Collective: global maximum (None when empty). Works unsorted.
    pub fn global_max(&self, ctx: &mut MachineCtx) -> Option<K> {
        let mine = self.local.iter().copied().max();
        ctx.all_gather(vec![mine]).into_iter().flat_map(|v| v[0]).max()
    }

    /// Collective: the element at global rank `rank` of the sorted order.
    ///
    /// # Panics
    /// If the vector has not been sorted yet.
    pub fn get_rank(&self, ctx: &mut MachineCtx, rank: usize) -> Option<K> {
        let part = self.as_partition();
        api::select_rank(ctx, &part, rank)
    }

    /// Collective: how many elements are `< key` and `<= key` globally
    /// (the distributed binary search).
    ///
    /// # Panics
    /// If the vector has not been sorted yet.
    pub fn rank_of(&self, ctx: &mut MachineCtx, key: &K) -> (usize, usize) {
        let part = self.as_partition();
        api::global_rank(ctx, &part, key)
    }

    /// Collective: `true` if `key` exists anywhere in the vector.
    ///
    /// # Panics
    /// If the vector has not been sorted yet.
    pub fn contains(&self, ctx: &mut MachineCtx, key: &K) -> bool {
        let (lo, hi) = self.rank_of(ctx, key);
        hi > lo
    }

    /// Collective: the `k` largest elements, on the master (None
    /// elsewhere).
    ///
    /// # Panics
    /// If the vector has not been sorted yet.
    pub fn top_k(&self, ctx: &mut MachineCtx, k: usize) -> Option<Vec<K>> {
        let part = self.as_partition();
        api::top_k(ctx, &part, k)
    }

    /// Collective: gathers the whole vector onto the master in global
    /// order (None elsewhere). Only sensible for small results.
    ///
    /// # Panics
    /// If the vector has not been sorted yet (unsorted shards have no
    /// meaningful global order to concatenate).
    pub fn collect_to_master(&self, ctx: &mut MachineCtx) -> Option<Vec<K>> {
        assert!(self.sorted, "collect_to_master requires a sorted DistVec");
        ctx.gather_to_master(self.local.clone())
            .map(|parts| parts.concat())
    }

    fn as_partition(&self) -> SortedPartition<K> {
        assert!(self.sorted, "operation requires a sorted DistVec");
        SortedPartition {
            data: self.local.clone(),
            splitters: self.splitters.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgxd::cluster::{Cluster, ClusterConfig};
    use pgxd_datagen::{generate_partitioned, Distribution};

    #[test]
    fn full_lifecycle() {
        let machines = 4;
        let parts = generate_partitioned(Distribution::Uniform, 8000, machines, 61);
        let mut flat: Vec<u64> = parts.concat();
        flat.sort_unstable();
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let sorter = DistSorter::default();
        let parts_ref = &parts;
        let flat_ref = &flat;
        let report = cluster.run(|ctx| {
            let mut dv = DistVec::from_local(parts_ref[ctx.id()].clone());
            assert!(!dv.is_sorted());
            assert_eq!(dv.global_len(ctx), 8000);
            assert_eq!(dv.global_min(ctx), Some(flat_ref[0]));
            assert_eq!(dv.global_max(ctx), Some(*flat_ref.last().unwrap()));

            dv.sort(ctx, &sorter);
            assert!(dv.is_sorted());

            let median = dv.get_rank(ctx, 4000).unwrap();
            let (lo, hi) = dv.rank_of(ctx, &median);
            assert!(lo <= 4000 && 4000 < hi.max(lo + 1));
            assert!(dv.contains(ctx, &median));
            assert!(!dv.contains(ctx, &u64::MAX));

            let top = dv.top_k(ctx, 3);
            let all = dv.collect_to_master(ctx);
            (median, top, all)
        });
        let (median, top, all) = &report.results[0];
        assert_eq!(*median, flat[4000]);
        assert_eq!(top.as_ref().unwrap()[0], *flat.last().unwrap());
        assert_eq!(all.as_ref().unwrap(), &flat);
        // Non-masters got None for master-rooted queries.
        assert!(report.results[1].1.is_none());
        assert!(report.results[1].2.is_none());
    }

    #[test]
    fn from_sorted_adopts_partition() {
        let machines = 2;
        let parts = generate_partitioned(Distribution::Normal, 2000, machines, 63);
        let cluster = Cluster::new(ClusterConfig::new(machines));
        let sorter = DistSorter::default();
        let parts_ref = &parts;
        let report = cluster.run(|ctx| {
            let part = sorter.sort(ctx, parts_ref[ctx.id()].clone());
            let dv = DistVec::from_sorted(part);
            assert!(dv.is_sorted());
            dv.global_len(ctx)
        });
        assert!(report.results.iter().all(|&n| n == 2000));
    }

    #[test]
    fn empty_distvec_queries() {
        let cluster = Cluster::new(ClusterConfig::new(3));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            let mut dv = DistVec::from_local(Vec::<u64>::new());
            assert_eq!(dv.global_len(ctx), 0);
            assert_eq!(dv.global_min(ctx), None);
            dv.sort(ctx, &sorter);
            dv.get_rank(ctx, 0)
        });
        assert!(report.results.iter().all(|r| r.is_none()));
    }
}
