//! The duplicate-splitter **investigator** (§IV-B, Fig. 3) — the paper's
//! load-balancing contribution.
//!
//! Step 4 turns the `p − 1` splitters into `p` contiguous send ranges of
//! the locally sorted data. With distinct splitters a binary search per
//! splitter suffices (Fig. 3a). When the input contains many duplicated
//! entries the splitters themselves repeat, and the naive search maps the
//! whole run of equal keys to one destination while the destinations
//! "between" equal splitters receive nothing (Fig. 3b) — the imbalance the
//! paper measures.
//!
//! The investigator (Fig. 3c) executes the binary search once per
//! *distinct* splitter value and divides the equal-key run among the
//! destinations the duplicated splitter spans. The division is anchored
//! at the regular positions `(j+1)·len/p` (clamped into the run): when
//! the duplicated splitters fall wholly inside one value's run — the
//! Fig. 3c picture — consecutive cuts are exactly `len/p` apart, i.e.
//! the range is divided *equally* between the duplicated splitters, and
//! the cuts also coincide with the ideal global quantile boundaries.
//! Anchoring (rather than naive equal division of the run) matters when
//! two duplicate groups are adjacent and share a destination: equal
//! division would hand that destination the tail of one run *plus* the
//! head of the next, re-creating imbalance. Because splitters are drawn
//! at regular sample positions, every machine cuts at the same
//! fractions, and the global share of the duplicated key comes out even
//! — this is what produces the "exact equal sized 9.998%" rows of
//! Table II.

use pgxd_algos::search::{lower_bound, upper_bound};
use pgxd_algos::Key;

/// Computes the `p + 1` send offsets for sorted `data` under sorted
/// `splitters` (`p − 1` of them), with duplicate-splitter investigation.
///
/// Destination `j` receives `data[offsets[j]..offsets[j+1]]`.
// analyze: allow(hot-path-alloc): O(p) offset vector — the partition
// decision itself, produced once per exchange round.
pub fn splitter_offsets_investigated<K: Key>(data: &[K], splitters: &[K]) -> Vec<usize> {
    debug_assert!(data.windows(2).all(|w| w[0] <= w[1]), "data must be sorted");
    debug_assert!(
        splitters.windows(2).all(|w| w[0] <= w[1]),
        "splitters must be sorted"
    );
    let p = splitters.len() + 1;
    let mut offsets = vec![0usize; p + 1];
    offsets[p] = data.len();

    let mut i = 0;
    while i < splitters.len() {
        let value = splitters[i];
        // Count the run of equal splitters [i, i + m).
        let mut m = 1;
        while i + m < splitters.len() && splitters[i + m] == value {
            m += 1;
        }
        // One equal-range search per distinct splitter value; its
        // boundaries are then cut at the regular targets (j+1)·len/p,
        // clamped into the run. For a splitter whose value is (locally)
        // unique the run is a single slot and the clamp reproduces the
        // plain binary search of Fig. 3a; for a duplicated splitter the
        // consecutive targets divide the run equally between the
        // duplicates (Fig. 3c); and for a *distinct* splitter sitting on
        // a massive equal-key run the clamp still cuts the run at the
        // ideal boundary instead of shipping it wholesale — the same
        // investigation, applied once instead of m times.
        let lo = lower_bound(data, &value);
        let hi = upper_bound(data, &value);
        for k in 0..m {
            let j = i + k; // boundary between destinations j and j+1
            let ideal = (j + 1) * data.len() / p;
            offsets[j + 1] = ideal.clamp(lo, hi);
        }
        // Destination i+m's upper boundary is set by the next distinct
        // splitter (or the end of data); its share of the run is the
        // remainder above offsets[i+m].
        i += m;
    }
    // Monotonicity can only break if splitters were unsorted (guarded by
    // the debug assertion); cheap final check in debug builds.
    debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "{offsets:?}");
    offsets
}

/// Dispatch helper: investigated or naive (Fig. 3b) offsets. The naive
/// path exists as the ablation baseline.
pub fn splitter_offsets<K: Key>(data: &[K], splitters: &[K], investigator: bool) -> Vec<usize> {
    if investigator {
        splitter_offsets_investigated(data, splitters)
    } else {
        pgxd_algos::search::naive_splitter_offsets(data, splitters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_tiles(data: &[u64], offsets: &[usize], p: usize) {
        assert_eq!(offsets.len(), p + 1);
        assert_eq!(offsets[0], 0);
        assert_eq!(offsets[p], data.len());
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn distinct_splitters_match_naive() {
        let data: Vec<u64> = (0..100).collect();
        let splitters = vec![24u64, 49, 74];
        let inv = splitter_offsets_investigated(&data, &splitters);
        let naive = pgxd_algos::search::naive_splitter_offsets(&data, &splitters);
        assert_eq!(inv, naive);
        check_tiles(&data, &inv, 4);
    }

    #[test]
    fn all_equal_data_all_equal_splitters_balances() {
        // The Fig. 3b pathology: every key identical, every splitter
        // identical. Naive sends everything to destination 0; the
        // investigator spreads it evenly.
        let data = vec![42u64; 1000];
        let splitters = vec![42u64; 7]; // p = 8
        let inv = splitter_offsets_investigated(&data, &splitters);
        check_tiles(&data, &inv, 8);
        let shares: Vec<usize> = inv.windows(2).map(|w| w[1] - w[0]).collect();
        assert_eq!(shares, vec![125; 8]);

        let naive = pgxd_algos::search::naive_splitter_offsets(&data, &splitters);
        let naive_shares: Vec<usize> = naive.windows(2).map(|w| w[1] - w[0]).collect();
        assert_eq!(naive_shares[0], 1000); // the imbalance the paper shows
        assert!(naive_shares[1..].iter().all(|&s| s == 0));
    }

    #[test]
    fn figure_3c_partial_duplication() {
        // Splitters: [3, 7, 7, 7, 12] over data with a heavy run of 7s.
        let mut data = vec![1u64, 2, 3, 4, 5];
        data.extend(vec![7u64; 60]);
        data.extend(vec![13u64, 14, 15]);
        let splitters = vec![3u64, 7, 7, 7, 12];
        let off = splitter_offsets_investigated(&data, &splitters);
        check_tiles(&data, &off, 6);
        // dest 0: keys <= 3 → 3 elems.
        assert_eq!(off[1], 3);
        // The duplicated 7-splitters (boundaries 1,2,3) cut the 60-long
        // run of 7s (positions 5..65) at the regular targets
        // (j+1)·68/6 = 22, 34, 45 — all inside [5, 65].
        assert_eq!(&off[2..5], &[22, 34, 45]);
        // All 7s plus the (3,7) keys 4 and 5 land on dests 1..=4.
        let total_run: usize = (1..5).map(|j| off[j + 1] - off[j]).sum();
        assert_eq!(total_run, 62); // 60 sevens + keys 4,5
    }

    #[test]
    fn duplicated_splitters_with_no_matching_data() {
        // Splitters repeat a value absent from this machine's data: the
        // equal range is empty; offsets collapse to the insertion point.
        let data: Vec<u64> = (0..50).map(|x| x * 2).collect(); // evens
        let splitters = vec![31u64, 31, 31];
        let off = splitter_offsets_investigated(&data, &splitters);
        check_tiles(&data, &off, 4);
        assert_eq!(off[1], 16);
        assert_eq!(off[2], 16);
        assert_eq!(off[3], 16);
    }

    #[test]
    fn empty_data() {
        let off = splitter_offsets_investigated::<u64>(&[], &[5, 5, 9]);
        assert_eq!(off, vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn no_splitters_single_destination() {
        let data = vec![3u64, 1 + 2];
        let off = splitter_offsets_investigated(&data, &[]);
        assert_eq!(off, vec![0, 2]);
    }

    #[test]
    fn mixed_duplicate_groups() {
        // Two separate duplicate groups plus distinct splitters.
        let mut data = Vec::new();
        data.extend(vec![2u64; 30]);
        data.extend(vec![5u64; 30]);
        data.extend(60..100u64);
        let splitters = vec![2u64, 2, 5, 5, 70];
        let off = splitter_offsets_investigated(&data, &splitters);
        check_tiles(&data, &off, 6);
        // Group of 2s (run [0,30)): cuts at targets 100/6 = 16 and
        // 2·100/6 = 33 clamped to 30. Group of 5s (run [30,60)): cuts at
        // 50 and 66 clamped to 60.
        assert_eq!(off[1], 16);
        assert_eq!(off[2], 30);
        assert_eq!(off[3], 50);
        assert_eq!(off[4], 60);
        // dest 4 keeps (5,70] keys; dest 5 the tail.
        assert_eq!(off[5], 60 + upper_bound(&data[60..], &70));
    }

    #[test]
    fn dispatch_respects_flag() {
        let data = vec![9u64; 100];
        let splitters = vec![9u64; 3];
        let on = splitter_offsets(&data, &splitters, true);
        let off = splitter_offsets(&data, &splitters, false);
        assert_ne!(on, off);
        assert_eq!(on, splitter_offsets_investigated(&data, &splitters));
    }
}
