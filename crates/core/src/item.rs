//! Provenance-carrying sort items.
//!
//! The paper's sorting library "keeps information regards to their
//! previous processors and locations" (§IV step 6) so users can trace a
//! sorted entry back to where it came from — e.g. to fetch the rest of a
//! graph record after sorting by one property. [`Keyed`] packages a key
//! with its origin machine and original local index; ordering is by key
//! first, with `(origin, index)` as a deterministic tiebreak, so sorting
//! `Keyed` items yields a key-sorted, fully reproducible permutation.

/// A key plus its provenance (origin machine, original local index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Keyed<K> {
    /// The sort key.
    pub key: K,
    /// Machine the entry lived on before sorting.
    pub origin: u32,
    /// Index within that machine's original local array.
    pub index: u64,
}

impl<K: Ord> PartialOrd for Keyed<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for Keyed<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| self.origin.cmp(&other.origin))
            .then_with(|| self.index.cmp(&other.index))
    }
}

impl<K> Keyed<K> {
    /// Packages a key with its provenance.
    pub fn new(key: K, origin: u32, index: u64) -> Self {
        Keyed { key, origin, index }
    }
}

/// Tags every element of a machine's local array with provenance.
pub fn tag_with_provenance<K: Copy>(data: &[K], machine: usize) -> Vec<Keyed<K>> {
    data.iter()
        .enumerate()
        .map(|(i, &k)| Keyed::new(k, machine as u32, i as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_key_then_provenance() {
        let a = Keyed::new(5u64, 0, 9);
        let b = Keyed::new(5u64, 1, 0);
        let c = Keyed::new(4u64, 7, 7);
        let mut v = vec![b, a, c];
        v.sort();
        assert_eq!(v, vec![c, a, b]);
    }

    #[test]
    fn tagging_preserves_positions() {
        let tagged = tag_with_provenance(&[10u64, 20, 30], 3);
        assert_eq!(tagged[1], Keyed::new(20, 3, 1));
        assert_eq!(tagged.len(), 3);
    }

    #[test]
    fn equal_keys_distinct_items() {
        let a = Keyed::new(1u32, 0, 0);
        let b = Keyed::new(1u32, 0, 1);
        assert!(a < b);
        assert_ne!(a, b);
    }
}
