//! Load-balance and range statistics — the quantities Tables II/III and
//! Fig. 10 report.

/// Per-machine load statistics after a sort.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadStats {
    /// Element count per machine, by id.
    pub counts: Vec<usize>,
}

impl LoadStats {
    /// Builds from per-machine counts.
    pub fn new(counts: Vec<usize>) -> Self {
        LoadStats { counts }
    }

    /// Total elements.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Table II's rows: each machine's share of the total, as a fraction.
    /// Zero-total inputs give all-zero shares.
    pub fn shares(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// Smallest per-machine count (Fig. 10's min series).
    pub fn min(&self) -> usize {
        self.counts.iter().copied().min().unwrap_or(0)
    }

    /// Largest per-machine count (Fig. 10's max series).
    pub fn max(&self) -> usize {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Max − min — the paper's "load difference" metric for Fig. 10.
    pub fn load_difference(&self) -> usize {
        self.max() - self.min()
    }

    /// Max / ideal — 1.0 is perfect balance; the usual imbalance factor.
    pub fn imbalance_factor(&self) -> f64 {
        let n = self.counts.len();
        if n == 0 || self.total() == 0 {
            return 1.0;
        }
        let ideal = self.total() as f64 / n as f64;
        self.max() as f64 / ideal
    }
}

/// Per-machine key ranges (Table III).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeStats<K> {
    /// `(min, max)` held by each machine, `None` when a machine is empty.
    pub ranges: Vec<Option<(K, K)>>,
}

impl<K: PartialOrd + Copy> RangeStats<K> {
    /// Builds from per-machine ranges.
    pub fn new(ranges: Vec<Option<(K, K)>>) -> Self {
        RangeStats { ranges }
    }

    /// Table III's correctness property: smaller data on smaller ids —
    /// machine ranges must be non-overlapping and ascending with id
    /// (empty machines skipped).
    pub fn is_ascending(&self) -> bool {
        let mut prev_hi: Option<K> = None;
        for r in self.ranges.iter().flatten() {
            let (lo, hi) = *r;
            if lo > hi {
                return false;
            }
            if let Some(p) = prev_hi {
                if lo < p {
                    return false;
                }
            }
            prev_hi = Some(hi);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let s = LoadStats::new(vec![10, 20, 30, 40]);
        let shares = s.shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((shares[3] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn min_max_difference() {
        let s = LoadStats::new(vec![100, 95, 110, 99]);
        assert_eq!(s.min(), 95);
        assert_eq!(s.max(), 110);
        assert_eq!(s.load_difference(), 15);
        assert_eq!(s.total(), 404);
    }

    #[test]
    fn imbalance_factor_perfect_and_skewed() {
        let perfect = LoadStats::new(vec![50, 50, 50, 50]);
        assert!((perfect.imbalance_factor() - 1.0).abs() < 1e-12);
        let skewed = LoadStats::new(vec![200, 0, 0, 0]);
        assert!((skewed.imbalance_factor() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats() {
        let s = LoadStats::new(vec![]);
        assert_eq!(s.total(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.imbalance_factor(), 1.0);
        let z = LoadStats::new(vec![0, 0]);
        assert_eq!(z.shares(), vec![0.0, 0.0]);
    }

    #[test]
    fn ranges_ascending_detection() {
        let good = RangeStats::new(vec![Some((0u64, 5)), None, Some((5, 9)), Some((10, 12))]);
        assert!(good.is_ascending());
        let overlapping = RangeStats::new(vec![Some((0u64, 7)), Some((5, 9))]);
        assert!(!overlapping.is_ascending());
        let inverted = RangeStats::new(vec![Some((7u64, 3))]);
        assert!(!inverted.is_ascending());
        let empty = RangeStats::<u64>::new(vec![None, None]);
        assert!(empty.is_ascending());
    }
}
