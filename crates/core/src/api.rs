//! The user-facing query API on top of a finished sort (§IV: "This
//! sorting library also provides an API for the users to implement a
//! binary search on data as well as finding information regards to the
//! previous processors ... such as retrieving top values from their graph
//! data or implementing binary search on the sorted data").

use crate::item::Keyed;
use crate::sorter::SortedPartition;
use pgxd::machine::MachineCtx;
use pgxd_algos::search::{lower_bound, upper_bound};
use pgxd_algos::Key;

/// A replicated index over the globally sorted data: every machine learns
/// every machine's key range and element count, enabling O(log p + log n)
/// point lookups without touching other machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalIndex<K> {
    /// Per-machine `(min, max)` key ranges; `None` for empty machines.
    pub ranges: Vec<Option<(K, K)>>,
    /// Per-machine element counts.
    pub counts: Vec<usize>,
}

impl<K: Key> GlobalIndex<K> {
    /// Builds the index collectively (all machines must call this).
    pub fn build(ctx: &mut MachineCtx, part: &SortedPartition<K>) -> Self {
        // Encode (count, min, max) as an Option-carrying triple per machine.
        let summary: Vec<(usize, Option<(K, K)>)> = vec![(
            part.len(),
            part.range().map(|(a, b)| (*a, *b)),
        )];
        let all = ctx.all_gather(summary);
        let mut ranges = Vec::with_capacity(all.len());
        let mut counts = Vec::with_capacity(all.len());
        for row in all {
            let (count, range) = row[0];
            counts.push(count);
            ranges.push(range);
        }
        GlobalIndex { ranges, counts }
    }

    /// Total elements across the cluster.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Machines whose range could contain `key` (0, 1, or several when the
    /// key's duplicates straddle machine boundaries).
    pub fn machines_containing(&self, key: &K) -> Vec<usize> {
        self.ranges
            .iter()
            .enumerate()
            .filter_map(|(m, r)| match r {
                Some((lo, hi)) if lo <= key && key <= hi => Some(m),
                _ => None,
            })
            .collect()
    }

    /// Global rank range of `key`: how many elements are `< key` across
    /// the cluster, and how many are `<= key`. This needs only the local
    /// slice plus everyone's counts/ranges, because the global order is
    /// partitioned by machine id.
    pub fn global_rank_of_local(
        &self,
        me: usize,
        local: &SortedPartition<K>,
        key: &K,
    ) -> (usize, usize) {
        // Elements on machines strictly before any possible holder.
        let mut below = 0usize;
        let mut below_or_equal = 0usize;
        for m in 0..self.counts.len() {
            match &self.ranges[m] {
                None => {}
                Some((lo, hi)) => {
                    if hi < key {
                        below += self.counts[m];
                        below_or_equal += self.counts[m];
                    } else if lo > key {
                        // contributes nothing
                    } else if m == me {
                        below += lower_bound(&local.data, key);
                        below_or_equal += upper_bound(&local.data, key);
                    } else {
                        // Another machine's boundary region: without its
                        // data we cannot count exactly; callers use the
                        // collective `global_rank` below for exact counts.
                        // Conservative: count nothing here.
                    }
                }
            }
        }
        (below, below_or_equal)
    }
}

/// Collective exact global rank: every machine contributes its local
/// counts of elements `< key` and `<= key`; everyone receives the global
/// `(rank_lo, rank_hi)`. This is the paper's distributed binary search.
pub fn global_rank<K: Key>(
    ctx: &mut MachineCtx,
    part: &SortedPartition<K>,
    key: &K,
) -> (usize, usize) {
    let lo = lower_bound(&part.data, key);
    let hi = upper_bound(&part.data, key);
    let all = ctx.all_gather(vec![(lo, hi)]);
    let mut rank_lo = 0;
    let mut rank_hi = 0;
    for row in all {
        rank_lo += row[0].0;
        rank_hi += row[0].1;
    }
    (rank_lo, rank_hi)
}

/// Collective top-k: returns the `k` largest keys cluster-wide on the
/// master (None elsewhere). Each machine ships only its own top `k`
/// candidates, so the master sees at most `p · k` keys.
pub fn top_k<K: Key>(ctx: &mut MachineCtx, part: &SortedPartition<K>, k: usize) -> Option<Vec<K>> {
    let tail_start = part.data.len().saturating_sub(k);
    let candidates: Vec<K> = part.data[tail_start..].to_vec();
    let gathered = ctx.gather_to_master(candidates)?;
    let mut all: Vec<K> = gathered.concat();
    all.sort_unstable();
    let start = all.len().saturating_sub(k);
    let mut top = all[start..].to_vec();
    top.reverse(); // largest first
    Some(top)
}

/// Collective rank selection: the key at global rank `rank` (0-based) of
/// the sorted order, delivered to every machine. `None` when `rank` is
/// out of range. One count all-gather plus one broadcast.
pub fn select_rank<K: Key>(
    ctx: &mut MachineCtx,
    part: &SortedPartition<K>,
    rank: usize,
) -> Option<K> {
    let counts: Vec<usize> = ctx
        .all_gather(vec![part.len()])
        .into_iter()
        .map(|v| v[0])
        .collect();
    select_rank_with_counts(ctx, part, &counts, rank)
}

/// Collective quantiles: the keys at the `q`-quantile boundaries
/// (`1/q, 2/q, …, (q-1)/q` of the global rank space), delivered to every
/// machine. Empty when the data is empty or `q < 2`.
pub fn global_quantiles<K: Key>(
    ctx: &mut MachineCtx,
    part: &SortedPartition<K>,
    q: usize,
) -> Vec<K> {
    if q < 2 {
        // Stay collective even in the degenerate case (no ranks queried).
        return Vec::new();
    }
    let counts: Vec<usize> = ctx
        .all_gather(vec![part.len()])
        .into_iter()
        .map(|v| v[0])
        .collect();
    let total: usize = counts.iter().sum();
    let mut out = Vec::with_capacity(q - 1);
    for j in 1..q {
        let rank = j * total / q;
        if let Some(k) = select_rank_with_counts(ctx, part, &counts, rank) {
            out.push(k);
        }
    }
    out
}

fn select_rank_with_counts<K: Key>(
    ctx: &mut MachineCtx,
    part: &SortedPartition<K>,
    counts: &[usize],
    rank: usize,
) -> Option<K> {
    let total: usize = counts.iter().sum();
    if rank >= total {
        return None;
    }
    let mut owner = 0;
    let mut remaining = rank;
    while remaining >= counts[owner] {
        remaining -= counts[owner];
        owner += 1;
    }
    let payload = if ctx.id() == owner {
        Some(vec![part.data[remaining]])
    } else {
        None
    };
    ctx.broadcast_from(owner, payload).first().copied()
}

/// Collective global histogram over `buckets` equal-width buckets spanning
/// `[lo, hi]` (u64 keys): every machine receives the full histogram.
/// Keys outside the range are clamped into the edge buckets.
pub fn global_histogram(
    ctx: &mut MachineCtx,
    part: &SortedPartition<u64>,
    lo: u64,
    hi: u64,
    buckets: usize,
) -> Vec<u64> {
    assert!(buckets > 0 && hi >= lo, "invalid histogram spec");
    let width = ((hi - lo) / buckets as u64).max(1);
    let mut local = vec![0u64; buckets];
    for &k in &part.data {
        let b = ((k.saturating_sub(lo)) / width).min(buckets as u64 - 1) as usize;
        local[b] += 1;
    }
    let rows = ctx.all_gather(local);
    let mut global = vec![0u64; buckets];
    for row in rows {
        for (g, c) in global.iter_mut().zip(row) {
            *g += c;
        }
    }
    global
}

/// Collective O(p) verification that the distributed order is globally
/// sorted: every machine checks its slice locally, then the per-machine
/// `(min, max)` ranges are all-gathered and checked for ascent across
/// machine ids. Cheap enough to run after every production sort.
pub fn verify_globally_sorted<K: Key>(ctx: &mut MachineCtx, part: &SortedPartition<K>) -> bool {
    let locally_sorted = part.data.windows(2).all(|w| w[0] <= w[1]);
    let range = part.range().map(|(a, b)| (*a, *b));
    let all: Vec<(bool, Option<(K, K)>)> = ctx
        .all_gather(vec![(locally_sorted, range)])
        .into_iter()
        .map(|v| v[0])
        .collect();
    if !all.iter().all(|&(ok, _)| ok) {
        return false;
    }
    let mut prev_hi: Option<K> = None;
    for (_, r) in all {
        if let Some((lo, hi)) = r {
            if let Some(p) = prev_hi {
                if lo < p {
                    return false;
                }
            }
            prev_hi = Some(hi);
        }
    }
    true
}

/// Collective payload fetch by provenance — the §III "remote data
/// pulling" pattern: after a [`sort_keyed`](crate::DistSorter::sort_keyed),
/// every machine holds `Keyed` items pointing back at their origin
/// machine and index; this call pulls the payload that lived alongside
/// each key from its origin's `local_payloads` array.
///
/// Returns one payload per item, aligned with `items`. Two all-to-alls:
/// index requests out, payloads back.
pub fn fetch_payloads<K: Key, V: Copy + Send + Sync + 'static>(
    ctx: &mut MachineCtx,
    items: &[Keyed<K>],
    local_payloads: &[V],
) -> Vec<V> {
    let p = ctx.num_machines();
    // Group requested indices by origin machine, remembering where each
    // answer must land in the output.
    let mut requests: Vec<Vec<u64>> = vec![Vec::new(); p];
    let mut slots: Vec<Vec<usize>> = vec![Vec::new(); p];
    for (pos, item) in items.iter().enumerate() {
        requests[item.origin as usize].push(item.index);
        slots[item.origin as usize].push(pos);
    }

    // Request phase: each machine receives the index lists others want
    // from it…
    let incoming = ctx.all_to_all(requests);
    // …answers from its own payload array…
    let responses: Vec<Vec<V>> = incoming
        .into_iter()
        .map(|idxs| idxs.into_iter().map(|i| local_payloads[i as usize]).collect())
        .collect();
    // …and the answers flow back.
    let answers = ctx.all_to_all(responses);

    // SAFETY-free assembly: place answers into their recorded slots.
    let mut out: Vec<Option<V>> = vec![None; items.len()];
    for (origin, payloads) in answers.into_iter().enumerate() {
        debug_assert_eq!(payloads.len(), slots[origin].len());
        for (payload, &slot) in payloads.into_iter().zip(&slots[origin]) {
            out[slot] = Some(payload);
        }
    }
    out.into_iter().map(|v| v.expect("missing payload")).collect()
}

/// Collective bottom-k, symmetric to [`top_k`].
pub fn bottom_k<K: Key>(
    ctx: &mut MachineCtx,
    part: &SortedPartition<K>,
    k: usize,
) -> Option<Vec<K>> {
    let take = k.min(part.data.len());
    let candidates: Vec<K> = part.data[..take].to_vec();
    let gathered = ctx.gather_to_master(candidates)?;
    let mut all: Vec<K> = gathered.concat();
    all.sort_unstable();
    all.truncate(k);
    Some(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistSorter, SortConfig};
    use pgxd::cluster::{Cluster, ClusterConfig};
    use pgxd_datagen::{generate, partition_even, Distribution};

    fn sorted_fixture(
        machines: usize,
        n: usize,
    ) -> (Vec<u64>, Cluster, Vec<Vec<u64>>) {
        let data = generate(Distribution::Uniform, n, 99);
        let parts = partition_even(&data, machines);
        let mut expect = data;
        expect.sort_unstable();
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        (expect, cluster, parts)
    }

    #[test]
    fn global_index_counts_and_ranges() {
        let (expect, cluster, parts) = sorted_fixture(4, 10_000);
        let sorter = DistSorter::new(SortConfig::default());
        let report = cluster.run(|ctx| {
            let part = sorter.sort(ctx, parts[ctx.id()].clone());
            let index = GlobalIndex::build(ctx, &part);
            (index, part.range().map(|(a, b)| (*a, *b)))
        });
        let (index, _) = &report.results[0];
        assert_eq!(index.total(), 10_000);
        // Index ranges must match what each machine reported.
        for (m, (_, r)) in report.results.iter().enumerate() {
            assert_eq!(&index.ranges[m], r);
        }
        let _ = expect;
    }

    #[test]
    fn global_rank_matches_flat_sort() {
        let (expect, cluster, parts) = sorted_fixture(3, 5000);
        let sorter = DistSorter::default();
        let probe = expect[2500];
        let report = cluster.run(|ctx| {
            let part = sorter.sort(ctx, parts[ctx.id()].clone());
            global_rank(ctx, &part, &probe)
        });
        let (lo, hi) = report.results[0];
        assert_eq!(lo, expect.partition_point(|&x| x < probe));
        assert_eq!(hi, expect.partition_point(|&x| x <= probe));
        // Every machine agrees.
        assert!(report.results.iter().all(|&r| r == (lo, hi)));
    }

    #[test]
    fn global_rank_of_absent_key() {
        let (expect, cluster, parts) = sorted_fixture(3, 3000);
        let sorter = DistSorter::default();
        let probe = u64::MAX;
        let report = cluster.run(|ctx| {
            let part = sorter.sort(ctx, parts[ctx.id()].clone());
            global_rank(ctx, &part, &probe)
        });
        assert_eq!(report.results[0], (expect.len(), expect.len()));
    }

    #[test]
    fn top_and_bottom_k() {
        let (expect, cluster, parts) = sorted_fixture(4, 8000);
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            let part = sorter.sort(ctx, parts[ctx.id()].clone());
            let top = top_k(ctx, &part, 10);
            let bottom = bottom_k(ctx, &part, 10);
            (top, bottom)
        });
        let (top, bottom) = &report.results[0];
        let top = top.as_ref().unwrap();
        let bottom = bottom.as_ref().unwrap();
        let mut expect_top: Vec<u64> = expect[expect.len() - 10..].to_vec();
        expect_top.reverse();
        assert_eq!(top, &expect_top);
        assert_eq!(bottom, &expect[..10].to_vec());
        // Non-masters get None.
        assert!(report.results[1].0.is_none());
    }

    #[test]
    fn machines_containing_duplicate_straddle() {
        // All-equal data spreads one key across every machine.
        let machines = 4;
        let parts: Vec<Vec<u64>> = (0..machines).map(|_| vec![5u64; 500]).collect();
        let cluster = Cluster::new(ClusterConfig::new(machines));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            let part = sorter.sort(ctx, parts[ctx.id()].clone());
            GlobalIndex::build(ctx, &part).machines_containing(&5)
        });
        assert_eq!(report.results[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn verify_accepts_sorted_and_rejects_shuffled() {
        let (_, cluster, parts) = sorted_fixture(3, 3000);
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            let part = sorter.sort(ctx, parts[ctx.id()].clone());
            let ok = verify_globally_sorted(ctx, &part);

            // Sabotage: swap the global order by giving machine 0 the
            // biggest keys (simulated by reversing ranges via Desc-less
            // trick: just hand machines each other's slices reversed).
            let broken = SortedPartition {
                data: part.data.iter().rev().copied().collect(),
                splitters: part.splitters.clone(),
            };
            let bad_local = verify_globally_sorted(ctx, &broken);
            (ok, bad_local)
        });
        for &(ok, bad) in &report.results {
            assert!(ok);
            assert!(!bad, "reversed local slices must fail verification");
        }
    }

    #[test]
    fn fetch_payloads_pulls_correct_values() {
        let machines = 4;
        let keys = pgxd_datagen::generate_partitioned(Distribution::Exponential, 6000, machines, 77);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let sorter = DistSorter::default();
        let keys_ref = &keys;
        let report = cluster.run(|ctx| {
            // payload[i] = hash of (machine, i): unique per origin slot.
            let payloads: Vec<u64> = (0..keys_ref[ctx.id()].len() as u64)
                .map(|i| (ctx.id() as u64) << 32 | i)
                .collect();
            let part = sorter.sort_keyed(ctx, &keys_ref[ctx.id()]);
            let fetched = crate::api::fetch_payloads(ctx, &part.data, &payloads);
            (part.data, fetched)
        });
        let mut seen = 0;
        for (items, fetched) in &report.results {
            assert_eq!(items.len(), fetched.len());
            for (item, &payload) in items.iter().zip(fetched) {
                // The fetched payload identifies exactly the origin slot.
                assert_eq!(payload, (item.origin as u64) << 32 | item.index);
                seen += 1;
            }
        }
        assert_eq!(seen, 6000);
    }

    #[test]
    fn fetch_payloads_empty_items() {
        let cluster = Cluster::new(ClusterConfig::new(3));
        let report = cluster.run(|ctx| {
            let payloads = vec![1u64, 2, 3];
            crate::api::fetch_payloads::<u64, u64>(ctx, &[], &payloads)
        });
        assert!(report.results.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn select_rank_matches_flat_sort() {
        let (expect, cluster, parts) = sorted_fixture(4, 4000);
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            let part = sorter.sort(ctx, parts[ctx.id()].clone());
            let first = select_rank(ctx, &part, 0);
            let mid = select_rank(ctx, &part, 2000);
            let last = select_rank(ctx, &part, 3999);
            let beyond = select_rank(ctx, &part, 4000);
            (first, mid, last, beyond)
        });
        for &(first, mid, last, beyond) in &report.results {
            assert_eq!(first, Some(expect[0]));
            assert_eq!(mid, Some(expect[2000]));
            assert_eq!(last, Some(expect[3999]));
            assert_eq!(beyond, None);
        }
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let (expect, cluster, parts) = sorted_fixture(3, 6000);
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            let part = sorter.sort(ctx, parts[ctx.id()].clone());
            global_quantiles(ctx, &part, 4)
        });
        let quartiles = &report.results[0];
        assert_eq!(quartiles.len(), 3);
        assert_eq!(quartiles[0], expect[1500]);
        assert_eq!(quartiles[1], expect[3000]);
        assert_eq!(quartiles[2], expect[4500]);
        // Same answer everywhere.
        assert!(report.results.iter().all(|r| r == quartiles));
    }

    #[test]
    fn histogram_counts_everything() {
        let (expect, cluster, parts) = sorted_fixture(3, 5000);
        let sorter = DistSorter::default();
        let lo = expect[0];
        let hi = *expect.last().unwrap();
        let report = cluster.run(|ctx| {
            let part = sorter.sort(ctx, parts[ctx.id()].clone());
            global_histogram(ctx, &part, lo, hi, 16)
        });
        let hist = &report.results[0];
        assert_eq!(hist.len(), 16);
        assert_eq!(hist.iter().sum::<u64>(), 5000);
        // Uniform keys spread across buckets.
        assert!(hist.iter().filter(|&&c| c > 0).count() >= 12);
    }

    #[test]
    fn top_k_larger_than_data() {
        let (expect, cluster, parts) = sorted_fixture(2, 50);
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            let part = sorter.sort(ctx, parts[ctx.id()].clone());
            top_k(ctx, &part, 1000)
        });
        let top = report.results[0].as_ref().unwrap();
        assert_eq!(top.len(), 50);
        let mut exp = expect.clone();
        exp.reverse();
        assert_eq!(top, &exp);
    }
}
