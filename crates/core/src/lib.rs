//! # Load-balanced distributed sample sort (the PGX.D sorting library)
//!
//! This crate is the reproduction of the paper's contribution: a
//! distributed sample sort that stays load-balanced even on datasets with
//! many duplicated entries, built on the PGX.D-style runtime in the
//! [`pgxd`] crate.
//!
//! The three mechanisms from the paper:
//!
//! - **Balanced merging** (§IV-A, Fig. 2) — both the local sort and the
//!   final merge combine sorted runs pairwise in a power-of-two tree whose
//!   merges all run in parallel and always combine near-equal runs
//!   (implemented in [`pgxd_algos::merge`]).
//! - **Buffer-sized sampling** (§IV-B) — every machine sends exactly
//!   `256 KiB / p` of regular samples to the master, so the master always
//!   receives one read-buffer of samples: enough for good splitters,
//!   cheap enough to not matter ([`config::SortConfig`]).
//! - **The investigator** (§IV-B, Fig. 3c) — duplicate splitters share
//!   their equal-key range evenly across the destinations they span,
//!   eliminating the load collapse of naive sample sort on duplicated
//!   data ([`investigator`]).
//!
//! Entry point: [`DistSorter`]. Query API on the sorted result:
//! [`api::GlobalIndex`], [`api::global_rank`], [`api::top_k`]. Load and
//! range statistics for evaluation: [`stats`].
//!
//! ```
//! use pgxd::cluster::{Cluster, ClusterConfig};
//! use pgxd_core::{DistSorter, SortConfig};
//!
//! let cluster = Cluster::new(ClusterConfig::new(3));
//! let sorter = DistSorter::new(SortConfig::default());
//! let report = cluster.run(|ctx| {
//!     let shard: Vec<u64> = (0..100).map(|i| (i * 37 + ctx.id() as u64 * 13) % 100).collect();
//!     sorter.sort(ctx, shard).data
//! });
//! let global: Vec<u64> = report.results.concat();
//! assert!(global.windows(2).all(|w| w[0] <= w[1]));
//! ```

#![forbid(unsafe_code)]

pub mod api;
pub mod config;
pub mod distvec;
pub mod investigator;
pub mod item;
pub mod sampling;
pub mod sorter;
pub mod stats;

pub use config::{FinalMergeAlgo, LocalSortAlgo, SortConfig, AUTO_RADIX_MIN};
pub use distvec::DistVec;
pub use item::Keyed;
pub use sorter::{steps, DistSorter, SortedPartition};
pub use stats::{LoadStats, RangeStats};

use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd_algos::exec::even_chunk_bounds;
use pgxd_algos::Key;

/// One-shot convenience: shards `data` evenly over a fresh simulated
/// cluster of `machines` machines (`workers` threads each), runs the full
/// distributed sort, and returns the globally sorted vector.
///
/// For anything beyond a single sort (custom configs, provenance,
/// queries, reuse of the cluster) use [`DistSorter`] directly.
///
/// ```
/// let sorted = pgxd_core::sort_all(vec![5u64, 1, 4, 2, 3], 2, 1);
/// assert_eq!(sorted, vec![1, 2, 3, 4, 5]);
/// ```
pub fn sort_all<K: Key>(data: Vec<K>, machines: usize, workers: usize) -> Vec<K> {
    let machines = machines.max(1);
    let bounds = even_chunk_bounds(data.len(), machines);
    let mut rest = data;
    let mut shards = Vec::with_capacity(machines);
    // Split from the back so each shard is an owned Vec without copies.
    for m in (1..=machines).rev() {
        shards.push(rest.split_off(bounds[m - 1]));
    }
    shards.reverse();

    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(workers.max(1)));
    let sorter = DistSorter::default();
    let report = cluster.run_partitioned(shards, |ctx, shard| sorter.sort(ctx, shard).data);
    report.results.concat()
}

#[cfg(test)]
mod convenience_tests {
    use super::*;

    #[test]
    fn sort_all_roundtrip() {
        let data: Vec<u64> = (0..5000).rev().collect();
        let sorted = sort_all(data, 4, 2);
        assert_eq!(sorted, (0..5000).collect::<Vec<u64>>());
    }

    #[test]
    fn sort_all_empty_and_tiny() {
        assert!(sort_all(Vec::<u64>::new(), 3, 1).is_empty());
        assert_eq!(sort_all(vec![9u64], 5, 1), vec![9]);
    }

    #[test]
    fn sort_all_strings() {
        use pgxd_algos::FixedStr;
        let words = ["pear", "apple", "zig", "mango", "apple", "fig"];
        let keys: Vec<FixedStr<16>> = words.iter().map(|w| FixedStr::new(w)).collect();
        let sorted = sort_all(keys, 3, 1);
        let names: Vec<String> = sorted.iter().map(|s| s.as_str().into_owned()).collect();
        assert_eq!(names, vec!["apple", "apple", "fig", "mango", "pear", "zig"]);
    }
}
