//! Regular sampling and splitter selection (§IV steps 2–3).
//!
//! Each machine picks evenly spaced samples from its *sorted* local data
//! and sends them to the master; the master merges the `p` sorted sample
//! runs (loser tree) and picks `p − 1` splitters at regular positions of
//! the merged sequence. Sample *quantity* follows the buffer-sized rule in
//! [`SortConfig`](crate::config::SortConfig).

use pgxd_algos::kway::kway_merge;
use pgxd_algos::Key;

/// Picks `count` evenly spaced samples from sorted `data`. Returns fewer
/// (possibly zero) when the data is shorter than requested.
// analyze: allow(hot-path-alloc): O(s) sample vector, produced once per
// sampling round and shipped to the master.
pub fn select_regular_samples<K: Key>(data: &[K], count: usize) -> Vec<K> {
    let n = data.len();
    let count = count.min(n);
    if count == 0 {
        return Vec::new();
    }
    // Positions (i+1)·n/(count+1): interior points, never index n.
    (0..count).map(|i| data[(i + 1) * n / (count + 1)]).collect()
}

/// Master-side: merges the per-machine sorted sample runs and selects the
/// `p − 1` final splitters at regular positions. Empty when there are no
/// samples at all (degenerate tiny inputs) — the partitioner then routes
/// everything to machine 0.
// analyze: allow(hot-path-alloc): O(p·s) gathered-sample merge on the
// master, once per run; the splitter vector is the product.
pub fn select_splitters<K: Key>(sample_runs: &[Vec<K>], p: usize) -> Vec<K> {
    let refs: Vec<&[K]> = sample_runs.iter().map(|r| r.as_slice()).collect();
    let merged = kway_merge(&refs);
    let m = merged.len();
    if m == 0 || p <= 1 {
        return Vec::new();
    }
    // Position (j+1)·m/p for the j-th splitter; strictly < m.
    (0..p - 1).map(|j| merged[(j + 1) * m / p]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_evenly_spaced_and_sorted() {
        let data: Vec<u64> = (0..1000).collect();
        let s = select_regular_samples(&data, 9);
        assert_eq!(s.len(), 9);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        // Roughly deciles.
        assert_eq!(s[0], 100);
        assert_eq!(s[8], 900);
    }

    #[test]
    fn samples_clamped_to_data_len() {
        let data = vec![1u64, 2, 3];
        assert_eq!(select_regular_samples(&data, 10).len(), 3);
        assert!(select_regular_samples::<u64>(&[], 5).is_empty());
        assert!(select_regular_samples(&data, 0).is_empty());
    }

    #[test]
    fn splitters_quartile_positions() {
        // Two runs covering 0..100; 4 machines → 3 splitters near quartiles.
        let run_a: Vec<u64> = (0..100).step_by(2).collect();
        let run_b: Vec<u64> = (1..100).step_by(2).collect();
        let s = select_splitters(&[run_a, run_b], 4);
        assert_eq!(s.len(), 3);
        assert!((20..30).contains(&s[0]), "{s:?}");
        assert!((45..55).contains(&s[1]), "{s:?}");
        assert!((70..80).contains(&s[2]), "{s:?}");
    }

    #[test]
    fn splitters_duplicate_heavy_runs_can_repeat() {
        // Heavily duplicated samples ⇒ duplicated splitters (the case the
        // investigator exists for).
        let runs: Vec<Vec<u64>> = (0..4).map(|_| vec![7u64; 50]).collect();
        let s = select_splitters(&runs, 8);
        assert_eq!(s.len(), 7);
        assert!(s.iter().all(|&x| x == 7));
    }

    #[test]
    fn splitters_degenerate_inputs() {
        assert!(select_splitters::<u64>(&[], 4).is_empty());
        assert!(select_splitters::<u64>(&[vec![], vec![]], 4).is_empty());
        assert!(select_splitters(&[vec![1u64, 2, 3]], 1).is_empty());
    }

    #[test]
    fn splitters_sorted() {
        let runs = vec![vec![5u64, 20, 90], vec![1u64, 30, 60], vec![10u64, 40, 80]];
        let s = select_splitters(&runs, 5);
        assert_eq!(s.len(), 4);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
    }
}
