//! The six-step distributed sample sort (§IV).
//!
//! 1. **local sort** — data divided evenly among the machine's worker
//!    threads, per-worker kernel (quicksort, TimSort, super scalar sample
//!    sort, in-place samplesort, or LSD radix for radix-capable keys —
//!    [`LocalSortAlgo`]), chunks combined with a splitter-planned parallel
//!    k-way merge into a pool-recycled buffer.
//! 2. **sampling** — regular samples (buffer-sized rule) sent to master.
//! 3. **splitters** — master merges the sample runs and broadcasts the
//!    `p − 1` regular splitters.
//! 4. **partition** — investigator binary search of the splitters on the
//!    locally sorted data → `p` contiguous send ranges.
//! 5. **exchange** — asynchronous offset-addressed all-to-all through the
//!    data-manager buffers (send while receive).
//! 6. **final merge** — per-source sorted runs combined by the configured
//!    [`FinalMergeAlgo`]: Fig. 2 balanced merge tree (default), a
//!    sequential loser-tree k-way merge, or the splitter-planned parallel
//!    k-way merge.
//!
//! The result is globally sorted across machines: machine 0 holds the
//! smallest keys, machine `p − 1` the largest, every machine's slice
//! locally sorted.

use crate::config::{FinalMergeAlgo, LocalSortAlgo, SortConfig, AUTO_RADIX_MIN};
use crate::investigator::splitter_offsets;
use crate::item::{tag_with_provenance, Keyed};
use crate::sampling::{select_regular_samples, select_splitters};
use pgxd::machine::MachineCtx;
use pgxd::metrics::labeled;
use pgxd::task::TaskManager;
use pgxd_algos::exec::{even_chunk_bounds, MIN_ITEMS_PER_WORKER};
use pgxd_algos::ipssort::{in_place_sample_sort_stats_into, IpsStats};
use pgxd_algos::kway::{kway_merge, kway_merge_into};
use pgxd_algos::merge::{balanced_merge, plan_multiway_splits, PARALLEL_MERGE_CUTOFF};
use pgxd_algos::quicksort::quicksort;
use pgxd_algos::radix::RadixDispatch;
use pgxd_algos::ssssort::super_scalar_sample_sort_with_scratch;
use pgxd_algos::timsort::timsort;
use pgxd_algos::Key;

/// Step names recorded in the machine's [`StepTimer`](pgxd::metrics::StepTimer),
/// matching the Fig. 7 breakdown.
pub mod steps {
    /// Step 1: local parallel sort.
    pub const LOCAL_SORT: &str = "local_sort";
    /// Step 2: sample selection + gather to master.
    pub const SAMPLING: &str = "sampling";
    /// Step 3: splitter selection + broadcast.
    pub const SPLITTERS: &str = "splitters";
    /// Step 4: investigator partitioning.
    pub const PARTITION: &str = "partition";
    /// Step 5: asynchronous data exchange.
    pub const EXCHANGE: &str = "exchange";
    /// Step 6: balanced final merge.
    pub const FINAL_MERGE: &str = "final_merge";

    /// All six, in order.
    pub const ALL: [&str; 6] = [
        LOCAL_SORT,
        SAMPLING,
        SPLITTERS,
        PARTITION,
        EXCHANGE,
        FINAL_MERGE,
    ];
}

/// Resolves [`LocalSortAlgo::Auto`] against the key type and input size:
/// radix for radix-capable keys past [`AUTO_RADIX_MIN`] elements, in-place
/// samplesort otherwise. Concrete algorithms pass through unchanged.
fn resolve_local_algo<T: Key>(algo: LocalSortAlgo, n: usize) -> LocalSortAlgo {
    match algo {
        LocalSortAlgo::Auto => {
            if <T as RadixDispatch>::radix_capable() && n >= AUTO_RADIX_MIN {
                LocalSortAlgo::Radix
            } else {
                LocalSortAlgo::InPlaceSampleSort
            }
        }
        other => other,
    }
}

/// Step 1 driver: sorts `data` with the configured kernel across the
/// machine's worker pool and combines the per-worker runs with a
/// splitter-planned parallel k-way merge.
///
/// Returns `(sorted, pooled)`: when `pooled` the buffer was acquired from
/// the machine's [`ChunkPool`](pgxd::pool::ChunkPool) and the caller must
/// hand it back with `ctx.pool().release(..)` once the exchange has
/// consumed it (the custody checker treats an unreleased chunk at teardown
/// as a protocol bug). No barrier sits between step 1 and the exchange, so
/// holding the chunk across steps 2–5 is legal.
// analyze: allow(panic-surface): the `chunked[0]` seed read is guarded by
// the n < 2 early return above it.
fn run_local_sort<T: Key>(ctx: &MachineCtx, algo: LocalSortAlgo, data: Vec<T>) -> (Vec<T>, bool) {
    let n = data.len();
    if n < 2 {
        return (data, false);
    }
    let algo = resolve_local_algo::<T>(algo, n);
    let workers = ctx.workers().max(1).min((n / MIN_ITEMS_PER_WORKER).max(1));
    let (chunked, bounds) = match algo {
        LocalSortAlgo::Radix => match T::radix_sort_chunks(data, workers) {
            Ok(pair) => pair,
            // Key type without a radix image: comparison fast path.
            Err(data) => {
                sort_comparison_chunks(ctx, LocalSortAlgo::InPlaceSampleSort, data, workers)
            }
        },
        other => sort_comparison_chunks(ctx, other, data, workers),
    };
    if bounds.len() <= 2 {
        return (chunked, false);
    }
    let mut out = ctx.pool().acquire::<T>(n);
    out.resize(n, chunked[0]);
    ctx.phase_scope("local.merge", || {
        merge_runs_with_tasks(ctx.tasks(), &chunked, &bounds, &mut out, workers)
    });
    (out, true)
}

/// Sorts `data` in `workers` even chunks, each chunk by the given
/// comparison kernel on the machine's task pool. Returns the chunk-sorted
/// buffer and the chunk bounds.
// analyze: allow(panic-surface): the "one task" expect is guarded by the
// len == 1 check, and the Radix/Auto arms are unreachable because
// resolve_local_algo runs before kernel dispatch.
// analyze: allow(hot-path-alloc): per-chunk run descriptors and task
// closures at batch scale — one task per chunk, not per element.
fn sort_comparison_chunks<T: Key>(
    ctx: &MachineCtx,
    algo: LocalSortAlgo,
    mut data: Vec<T>,
    workers: usize,
) -> (Vec<T>, Vec<usize>) {
    let bounds = even_chunk_bounds(data.len(), workers);
    let chunks = bounds.len() - 1;
    let mut stats = vec![IpsStats::default(); chunks];
    {
        let pool = ctx.pool();
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(chunks);
        let mut rest: &mut [T] = &mut data;
        for (w, stat) in bounds.windows(2).zip(stats.iter_mut()) {
            let taken = std::mem::take(&mut rest);
            let (chunk, tail) = taken.split_at_mut(w[1] - w[0]);
            rest = tail;
            tasks.push(Box::new(move || match algo {
                LocalSortAlgo::ParallelQuicksort => quicksort(chunk),
                LocalSortAlgo::Timsort => timsort(chunk),
                LocalSortAlgo::SuperScalarSampleSort => {
                    let mut scratch = pool.acquire::<T>(chunk.len());
                    super_scalar_sample_sort_with_scratch(chunk, &mut scratch);
                    pool.release(scratch);
                }
                LocalSortAlgo::InPlaceSampleSort => in_place_sample_sort_stats_into(chunk, stat),
                LocalSortAlgo::Radix | LocalSortAlgo::Auto => {
                    unreachable!("resolved before kernel dispatch")
                }
            }));
        }
        if tasks.len() == 1 {
            // One chunk: run inline instead of shipping it to the pool.
            tasks.pop().expect("one task")();
        } else {
            ctx.tasks().run_tasks(tasks);
        }
    }
    if algo == LocalSortAlgo::InPlaceSampleSort {
        let mut total = IpsStats::default();
        for s in &stats {
            total.merge(s);
        }
        ctx.phase_note("local.classify", total.classify_ns);
        ctx.phase_note("local.permute", total.permute_ns);
    }
    (data, bounds)
}

/// Merges the sorted runs `data[bounds[i]..bounds[i+1]]` into `out`
/// (same total length) using the machine's task pool: the output is cut
/// into `workers` splitter-planned ranges
/// ([`plan_multiway_splits`]) and each range is k-way merged
/// independently. Small inputs fall back to one sequential merge.
// analyze: allow(panic-surface): run and segment indexing follows
// plan_multiway_splits rows, which are monotone per run and sum to
// out.len() by construction.
// analyze: allow(hot-path-alloc): per-part output staging for the
// parallel merge; parts escape as the final sorted partition.
fn merge_runs_with_tasks<T: Key>(
    tasks: &TaskManager,
    data: &[T],
    bounds: &[usize],
    out: &mut [T],
    workers: usize,
) {
    let runs: Vec<&[T]> = bounds.windows(2).map(|w| &data[w[0]..w[1]]).collect();
    if workers <= 1 || out.len() < PARALLEL_MERGE_CUTOFF {
        kway_merge_into(&runs, out);
        return;
    }
    let rows = plan_multiway_splits(&runs, workers);
    let mut boxed: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(workers);
    let mut rest: &mut [T] = out;
    for pair in rows.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        let part_len: usize = lo.iter().zip(hi.iter()).map(|(&a, &b)| b - a).sum();
        let taken = std::mem::take(&mut rest);
        let (segment, tail) = taken.split_at_mut(part_len);
        rest = tail;
        if part_len == 0 {
            continue;
        }
        let part_runs: Vec<&[T]> = runs
            .iter()
            .zip(lo.iter().zip(hi.iter()))
            .map(|(run, (&a, &b))| &run[a..b])
            .collect();
        boxed.push(Box::new(move || kway_merge_into(&part_runs, segment)));
    }
    tasks.run_tasks(boxed);
}

/// Step 6 driver: combines the per-source sorted runs
/// `data[bounds[i]..bounds[i+1]]` by the configured strategy. The output
/// is always a plain (non-pooled) `Vec` — it leaves the machine as the
/// sort result, past the pool's custody horizon.
// analyze: allow(panic-surface): the `data[0]` seed read is guarded by the
// data.len() < 2 early return, and run bounds mirror the exchange output.
// analyze: allow(hot-path-alloc): run-slice collection plus the merged
// output buffer, once per machine per run.
fn final_merge_runs<T: Key>(
    ctx: &MachineCtx,
    algo: FinalMergeAlgo,
    data: Vec<T>,
    bounds: &[usize],
    workers: usize,
) -> Vec<T> {
    match algo {
        FinalMergeAlgo::Balanced => balanced_merge(data, bounds, workers),
        FinalMergeAlgo::SequentialKway => {
            let runs: Vec<&[T]> = bounds.windows(2).map(|w| &data[w[0]..w[1]]).collect();
            kway_merge(&runs)
        }
        FinalMergeAlgo::ParallelKway => {
            if data.len() < 2 || bounds.len() <= 2 {
                return data;
            }
            let mut out = vec![data[0]; data.len()];
            ctx.phase_scope("final.merge", || {
                merge_runs_with_tasks(ctx.tasks(), &data, bounds, &mut out, workers)
            });
            out
        }
    }
}

/// Registers this machine's load statistics into the run's always-on
/// metrics registry: shard sizes before and after the sort (the Table II /
/// Fig. 10 balance numbers), the sample budget spent, and the step-4
/// send-range sizes showing how evenly the splitters cut the local data.
fn record_sort_metrics(
    ctx: &MachineCtx,
    input: usize,
    samples: usize,
    offsets: &[usize],
    output: usize,
) {
    let metrics = ctx.metrics();
    let machine = ctx.id().to_string();
    let labels = [("machine", machine.as_str())];
    metrics
        .gauge(&labeled("pgxd_sort_input_items", &labels))
        .set(input as u64);
    metrics
        .gauge(&labeled("pgxd_sort_output_items", &labels))
        .set(output as u64);
    metrics
        .counter(&labeled("pgxd_sort_samples_total", &labels))
        .add(samples as u64);
    let ranges = metrics.histogram("pgxd_sort_send_range_items");
    for (lo, hi) in offsets.iter().zip(offsets.iter().skip(1)) {
        ranges.record((hi - lo) as u64);
    }
}

/// Internal record wrapper ordering *only* by key, so payload types need
/// no `Ord`. Equality follows the key too (consistent with `Ord`);
/// payloads of equal-keyed records are deliberately not compared.
#[derive(Debug, Clone, Copy)]
struct KeyedRecord<K, R> {
    key: K,
    record: R,
}

impl<K: Ord, R> PartialEq for KeyedRecord<K, R> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<K: Ord, R> Eq for KeyedRecord<K, R> {}
impl<K: Ord, R> PartialOrd for KeyedRecord<K, R> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord, R> Ord for KeyedRecord<K, R> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// One machine's slice of the globally sorted output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedPartition<T> {
    /// The locally sorted slice of the global order.
    pub data: Vec<T>,
    /// The splitters that defined the global partition (`p − 1` keys).
    pub splitters: Vec<T>,
}

impl<T> SortedPartition<T> {
    /// Number of elements this machine ended up holding — the load the
    /// Table II / Fig. 10 experiments compare across machines.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the machine holds nothing.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Smallest and largest key held (None when empty) — the Table III
    /// per-processor ranges.
    pub fn range(&self) -> Option<(&T, &T)> {
        Some((self.data.first()?, self.data.last()?))
    }
}

/// The distributed sorter. Construct once, call
/// [`DistSorter::sort`] (or [`DistSorter::sort_keyed`]) from inside a
/// cluster SPMD closure.
///
/// # Example
///
/// ```
/// use pgxd::cluster::{Cluster, ClusterConfig};
/// use pgxd_core::{DistSorter, SortConfig};
///
/// let cluster = Cluster::new(ClusterConfig::new(4));
/// let sorter = DistSorter::new(SortConfig::default());
/// let report = cluster.run(|ctx| {
///     // Each machine starts with its own unsorted shard.
///     let local: Vec<u64> = (0..1000).map(|i| (i * 2654435761 + ctx.id() as u64) % 10_000).collect();
///     sorter.sort(ctx, local).data
/// });
/// // Concatenating the machine outputs in id order yields a sorted array.
/// let global: Vec<u64> = report.results.concat();
/// assert!(global.windows(2).all(|w| w[0] <= w[1]));
/// assert_eq!(global.len(), 4000);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DistSorter {
    config: SortConfig,
}

impl DistSorter {
    /// A sorter with the given configuration.
    pub fn new(config: SortConfig) -> Self {
        DistSorter { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SortConfig {
        &self.config
    }

    /// Sorts the union of every machine's `local` data globally.
    /// SPMD: every machine calls this with its own shard.
    pub fn sort<K: Key>(&self, ctx: &mut MachineCtx, local: Vec<K>) -> SortedPartition<K> {
        self.sort_impl(ctx, local)
    }

    /// Sorts while tracking provenance: each output element knows its
    /// origin machine and original local index (§IV step 6's
    /// "information regards to their previous processors and locations").
    pub fn sort_keyed<K: Key>(
        &self,
        ctx: &mut MachineCtx,
        local: &[K],
    ) -> SortedPartition<Keyed<K>> {
        let tagged = tag_with_provenance(local, ctx.id());
        self.sort_impl(ctx, tagged)
    }

    /// Sorts `(key, payload)` pairs by key — the paper's "sort multiple
    /// different data simultaneously" API: the payload rides along with
    /// its key through the exchange.
    pub fn sort_pairs<K: Key, V: Copy + Send + Sync + Ord + 'static>(
        &self,
        ctx: &mut MachineCtx,
        local: Vec<(K, V)>,
    ) -> SortedPartition<(K, V)> {
        self.sort_impl(ctx, local)
    }

    /// Sorts in descending global order (machine 0 ends with the largest
    /// keys). Implemented by sorting [`Desc`]-wrapped keys, so every
    /// mechanism (investigator included) applies unchanged.
    ///
    /// [`Desc`]: pgxd_algos::Desc
    pub fn sort_descending<K: Key>(
        &self,
        ctx: &mut MachineCtx,
        local: Vec<K>,
    ) -> SortedPartition<K> {
        let wrapped: Vec<pgxd_algos::Desc<K>> = local.into_iter().map(pgxd_algos::Desc).collect();
        let part = self.sort_impl(ctx, wrapped);
        SortedPartition {
            data: part.data.into_iter().map(|d| d.0).collect(),
            splitters: part.splitters.into_iter().map(|d| d.0).collect(),
        }
    }

    /// Sorts arbitrary plain-data records by an extracted key — the
    /// paper's "generic and works with any data type" API. The extractor
    /// runs once per record; records travel whole through the exchange.
    pub fn sort_records<R, K, F>(
        &self,
        ctx: &mut MachineCtx,
        local: Vec<R>,
        key_of: F,
    ) -> SortedPartition<(K, R)>
    where
        R: Copy + Send + Sync + 'static,
        K: Key,
        F: Fn(&R) -> K,
    {
        let keyed: Vec<KeyedRecord<K, R>> = local
            .into_iter()
            .map(|r| KeyedRecord {
                key: key_of(&r),
                record: r,
            })
            .collect();
        let part = self.sort_impl(ctx, keyed);
        SortedPartition {
            data: part.data.into_iter().map(|kr| (kr.key, kr.record)).collect(),
            splitters: part
                .splitters
                .into_iter()
                .map(|kr| (kr.key, kr.record))
                .collect(),
        }
    }

    /// Sorts several independent datasets *simultaneously* — the §VI
    /// claim "is able to sort different data simultaneously" taken
    /// literally: all batches share one sample gather, one splitter
    /// broadcast, and one data exchange, instead of paying the collective
    /// latencies once per dataset.
    ///
    /// Every machine must pass the same number of batches (SPMD
    /// contract). Returns one [`SortedPartition`] per batch.
    // analyze: allow(panic-surface): batch and destination indexing is
    // bounded by the SPMD contract — per-batch offsets, send offsets, and
    // source bounds are all built from the same batch set in this call.
    // analyze: allow(hot-path-alloc): §IV step orchestration — sample,
    // splitter, and per-destination staging buffers are the step outputs
    // themselves, allocated at batch (not element) granularity.
    pub fn sort_batch<K: Key>(
        &self,
        ctx: &mut MachineCtx,
        locals: Vec<Vec<K>>,
    ) -> Vec<SortedPartition<K>> {
        let p = ctx.num_machines();
        let workers = ctx.workers();
        let num_batches = locals.len();
        if num_batches == 0 {
            return Vec::new();
        }

        // Step 1: local sort, per batch. Each entry keeps its "pooled"
        // flag so the buffers can be returned to the chunk pool once the
        // combined send array has been built.
        let local_algo = self.config.local_sort;
        let sorted: Vec<(Vec<K>, bool)> = ctx.step(steps::LOCAL_SORT, move |ctx| {
            locals
                .into_iter()
                .map(|batch| run_local_sort(ctx, local_algo, batch))
                .collect()
        });

        // Step 2: ONE gather carrying every batch's samples, batch-tagged.
        let sample_runs = ctx.step(steps::SAMPLING, |ctx| {
            let mut tagged: Vec<(u32, K)> = Vec::new();
            for (b, (batch, _)) in sorted.iter().enumerate() {
                let count = self.config.samples_per_machine(
                    ctx.buffer_bytes(),
                    p * num_batches, // the buffer budget is shared
                    std::mem::size_of::<K>(),
                );
                for s in select_regular_samples(batch, count) {
                    tagged.push((b as u32, s));
                }
            }
            ctx.gather_to_master(tagged)
        });

        // Step 3: ONE broadcast carrying every batch's splitters.
        let all_splitters: Vec<Vec<K>> = ctx.step(steps::SPLITTERS, |ctx| {
            let selected = sample_runs.map(|runs| {
                let mut out: Vec<(u32, K)> = Vec::new();
                for b in 0..num_batches as u32 {
                    // Extract batch b's sorted sample run from each machine.
                    let batch_runs: Vec<Vec<K>> = runs
                        .iter()
                        .map(|run| {
                            let lo = run.partition_point(|&(rb, _)| rb < b);
                            let hi = run.partition_point(|&(rb, _)| rb <= b);
                            run[lo..hi].iter().map(|&(_, k)| k).collect()
                        })
                        .collect();
                    for s in select_splitters(&batch_runs, p) {
                        out.push((b, s));
                    }
                }
                out
            });
            let flat = ctx.broadcast_from_master(selected);
            (0..num_batches as u32)
                .map(|b| {
                    flat.iter()
                        .filter(|&&(rb, _)| rb == b)
                        .map(|&(_, k)| k)
                        .collect()
                })
                .collect()
        });

        // Step 4: partition each batch; build ONE combined send array of
        // batch-tagged keys, destination-major.
        let (combined, send_offsets) = ctx.step(steps::PARTITION, |_| {
            let per_batch_offsets: Vec<Vec<usize>> = sorted
                .iter()
                .zip(&all_splitters)
                .map(|((batch, _), splitters)| {
                    if splitters.is_empty() && p > 1 {
                        let mut off = vec![0usize; p + 1];
                        for slot in off.iter_mut().skip(1) {
                            *slot = batch.len();
                        }
                        off
                    } else {
                        splitter_offsets(batch, splitters, self.config.investigator)
                    }
                })
                .collect();
            let total: usize = sorted.iter().map(|(s, _)| s.len()).sum();
            let mut combined: Vec<(u32, K)> = Vec::with_capacity(total);
            let mut send_offsets = Vec::with_capacity(p + 1);
            send_offsets.push(0);
            for dst in 0..p {
                for (b, (batch, _)) in sorted.iter().enumerate() {
                    let off = &per_batch_offsets[b];
                    let tag = b as u32;
                    combined.extend(batch[off[dst]..off[dst + 1]].iter().map(|&k| (tag, k)));
                }
                send_offsets.push(combined.len());
            }
            (combined, send_offsets)
        });
        // The combined send array owns a copy of every batch: pooled
        // step-1 buffers can go back to the chunk pool now.
        for (buf, pooled) in sorted {
            if pooled {
                ctx.pool().release(buf);
            }
        }

        // Step 5: ONE exchange for all batches.
        let (received, source_bounds) = ctx.step(steps::EXCHANGE, |ctx| {
            ctx.exchange_by_offsets(&combined, &send_offsets)
        });
        drop(combined);

        // Step 6: split each source run by batch tag, then merge each
        // batch's per-source runs with the configured strategy.
        ctx.step(steps::FINAL_MERGE, move |ctx| {
            (0..num_batches)
                .map(|b| {
                    let tag = b as u32;
                    let mut data: Vec<K> = Vec::new();
                    let mut bounds = vec![0usize];
                    for w in source_bounds.windows(2) {
                        let run = &received[w[0]..w[1]];
                        let lo = run.partition_point(|&(rb, _)| rb < tag);
                        let hi = run.partition_point(|&(rb, _)| rb <= tag);
                        data.extend(run[lo..hi].iter().map(|&(_, k)| k));
                        bounds.push(data.len());
                    }
                    let merged =
                        final_merge_runs(ctx, self.config.final_merge, data, &bounds, workers);
                    SortedPartition {
                        data: merged,
                        splitters: all_splitters[b].clone(),
                    }
                })
                .collect()
        })
    }

    // analyze: allow(hot-path-alloc): top-level driver staging (the local
    // batch vector) handed straight into the step pipeline.
    fn sort_impl<T: Key>(&self, ctx: &mut MachineCtx, local: Vec<T>) -> SortedPartition<T> {
        let p = ctx.num_machines();
        let workers = ctx.workers();
        let input_items = local.len();

        // Step 1: local parallel sort (chunk → kernel → parallel k-way
        // merge into a pool-recycled buffer).
        let local_algo = self.config.local_sort;
        let (sorted, sorted_pooled) = ctx.step(steps::LOCAL_SORT, move |ctx| {
            run_local_sort(ctx, local_algo, local)
        });

        // Step 2: regular samples to master (buffer-sized rule, §IV-B).
        let sample_count =
            self.config
                .samples_per_machine(ctx.buffer_bytes(), p, std::mem::size_of::<T>());
        let sample_runs = ctx.step(steps::SAMPLING, |ctx| {
            let samples = select_regular_samples(&sorted, sample_count);
            ctx.gather_to_master(samples)
        });

        // Step 3: master merges sample runs, selects and broadcasts the
        // p − 1 splitters.
        let splitters = ctx.step(steps::SPLITTERS, |ctx| {
            let selected = sample_runs.map(|runs| select_splitters(&runs, p));
            ctx.broadcast_from_master(selected)
        });

        // Step 4: investigator partitioning into p send ranges.
        let offsets = ctx.step(steps::PARTITION, |_| {
            if splitters.is_empty() && p > 1 {
                // Degenerate tiny input: no samples anywhere. Route
                // everything to machine 0.
                let mut off = vec![0usize; p + 1];
                for slot in off.iter_mut().skip(1) {
                    *slot = sorted.len();
                }
                off
            } else {
                splitter_offsets(&sorted, &splitters, self.config.investigator)
            }
        });

        // Step 5: asynchronous offset-addressed exchange.
        let (received, source_bounds) =
            ctx.step(steps::EXCHANGE, |ctx| ctx.exchange_by_offsets(&sorted, &offsets));
        if sorted_pooled {
            // The exchange consumed the pooled step-1 buffer: hand the
            // chunk back before the teardown quiescence check.
            ctx.pool().release(sorted);
        } else {
            drop(sorted);
        }

        // Step 6: merge of the per-source sorted runs.
        let merged = ctx.step(steps::FINAL_MERGE, move |ctx| {
            final_merge_runs(ctx, self.config.final_merge, received, &source_bounds, workers)
        });

        record_sort_metrics(ctx, input_items, sample_count, &offsets, merged.len());

        SortedPartition {
            data: merged,
            splitters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgxd::cluster::{Cluster, ClusterConfig};
    use pgxd_datagen::{generate_partitioned, Distribution};

    fn run_sort(
        machines: usize,
        workers: usize,
        dist: Distribution,
        n: usize,
        config: SortConfig,
        seed: u64,
    ) -> (Vec<Vec<u64>>, Vec<u64>) {
        let parts = generate_partitioned(dist, n, machines, seed);
        let mut expect: Vec<u64> = parts.concat();
        expect.sort_unstable();
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(workers));
        let sorter = DistSorter::new(config);
        let report = cluster.run(|ctx| {
            let local = parts[ctx.id()].clone();
            sorter.sort(ctx, local).data
        });
        (report.results, expect)
    }

    fn assert_globally_sorted(results: &[Vec<u64>], expect: &[u64]) {
        let flat: Vec<u64> = results.concat();
        assert_eq!(flat, expect);
    }

    #[test]
    fn sorts_uniform_across_machine_counts() {
        for machines in [1usize, 2, 3, 4, 8] {
            let (results, expect) = run_sort(
                machines,
                2,
                Distribution::Uniform,
                20_000,
                SortConfig::default(),
                machines as u64,
            );
            assert_globally_sorted(&results, &expect);
        }
    }

    #[test]
    fn sorts_all_four_distributions() {
        for dist in Distribution::ALL {
            let (results, expect) = run_sort(4, 2, dist, 30_000, SortConfig::default(), 7);
            assert_globally_sorted(&results, &expect);
        }
    }

    #[test]
    fn duplicates_balanced_with_investigator() {
        let (results, expect) = run_sort(
            8,
            2,
            Distribution::Exponential,
            40_000,
            SortConfig::default(),
            11,
        );
        assert_globally_sorted(&results, &expect);
        let sizes: Vec<usize> = results.iter().map(|r| r.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        // Balanced: no machine holds more than ~2x the smallest share.
        assert!(
            max < 2 * min.max(1) + 40_000 / 16,
            "imbalanced sizes: {sizes:?}"
        );
    }

    #[test]
    fn all_equal_keys_still_balanced() {
        let machines = 5;
        let parts: Vec<Vec<u64>> = (0..machines).map(|_| vec![9u64; 2000]).collect();
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            let local = parts[ctx.id()].clone();
            sorter.sort(ctx, local).data.len()
        });
        let sizes = &report.results;
        let total: usize = sizes.iter().sum();
        assert_eq!(total, machines * 2000);
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= total / machines, "sizes: {sizes:?}");
    }

    #[test]
    fn without_investigator_all_equal_collapses() {
        let machines = 5;
        let parts: Vec<Vec<u64>> = (0..machines).map(|_| vec![9u64; 1000]).collect();
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(1));
        let sorter = DistSorter::new(SortConfig::default().investigator(false));
        let report = cluster.run(|ctx| {
            let local = parts[ctx.id()].clone();
            sorter.sort(ctx, local).data.len()
        });
        // The Fig. 3b pathology: one machine gets (almost) everything.
        let max = *report.results.iter().max().unwrap();
        assert_eq!(max, machines * 1000, "{:?}", report.results);
    }

    #[test]
    fn tiny_and_empty_inputs() {
        for n in [0usize, 1, 3, 10] {
            let (results, expect) =
                run_sort(4, 1, Distribution::Uniform, n, SortConfig::default(), 3);
            assert_globally_sorted(&results, &expect);
        }
    }

    #[test]
    fn provenance_maps_back_to_origin() {
        let machines = 3;
        let parts = generate_partitioned(Distribution::Normal, 5000, machines, 21);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            let local = parts[ctx.id()].clone();
            sorter.sort_keyed(ctx, &local).data
        });
        let mut count = 0;
        let mut prev: Option<u64> = None;
        for part in &report.results {
            for item in part {
                // Key-sorted globally.
                if let Some(p) = prev {
                    assert!(p <= item.key);
                }
                prev = Some(item.key);
                // Provenance points at the actual original element.
                assert_eq!(parts[item.origin as usize][item.index as usize], item.key);
                count += 1;
            }
        }
        assert_eq!(count, 5000);
    }

    #[test]
    fn sort_pairs_carries_payloads() {
        let machines = 4;
        let parts = generate_partitioned(Distribution::Uniform, 8000, machines, 5);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            // payload = key * 3 + 1, so we can verify pairs stay intact.
            let local: Vec<(u64, u64)> = parts[ctx.id()]
                .iter()
                .map(|&k| (k, k.wrapping_mul(3) + 1))
                .collect();
            sorter.sort_pairs(ctx, local).data
        });
        let flat: Vec<(u64, u64)> = report.results.concat();
        assert_eq!(flat.len(), 8000);
        assert!(flat.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(flat.iter().all(|&(k, v)| v == k.wrapping_mul(3) + 1));
    }

    #[test]
    fn kway_final_merge_ablation_agrees() {
        let (balanced, expect) = run_sort(
            4,
            2,
            Distribution::RightSkewed,
            20_000,
            SortConfig::default(),
            9,
        );
        let (kway, expect2) = run_sort(
            4,
            2,
            Distribution::RightSkewed,
            20_000,
            SortConfig::default().balanced_final_merge(false),
            9,
        );
        assert_eq!(expect, expect2);
        assert_globally_sorted(&balanced, &expect);
        assert_globally_sorted(&kway, &expect);
    }

    #[test]
    fn timsort_local_sort_agrees() {
        let (results, expect) = run_sort(
            3,
            2,
            Distribution::Exponential,
            15_000,
            SortConfig::default().local_sort(LocalSortAlgo::Timsort),
            13,
        );
        assert_globally_sorted(&results, &expect);
    }

    #[test]
    fn ssssort_local_sort_agrees() {
        for dist in [Distribution::Uniform, Distribution::RightSkewed] {
            let (results, expect) = run_sort(
                3,
                2,
                dist,
                15_000,
                SortConfig::default().local_sort(LocalSortAlgo::SuperScalarSampleSort),
                19,
            );
            assert_globally_sorted(&results, &expect);
        }
    }

    #[test]
    fn ipssort_local_sort_agrees() {
        for dist in Distribution::ALL {
            let (results, expect) = run_sort(
                3,
                2,
                dist,
                25_000,
                SortConfig::default().local_sort(LocalSortAlgo::InPlaceSampleSort),
                61,
            );
            assert_globally_sorted(&results, &expect);
        }
    }

    #[test]
    fn radix_local_sort_agrees() {
        for dist in [Distribution::Uniform, Distribution::Exponential] {
            let (results, expect) = run_sort(
                3,
                4,
                dist,
                60_000,
                SortConfig::default().local_sort(LocalSortAlgo::Radix),
                63,
            );
            assert_globally_sorted(&results, &expect);
        }
    }

    #[test]
    fn auto_local_sort_agrees_across_sizes() {
        // Below and above AUTO_RADIX_MIN per machine: both routes of the
        // Auto heuristic must agree with the expected order.
        for n in [6_000usize, 150_000] {
            let (results, expect) = run_sort(
                2,
                4,
                Distribution::RightSkewed,
                n,
                SortConfig::default().local_sort(LocalSortAlgo::Auto),
                65,
            );
            assert_globally_sorted(&results, &expect);
        }
    }

    #[test]
    fn radix_falls_back_for_non_radix_keys() {
        // (u64, u64) pairs have no radix image: Radix must silently take
        // the comparison path and still sort correctly.
        let machines = 3;
        let parts = generate_partitioned(Distribution::Uniform, 30_000, machines, 67);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let sorter =
            DistSorter::new(SortConfig::default().local_sort(LocalSortAlgo::Radix));
        let report = cluster.run(|ctx| {
            let local: Vec<(u64, u64)> = parts[ctx.id()]
                .iter()
                .map(|&k| (k, k ^ 0xabcd))
                .collect();
            sorter.sort_pairs(ctx, local).data
        });
        let flat: Vec<(u64, u64)> = report.results.concat();
        assert_eq!(flat.len(), 30_000);
        assert!(flat.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(flat.iter().all(|&(k, v)| v == k ^ 0xabcd));
    }

    #[test]
    fn every_local_algo_sorts_tiny_inputs() {
        for algo in LocalSortAlgo::ALL {
            for n in [0usize, 1, 5] {
                let (results, expect) = run_sort(
                    3,
                    2,
                    Distribution::Uniform,
                    n,
                    SortConfig::default().local_sort(algo),
                    71,
                );
                assert_globally_sorted(&results, &expect);
            }
        }
    }

    #[test]
    fn parallel_kway_final_merge_agrees() {
        use crate::config::FinalMergeAlgo;
        for dist in [Distribution::Uniform, Distribution::Exponential] {
            let (results, expect) = run_sort(
                4,
                4,
                dist,
                80_000,
                SortConfig::default()
                    .final_merge(FinalMergeAlgo::ParallelKway)
                    .local_sort(LocalSortAlgo::InPlaceSampleSort),
                73,
            );
            assert_globally_sorted(&results, &expect);
        }
    }

    #[test]
    fn batch_sort_with_new_algos_and_parallel_merge() {
        use crate::config::FinalMergeAlgo;
        let machines = 3;
        let batches = [
            generate_partitioned(Distribution::Uniform, 30_000, machines, 75),
            generate_partitioned(Distribution::Exponential, 20_000, machines, 76),
        ];
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(4));
        let sorter = DistSorter::new(
            SortConfig::default()
                .local_sort(LocalSortAlgo::Auto)
                .final_merge(FinalMergeAlgo::ParallelKway),
        );
        let batches_ref = &batches;
        let report = cluster.run(|ctx| {
            let locals: Vec<Vec<u64>> =
                batches_ref.iter().map(|b| b[ctx.id()].clone()).collect();
            let parts = sorter.sort_batch(ctx, locals);
            parts.into_iter().map(|p| p.data).collect::<Vec<_>>()
        });
        for (b, batch) in batches.iter().enumerate() {
            let mut expect: Vec<u64> = batch.concat();
            expect.sort_unstable();
            let got: Vec<u64> = report
                .results
                .iter()
                .flat_map(|outs| outs[b].clone())
                .collect();
            assert_eq!(got, expect, "batch {b}");
        }
    }

    #[test]
    fn descending_sort_reverses_global_order() {
        let machines = 4;
        let parts = generate_partitioned(Distribution::Uniform, 8000, machines, 41);
        let mut expect: Vec<u64> = parts.concat();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| sorter.sort_descending(ctx, parts[ctx.id()].clone()).data);
        assert_eq!(report.results.concat(), expect);
    }

    #[test]
    fn record_sort_by_extracted_key() {
        // Records with a non-Ord payload component (an f32), sorted by an
        // extracted integer key.
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct Sample {
            id: u64,
            weight: f32,
        }
        let machines = 3;
        let raw = generate_partitioned(Distribution::Normal, 6000, machines, 43);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            let records: Vec<Sample> = raw[ctx.id()]
                .iter()
                .map(|&k| Sample {
                    id: k,
                    weight: (k % 97) as f32,
                })
                .collect();
            sorter.sort_records(ctx, records, |r| r.id).data
        });
        let flat: Vec<(u64, Sample)> = report.results.concat();
        assert_eq!(flat.len(), 6000);
        assert!(flat.windows(2).all(|w| w[0].0 <= w[1].0));
        // Payloads stay attached to their keys.
        assert!(flat.iter().all(|(k, r)| r.id == *k && r.weight == (k % 97) as f32));
    }

    #[test]
    fn batch_sort_sorts_every_batch() {
        let machines = 4;
        let batches = [
            generate_partitioned(Distribution::Uniform, 8000, machines, 51),
            generate_partitioned(Distribution::Exponential, 6000, machines, 52),
            generate_partitioned(Distribution::RightSkewed, 4000, machines, 53),
        ];
        let expects: Vec<Vec<u64>> = batches
            .iter()
            .map(|b| {
                let mut v: Vec<u64> = b.concat();
                v.sort_unstable();
                v
            })
            .collect();
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let sorter = DistSorter::default();
        let batches_ref = &batches;
        let report = cluster.run(|ctx| {
            let locals: Vec<Vec<u64>> =
                batches_ref.iter().map(|b| b[ctx.id()].clone()).collect();
            let parts = sorter.sort_batch(ctx, locals);
            parts.into_iter().map(|p| p.data).collect::<Vec<_>>()
        });
        for (b, expect) in expects.iter().enumerate() {
            let got: Vec<u64> = report
                .results
                .iter()
                .flat_map(|outs| outs[b].clone())
                .collect();
            assert_eq!(&got, expect, "batch {b}");
        }
    }

    #[test]
    fn batch_sort_single_batch_matches_plain_sort() {
        let machines = 3;
        let parts = generate_partitioned(Distribution::Normal, 6000, machines, 55);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            let plain = sorter.sort(ctx, parts[ctx.id()].clone()).data;
            let batched = sorter
                .sort_batch(ctx, vec![parts[ctx.id()].clone()])
                .pop()
                .unwrap()
                .data;
            (plain, batched)
        });
        let flat_plain: Vec<u64> = report.results.iter().flat_map(|(p, _)| p.clone()).collect();
        let flat_batch: Vec<u64> = report.results.iter().flat_map(|(_, b)| b.clone()).collect();
        assert_eq!(flat_plain, flat_batch);
    }

    #[test]
    fn batch_sort_with_empty_and_zero_batches() {
        let machines = 3;
        let parts = generate_partitioned(Distribution::Uniform, 3000, machines, 57);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(1));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            let zero = sorter.sort_batch::<u64>(ctx, vec![]);
            assert!(zero.is_empty());
            // One real batch, one empty batch.
            let locals = vec![parts[ctx.id()].clone(), Vec::new()];
            let out = sorter.sort_batch(ctx, locals);
            (out[0].data.clone(), out[1].data.clone())
        });
        let mut expect: Vec<u64> = parts.concat();
        expect.sort_unstable();
        let got: Vec<u64> = report.results.iter().flat_map(|(a, _)| a.clone()).collect();
        assert_eq!(got, expect);
        assert!(report.results.iter().all(|(_, b)| b.is_empty()));
    }

    #[test]
    fn batch_sort_keeps_duplicate_heavy_batches_balanced() {
        let machines = 5;
        let heavy: Vec<Vec<u64>> = (0..machines).map(|_| vec![3u64; 2000]).collect();
        let mixed = generate_partitioned(Distribution::Uniform, 10_000, machines, 59);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(1));
        let sorter = DistSorter::default();
        let heavy_ref = &heavy;
        let mixed_ref = &mixed;
        let report = cluster.run(|ctx| {
            let out = sorter.sort_batch(
                ctx,
                vec![heavy_ref[ctx.id()].clone(), mixed_ref[ctx.id()].clone()],
            );
            (out[0].len(), out[1].len())
        });
        let heavy_sizes: Vec<usize> = report.results.iter().map(|r| r.0).collect();
        assert_eq!(heavy_sizes.iter().sum::<usize>(), machines * 2000);
        let max = heavy_sizes.iter().max().unwrap();
        let min = heavy_sizes.iter().min().unwrap();
        assert!(max - min <= 1, "heavy batch imbalanced: {heavy_sizes:?}");
    }

    #[test]
    fn records_all_six_steps() {
        let parts = generate_partitioned(Distribution::Uniform, 4000, 2, 17);
        let cluster = Cluster::new(ClusterConfig::new(2));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            let local = parts[ctx.id()].clone();
            let _ = sorter.sort(ctx, local);
        });
        let names = report.steps.step_names();
        for step in steps::ALL {
            assert!(names.contains(&step), "missing step {step}");
        }
    }

    #[test]
    fn sort_registers_load_metrics() {
        let machines = 3;
        let parts = generate_partitioned(Distribution::Uniform, 9000, machines, 77);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            let local = parts[ctx.id()].clone();
            sorter.sort(ctx, local).data.len()
        });
        // Output gauges cover every element exactly once.
        let out_total: u64 = (0..machines)
            .map(|m| {
                report
                    .metrics
                    .gauge(&format!("pgxd_sort_output_items{{machine=\"{m}\"}}"))
                    .expect("output gauge registered")
            })
            .sum();
        assert_eq!(out_total, 9000);
        // One send range per (machine, destination) pair.
        let ranges = report
            .metrics
            .histogram("pgxd_sort_send_range_items")
            .expect("send-range histogram registered");
        assert_eq!(ranges.count, (machines * machines) as u64);
        assert_eq!(ranges.sum, 9000);
    }

    #[test]
    fn splitters_reported_and_ranges_disjoint() {
        let parts = generate_partitioned(Distribution::Uniform, 30_000, 4, 23);
        let cluster = Cluster::new(ClusterConfig::new(4).workers_per_machine(2));
        let sorter = DistSorter::default();
        let report = cluster.run(|ctx| {
            let local = parts[ctx.id()].clone();
            let part = sorter.sort(ctx, local);
            (part.splitters.clone(), part.range().map(|(a, b)| (*a, *b)))
        });
        let (splitters, _) = &report.results[0];
        assert_eq!(splitters.len(), 3);
        // Machine ranges must be non-overlapping and ordered by id.
        let ranges: Vec<(u64, u64)> = report
            .results
            .iter()
            .filter_map(|(_, r)| *r)
            .collect();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping ranges {ranges:?}");
        }
    }

    #[test]
    fn small_sample_factor_still_correct() {
        let (results, expect) = run_sort(
            4,
            2,
            Distribution::RightSkewed,
            20_000,
            SortConfig::default().sample_factor(0.004),
            31,
        );
        assert_globally_sorted(&results, &expect);
    }
}
