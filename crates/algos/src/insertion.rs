//! Insertion sorts: the base case of the quicksort and the run-bulking
//! step of TimSort.

/// Plain insertion sort. `O(n²)` worst case but unbeatable on the short
/// slices the quicksort bottoms out on.
pub fn insertion_sort<T: Ord + Copy>(data: &mut [T]) {
    for i in 1..data.len() {
        let value = data[i];
        let mut j = i;
        while j > 0 && data[j - 1] > value {
            data[j] = data[j - 1];
            j -= 1;
        }
        data[j] = value;
    }
}

/// Binary insertion sort over `data[..len]` assuming `data[..sorted]` is
/// already sorted. This is TimSort's run-extension primitive: the position
/// of each new element is found by binary search (fewer comparisons than
/// plain insertion when comparisons are the cost), then the tail is shifted.
pub fn binary_insertion_sort<T: Ord + Copy>(data: &mut [T], sorted: usize) {
    for i in sorted.max(1)..data.len() {
        let value = data[i];
        // Rightmost insertion point keeps the sort stable for equal keys.
        let pos = match data[..i].binary_search_by(|probe| {
            if *probe <= value {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        }) {
            Ok(p) | Err(p) => p,
        };
        data.copy_within(pos..i, pos + 1);
        data[pos] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_sorted<T: Ord>(v: &[T]) -> bool {
        v.windows(2).all(|w| w[0] <= w[1])
    }

    #[test]
    fn insertion_sorts_reverse() {
        let mut v: Vec<i32> = (0..64).rev().collect();
        insertion_sort(&mut v);
        assert!(is_sorted(&v));
        assert_eq!(v.len(), 64);
    }

    #[test]
    fn insertion_empty_and_single() {
        let mut empty: Vec<u8> = vec![];
        insertion_sort(&mut empty);
        let mut one = vec![42u8];
        insertion_sort(&mut one);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn insertion_all_equal() {
        let mut v = vec![7u32; 33];
        insertion_sort(&mut v);
        assert!(v.iter().all(|&x| x == 7));
    }

    #[test]
    fn binary_insertion_with_sorted_prefix() {
        let mut v = vec![1, 3, 5, 7, 2, 8, 0];
        binary_insertion_sort(&mut v, 4);
        assert_eq!(v, vec![0, 1, 2, 3, 5, 7, 8]);
    }

    #[test]
    fn binary_insertion_from_scratch() {
        let mut v = vec![9i64, -3, 4, 4, 0, 11, -3];
        binary_insertion_sort(&mut v, 0);
        assert_eq!(v, vec![-3, -3, 0, 4, 4, 9, 11]);
    }

    #[test]
    fn binary_insertion_matches_std() {
        // deterministic pseudo-random data, no external RNG needed here
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut v: Vec<u64> = (0..200)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 50
            })
            .collect();
        let mut expect = v.clone();
        expect.sort();
        binary_insertion_sort(&mut v, 0);
        assert_eq!(v, expect);
    }
}
