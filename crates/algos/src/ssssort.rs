//! Super scalar sample sort (Sanders & Winkel, ESA 2004 — the paper's
//! reference \[21\]).
//!
//! The single-machine ancestor of the distributed algorithm: pick `k − 1`
//! splitters from a sample, lay them out as an implicit Eytzinger search
//! tree, classify every element with a branch-predictable loop of
//! `log₂ k` comparisons, scatter into buckets, and recurse. Offered as a
//! third local-sort option
//! ([`LocalSortAlgo`](../../pgxd_core/config/enum.LocalSortAlgo.html))
//! so the local-sort choice itself can be ablated.

use crate::quicksort::quicksort;
use crate::Key;

/// Buckets per classification level (power of two).
pub const NUM_BUCKETS: usize = 64;
const LOG_BUCKETS: u32 = NUM_BUCKETS.trailing_zeros();

/// Oversampling factor: `NUM_BUCKETS * OVERSAMPLING` sample candidates.
pub const OVERSAMPLING: usize = 8;

/// Below this size, hand off to quicksort.
pub const BASE_CASE: usize = 2048;

/// Sorts `data` with super scalar sample sort. Out-of-place per level
/// (one scatter buffer), recursion on buckets.
pub fn super_scalar_sample_sort<T: Key>(data: Vec<T>) -> Vec<T> {
    let depth_limit = 1 + data.len().max(2).ilog2() / LOG_BUCKETS;
    sort_rec(data, depth_limit as usize)
}

fn sort_rec<T: Key>(mut data: Vec<T>, depth: usize) -> Vec<T> {
    let n = data.len();
    if n <= BASE_CASE || depth == 0 {
        quicksort(&mut data);
        return data;
    }

    // --- sample & splitters -------------------------------------------------
    let sample_size = (NUM_BUCKETS * OVERSAMPLING).min(n);
    let mut sample: Vec<T> = Vec::with_capacity(sample_size);
    let mut x: u64 = 0x9e3779b97f4a7c15 ^ (n as u64);
    for _ in 0..sample_size {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        sample.push(data[(x % n as u64) as usize]);
    }
    quicksort(&mut sample);
    // k - 1 splitters at regular sample positions.
    let splitters: Vec<T> = (1..NUM_BUCKETS)
        .map(|i| sample[i * sample.len() / NUM_BUCKETS])
        .collect();

    // Degenerate sample (all candidates equal): classification would put
    // everything in one bucket; fall back.
    if splitters.first() == splitters.last() {
        quicksort(&mut data);
        return data;
    }

    // --- implicit Eytzinger splitter tree -----------------------------------
    // tree[1..NUM_BUCKETS] holds the splitters in BFS order of a perfect
    // binary search tree; index 0 is unused.
    let mut tree = vec![splitters[0]; NUM_BUCKETS];
    {
        let mut idx = 0usize;
        fill_tree(&splitters, &mut tree, 1, &mut idx);
        debug_assert_eq!(idx, splitters.len());
    }

    // --- classify + scatter --------------------------------------------------
    let mut bucket_of = vec![0u8; n];
    let mut counts = [0usize; NUM_BUCKETS];
    for (e, &key) in data.iter().enumerate() {
        let mut i = 1usize;
        for _ in 0..LOG_BUCKETS {
            // Branch-free descent: left for <=, right for >.
            i = 2 * i + usize::from(key > tree[i]);
        }
        let b = i - NUM_BUCKETS;
        bucket_of[e] = b as u8;
        counts[b] += 1;
    }
    let mut offsets = [0usize; NUM_BUCKETS];
    let mut running = 0;
    for (o, &c) in offsets.iter_mut().zip(counts.iter()) {
        *o = running;
        running += c;
    }
    let mut scattered: Vec<T> = Vec::with_capacity(n);
    // SAFETY-free scatter: clone then overwrite every slot via cursors.
    scattered.extend_from_slice(&data);
    {
        let mut cursors = offsets;
        for (e, &key) in data.iter().enumerate() {
            let b = bucket_of[e] as usize;
            scattered[cursors[b]] = key;
            cursors[b] += 1;
        }
    }
    drop(data);
    drop(bucket_of);

    // --- recurse per bucket ---------------------------------------------------
    let mut out = Vec::with_capacity(n);
    for b in 0..NUM_BUCKETS {
        let start = offsets[b];
        let end = start + counts[b];
        if counts[b] == 0 {
            continue;
        }
        let bucket: Vec<T> = scattered[start..end].to_vec();
        // Guaranteed progress: a bucket that barely shrank (heavy
        // duplication piling onto one splitter) is finished directly.
        let sorted_bucket = if counts[b] > n / 2 {
            let mut v = bucket;
            quicksort(&mut v);
            v
        } else {
            sort_rec(bucket, depth - 1)
        };
        out.extend(sorted_bucket);
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// In-order fill of the Eytzinger layout: node `node`'s subtree receives
/// the next splitters in sorted order.
fn fill_tree<T: Copy>(sorted: &[T], tree: &mut [T], node: usize, idx: &mut usize) {
    if node >= tree.len() {
        return;
    }
    fill_tree(sorted, tree, 2 * node, idx);
    tree[node] = sorted[*idx];
    *idx += 1;
    fill_tree(sorted, tree, 2 * node + 1, idx);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_vec(seed: u64, n: usize, modulus: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % modulus
            })
            .collect()
    }

    fn check(v: Vec<u64>) {
        let mut expect = v.clone();
        expect.sort_unstable();
        assert_eq!(super_scalar_sample_sort(v), expect);
    }

    #[test]
    fn sorts_random_various_sizes() {
        for n in [0usize, 1, 100, 2048, 2049, 10_000, 100_000] {
            check(xorshift_vec(1, n, u64::MAX));
        }
    }

    #[test]
    fn sorts_heavy_duplicates() {
        for modulus in [1u64, 2, 5, 50] {
            check(xorshift_vec(7, 50_000, modulus));
        }
    }

    #[test]
    fn sorts_presorted_reverse_and_organ() {
        check((0..50_000).collect());
        check((0..50_000).rev().collect());
        check((0..25_000).chain((0..25_000).rev()).collect());
    }

    #[test]
    fn sorts_single_dominant_value() {
        let mut v = vec![7u64; 40_000];
        v.extend(xorshift_vec(3, 10_000, 1000));
        check(v);
    }

    #[test]
    fn eytzinger_tree_is_search_tree() {
        let splitters: Vec<u64> = (1..NUM_BUCKETS as u64).collect();
        let mut tree = vec![0u64; NUM_BUCKETS];
        let mut idx = 0;
        fill_tree(&splitters, &mut tree, 1, &mut idx);
        assert_eq!(idx, splitters.len());
        // Bucket b receives keys in (s[b-1], s[b]] with s = [1..=63], so
        // a key's bucket is the number of splitters strictly below it.
        for key in 0..=NUM_BUCKETS as u64 {
            let mut i = 1usize;
            for _ in 0..LOG_BUCKETS {
                i = 2 * i + usize::from(key > tree[i]);
            }
            let bucket = (i - NUM_BUCKETS) as u64;
            let expect = splitters.iter().filter(|&&s| s < key).count() as u64;
            assert_eq!(bucket, expect, "key {key}");
        }
    }
}
