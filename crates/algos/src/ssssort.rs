//! Super scalar sample sort (Sanders & Winkel, ESA 2004 — the paper's
//! reference \[21\]).
//!
//! The single-machine ancestor of the distributed algorithm: pick `k − 1`
//! splitters from a sample, lay them out as an implicit Eytzinger search
//! tree, classify every element with a branch-predictable loop of
//! `log₂ k` comparisons, scatter into buckets, and recurse. Offered as a
//! third local-sort option
//! ([`LocalSortAlgo`](../../pgxd_core/config/enum.LocalSortAlgo.html))
//! so the local-sort choice itself can be ablated.

use crate::quicksort::quicksort;
use crate::Key;

/// Buckets per classification level (power of two).
pub const NUM_BUCKETS: usize = 64;
const LOG_BUCKETS: u32 = NUM_BUCKETS.trailing_zeros();

/// Oversampling factor: `NUM_BUCKETS * OVERSAMPLING` sample candidates.
pub const OVERSAMPLING: usize = 8;

/// Below this size, hand off to quicksort.
pub const BASE_CASE: usize = 2048;

/// Sorts `data` with super scalar sample sort. Out-of-place per level
/// (one scatter buffer), recursion on buckets. Allocates the scratch kit
/// internally; callers with a buffer to recycle (e.g. the runtime's
/// per-worker chunk loop) should use
/// [`super_scalar_sample_sort_with_scratch`].
pub fn super_scalar_sample_sort<T: Key>(mut data: Vec<T>) -> Vec<T> {
    let mut scratch = Vec::new();
    super_scalar_sample_sort_with_scratch(&mut data, &mut scratch);
    data
}

/// Slice form of [`super_scalar_sample_sort`] scattering through a
/// caller-supplied scratch buffer (resized here to the slice length; prior
/// capacity is reused). One scratch + one label buffer serve every
/// recursion level — no per-level or per-bucket allocation.
// analyze: allow(hot-path-alloc): oracle-label buffer sized once per
// call; the element scratch itself is caller-provided and reused.
pub fn super_scalar_sample_sort_with_scratch<T: Key>(data: &mut [T], scratch: &mut Vec<T>) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let depth_limit = 1 + n.max(2).ilog2() / LOG_BUCKETS;
    scratch.clear();
    scratch.resize(n, data[0]);
    let mut labels = vec![0u8; n];
    sort_rec(data, &mut scratch[..n], &mut labels, depth_limit as usize);
}

// analyze: allow(hot-path-alloc): O(k) splitter/bucket bookkeeping per
// recursion level; element payloads stay in the shared scratch.
fn sort_rec<T: Key>(data: &mut [T], scratch: &mut [T], labels: &mut [u8], depth: usize) {
    let n = data.len();
    debug_assert_eq!(scratch.len(), n);
    debug_assert_eq!(labels.len(), n);
    if n <= BASE_CASE || depth == 0 {
        quicksort(data);
        return;
    }

    // --- sample & splitters -------------------------------------------------
    let sample_size = (NUM_BUCKETS * OVERSAMPLING).min(n);
    let mut sample: Vec<T> = Vec::with_capacity(sample_size);
    let mut x: u64 = 0x9e3779b97f4a7c15 ^ (n as u64);
    for _ in 0..sample_size {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        sample.push(data[(x % n as u64) as usize]);
    }
    quicksort(&mut sample);
    // k - 1 splitters at regular sample positions.
    let splitters: Vec<T> = (1..NUM_BUCKETS)
        .map(|i| sample[i * sample.len() / NUM_BUCKETS])
        .collect();

    // Degenerate sample (all candidates equal): classification would put
    // everything in one bucket; fall back.
    if splitters.first() == splitters.last() {
        quicksort(data);
        return;
    }

    // --- implicit Eytzinger splitter tree -----------------------------------
    // tree[1..NUM_BUCKETS] holds the splitters in BFS order of a perfect
    // binary search tree; index 0 is unused.
    let mut tree = vec![splitters[0]; NUM_BUCKETS];
    {
        let mut idx = 0usize;
        fill_tree(&splitters, &mut tree, 1, &mut idx);
        debug_assert_eq!(idx, splitters.len());
    }

    // --- classify + scatter --------------------------------------------------
    let mut counts = [0usize; NUM_BUCKETS];
    for (e, &key) in data.iter().enumerate() {
        let mut i = 1usize;
        for _ in 0..LOG_BUCKETS {
            // Branch-free descent: left for <=, right for >.
            i = 2 * i + usize::from(key > tree[i]);
        }
        let b = i - NUM_BUCKETS;
        labels[e] = b as u8;
        counts[b] += 1;
    }
    let mut offsets = [0usize; NUM_BUCKETS];
    let mut running = 0;
    for (o, &c) in offsets.iter_mut().zip(counts.iter()) {
        *o = running;
        running += c;
    }
    {
        let mut cursors = offsets;
        for (e, &key) in data.iter().enumerate() {
            let b = labels[e] as usize;
            scratch[cursors[b]] = key;
            cursors[b] += 1;
        }
    }
    data.copy_from_slice(scratch);

    // --- recurse per bucket ---------------------------------------------------
    let (mut data_rest, mut scratch_rest, mut labels_rest) = (data, scratch, labels);
    for &count in counts.iter() {
        let (bucket, dr) = data_rest.split_at_mut(count);
        let (bucket_scratch, sr) = scratch_rest.split_at_mut(count);
        let (bucket_labels, lr) = labels_rest.split_at_mut(count);
        (data_rest, scratch_rest, labels_rest) = (dr, sr, lr);
        if count < 2 {
            continue;
        }
        if count > n / 2 {
            // Guaranteed progress: a bucket that barely shrank (heavy
            // duplication piling onto one splitter) is finished directly.
            quicksort(bucket);
        } else {
            sort_rec(bucket, bucket_scratch, bucket_labels, depth - 1);
        }
    }
}

/// In-order fill of the Eytzinger layout: node `node`'s subtree receives
/// the next splitters in sorted order.
fn fill_tree<T: Copy>(sorted: &[T], tree: &mut [T], node: usize, idx: &mut usize) {
    if node >= tree.len() {
        return;
    }
    fill_tree(sorted, tree, 2 * node, idx);
    tree[node] = sorted[*idx];
    *idx += 1;
    fill_tree(sorted, tree, 2 * node + 1, idx);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_vec(seed: u64, n: usize, modulus: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % modulus
            })
            .collect()
    }

    fn check(v: Vec<u64>) {
        let mut expect = v.clone();
        expect.sort_unstable();
        assert_eq!(super_scalar_sample_sort(v), expect);
    }

    #[test]
    fn sorts_random_various_sizes() {
        for n in [0usize, 1, 100, 2048, 2049, 10_000, 100_000] {
            check(xorshift_vec(1, n, u64::MAX));
        }
    }

    #[test]
    fn sorts_heavy_duplicates() {
        for modulus in [1u64, 2, 5, 50] {
            check(xorshift_vec(7, 50_000, modulus));
        }
    }

    #[test]
    fn sorts_presorted_reverse_and_organ() {
        check((0..50_000).collect());
        check((0..50_000).rev().collect());
        check((0..25_000).chain((0..25_000).rev()).collect());
    }

    #[test]
    fn sorts_single_dominant_value() {
        let mut v = vec![7u64; 40_000];
        v.extend(xorshift_vec(3, 10_000, 1000));
        check(v);
    }

    #[test]
    fn scratch_api_reuses_buffer_across_calls() {
        let mut scratch = Vec::new();
        for seed in [1u64, 5, 9] {
            let mut v = xorshift_vec(seed, 30_000, 1 << 40);
            let mut expect = v.clone();
            expect.sort_unstable();
            super_scalar_sample_sort_with_scratch(&mut v, &mut scratch);
            assert_eq!(v, expect);
        }
        assert!(scratch.capacity() >= 30_000);
    }

    #[test]
    fn scratch_api_sorts_subslice_only() {
        let mut v = xorshift_vec(21, 20_000, u64::MAX);
        let head = v[..7].to_vec();
        let tail = v[19_000..].to_vec();
        let mut expect_mid = v[7..19_000].to_vec();
        expect_mid.sort_unstable();
        let mut scratch = Vec::new();
        super_scalar_sample_sort_with_scratch(&mut v[7..19_000], &mut scratch);
        assert_eq!(&v[..7], &head[..]);
        assert_eq!(&v[7..19_000], &expect_mid[..]);
        assert_eq!(&v[19_000..], &tail[..]);
    }

    #[test]
    fn eytzinger_tree_is_search_tree() {
        let splitters: Vec<u64> = (1..NUM_BUCKETS as u64).collect();
        let mut tree = vec![0u64; NUM_BUCKETS];
        let mut idx = 0;
        fill_tree(&splitters, &mut tree, 1, &mut idx);
        assert_eq!(idx, splitters.len());
        // Bucket b receives keys in (s[b-1], s[b]] with s = [1..=63], so
        // a key's bucket is the number of splitters strictly below it.
        for key in 0..=NUM_BUCKETS as u64 {
            let mut i = 1usize;
            for _ in 0..LOG_BUCKETS {
                i = 2 * i + usize::from(key > tree[i]);
            }
            let bucket = (i - NUM_BUCKETS) as u64;
            let expect = splitters.iter().filter(|&&s| s < key).count() as u64;
            assert_eq!(bucket, expect, "key {key}");
        }
    }
}
