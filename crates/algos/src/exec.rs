//! Minimal scoped fork-join execution used by the parallel algorithms in
//! this crate.
//!
//! The distributed runtime (`pgxd`) has a full task manager modelled on
//! PGX.D; the algorithms here only need "run these closures on up to `w`
//! threads and wait", so a thin wrapper over [`std::thread::scope`] keeps
//! `pgxd-algos` dependency-free and the call sites readable.

/// Splits `len` items into `parts` contiguous chunks as evenly as possible
/// (the first `len % parts` chunks get one extra item) and returns the
/// chunk boundaries as `parts + 1` offsets.
///
/// This is the "divide equally among worker threads" rule of §IV step 1.
pub fn even_chunk_bounds(len: usize, parts: usize) -> Vec<usize> {
    assert!(parts > 0, "cannot split into zero chunks");
    let base = len / parts;
    let extra = len % parts;
    let mut bounds = Vec::with_capacity(parts + 1);
    let mut offset = 0;
    bounds.push(0);
    for i in 0..parts {
        offset += base + usize::from(i < extra);
        bounds.push(offset);
    }
    bounds
}

/// Below this many items per worker, extra threads cost more than they
/// save; parallel entry points clamp their worker counts so each worker
/// gets at least this many items.
pub const MIN_ITEMS_PER_WORKER: usize = 4096;

/// Runs `f(worker_index, chunk)` on up to `workers` scoped threads, one per
/// even chunk of `data`. With `workers <= 1` (or a single chunk) runs
/// inline on the caller thread — parallel algorithms degrade gracefully to
/// their sequential form.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let workers = workers.max(1).min(data.len().max(1));
    if workers == 1 {
        f(0, data);
        return;
    }
    let bounds = even_chunk_bounds(data.len(), workers);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut consumed = 0;
        for w in 0..workers {
            let take = bounds[w + 1] - bounds[w];
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            consumed += take;
            let f = &f;
            scope.spawn(move || f(w, chunk));
        }
        debug_assert_eq!(consumed, bounds[workers]);
    });
}

/// Runs the provided closures on scoped threads and waits for all of them.
/// With one closure, runs it inline.
pub fn join_all<F>(tasks: Vec<F>)
where
    F: FnOnce() + Send,
{
    if tasks.len() == 1 {
        for t in tasks {
            t();
        }
        return;
    }
    std::thread::scope(|scope| {
        for t in tasks {
            scope.spawn(t);
        }
    });
}

/// Classic binary fork-join: runs `a` and `b` potentially in parallel and
/// waits for both.
pub fn join2<A, B>(parallel: bool, a: A, b: B)
where
    A: FnOnce() + Send,
    B: FnOnce() + Send,
{
    if parallel {
        std::thread::scope(|scope| {
            scope.spawn(a);
            b();
        });
    } else {
        a();
        b();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn even_chunks_cover_exactly() {
        for len in [0usize, 1, 2, 7, 10, 100, 101] {
            for parts in [1usize, 2, 3, 8] {
                let b = even_chunk_bounds(len, parts);
                assert_eq!(b.len(), parts + 1);
                assert_eq!(b[0], 0);
                assert_eq!(*b.last().unwrap(), len);
                for w in b.windows(2) {
                    assert!(w[0] <= w[1]);
                    // chunk sizes differ by at most one
                    assert!(w[1] - w[0] <= len / parts + 1);
                }
            }
        }
    }

    #[test]
    fn even_chunks_first_get_extra() {
        let b = even_chunk_bounds(10, 4); // 3,3,2,2
        assert_eq!(b, vec![0, 3, 6, 8, 10]);
    }

    #[test]
    fn for_each_chunk_mut_touches_every_element() {
        let mut v: Vec<u64> = (0..1000).collect();
        for_each_chunk_mut(&mut v, 4, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn for_each_chunk_mut_single_worker_inline() {
        let mut v = vec![1u32, 2, 3];
        for_each_chunk_mut(&mut v, 1, |w, chunk| {
            assert_eq!(w, 0);
            assert_eq!(chunk.len(), 3);
        });
    }

    #[test]
    fn for_each_chunk_mut_empty_slice() {
        let mut v: Vec<u32> = vec![];
        for_each_chunk_mut(&mut v, 4, |_, chunk| assert!(chunk.is_empty()));
    }

    #[test]
    fn for_each_chunk_more_workers_than_items() {
        let mut v = vec![5u8, 6];
        let seen = AtomicUsize::new(0);
        for_each_chunk_mut(&mut v, 16, |_, chunk| {
            seen.fetch_add(chunk.len(), Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn join_all_runs_everything() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..8)
            .map(|_| {
                let c = &counter;
                move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        join_all(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn join2_both_run() {
        let counter = AtomicUsize::new(0);
        join2(
            true,
            || {
                counter.fetch_add(1, Ordering::Relaxed);
            },
            || {
                counter.fetch_add(10, Ordering::Relaxed);
            },
        );
        assert_eq!(counter.load(Ordering::Relaxed), 11);
        join2(
            false,
            || {
                counter.fetch_add(100, Ordering::Relaxed);
            },
            || {
                counter.fetch_add(1000, Ordering::Relaxed);
            },
        );
        assert_eq!(counter.load(Ordering::Relaxed), 1111);
    }
}
