//! A from-scratch TimSort for `Copy` keys.
//!
//! Spark's `sortByKey` sorts partitions with TimSort (paper §II), so the
//! Spark-sim baseline needs a faithful implementation: natural-run
//! detection (strictly descending runs are reversed), binary-insertion
//! bulking of short runs up to the computed min-run, a run stack with the
//! (corrected) merge invariants, and galloping merges with the adaptive
//! `MIN_GALLOP` threshold. Stable.

use crate::insertion::binary_insertion_sort;
use crate::search::{lower_bound, upper_bound};

/// Runs shorter than this are extended by binary insertion.
pub const MIN_MERGE: usize = 32;

/// Initial threshold of consecutive one-run wins before switching a merge
/// into galloping mode.
pub const MIN_GALLOP: usize = 7;

/// Sorts `data` in place with TimSort. Stable.
// analyze: allow(hot-path-alloc): one merge-run stack per sort call,
// bounded by log(n) pending runs.
pub fn timsort<T: Ord + Copy>(data: &mut [T]) {
    let len = data.len();
    if len < 2 {
        return;
    }
    if len < MIN_MERGE {
        // One natural run + binary insertion: the classic small-array path.
        let run = count_run_make_ascending(data);
        binary_insertion_sort(data, run);
        return;
    }

    let min_run = min_run_length(len);
    let mut state = TimState {
        runs: Vec::with_capacity(40),
        min_gallop: MIN_GALLOP,
        tmp: Vec::new(),
    };

    let mut lo = 0;
    while lo < len {
        let mut run_len = count_run_make_ascending(&mut data[lo..]);
        if run_len < min_run {
            let force = min_run.min(len - lo);
            binary_insertion_sort(&mut data[lo..lo + force], run_len);
            run_len = force;
        }
        state.runs.push(Run {
            base: lo,
            len: run_len,
        });
        state.merge_collapse(data);
        lo += run_len;
    }
    state.merge_force_collapse(data);
    debug_assert_eq!(state.runs.len(), 1);
    debug_assert_eq!(state.runs[0].len, len);
}

/// Computes the minimum run length for an input of `n` elements: a number
/// in `[MIN_MERGE/2, MIN_MERGE]` such that `n / min_run` is close to, but
/// no larger than, a power of two (Tim Peters' original heuristic).
pub fn min_run_length(mut n: usize) -> usize {
    debug_assert!(n >= MIN_MERGE);
    let mut r = 0;
    while n >= MIN_MERGE {
        r |= n & 1;
        n >>= 1;
    }
    n + r
}

/// Finds the length of the natural run starting at `data[0]`, reversing it
/// in place if it is strictly descending. Returns the run length (>= 1).
pub fn count_run_make_ascending<T: Ord + Copy>(data: &mut [T]) -> usize {
    let len = data.len();
    if len <= 1 {
        return len;
    }
    let mut end = 1;
    if data[1] < data[0] {
        // Strictly descending: extend while strictly decreasing, then
        // reverse. Strictness preserves stability.
        while end + 1 < len && data[end + 1] < data[end] {
            end += 1;
        }
        data[..=end].reverse();
    } else {
        while end + 1 < len && data[end + 1] >= data[end] {
            end += 1;
        }
    }
    end + 1
}

/// Exponential-then-binary search: number of elements of `arr` that are
/// `< key` (i.e. `lower_bound`), probing from the left.
pub fn gallop_left<T: Ord>(key: &T, arr: &[T]) -> usize {
    if arr.is_empty() || arr[0] >= *key {
        return 0;
    }
    // Invariant: arr[prev] < key.
    let mut prev = 0;
    let mut ofs = 1;
    while ofs < arr.len() && arr[ofs] < *key {
        prev = ofs;
        ofs = ofs.saturating_mul(2).saturating_add(1);
    }
    let hi = ofs.min(arr.len());
    prev + 1 + lower_bound(&arr[prev + 1..hi], key)
}

/// Exponential-then-binary search: number of elements of `arr` that are
/// `<= key` (i.e. `upper_bound`), probing from the left.
pub fn gallop_right<T: Ord>(key: &T, arr: &[T]) -> usize {
    if arr.is_empty() || arr[0] > *key {
        return 0;
    }
    let mut prev = 0;
    let mut ofs = 1;
    while ofs < arr.len() && arr[ofs] <= *key {
        prev = ofs;
        ofs = ofs.saturating_mul(2).saturating_add(1);
    }
    let hi = ofs.min(arr.len());
    prev + 1 + upper_bound(&arr[prev + 1..hi], key)
}

#[derive(Clone, Copy, Debug)]
struct Run {
    base: usize,
    len: usize,
}

struct TimState<T> {
    runs: Vec<Run>,
    min_gallop: usize,
    tmp: Vec<T>,
}

impl<T: Ord + Copy> TimState<T> {
    /// Restores the run-stack invariants by merging, per the corrected
    /// merge_collapse (checks the 3-run condition one level deeper to
    /// avoid the documented invariant violation in the original).
    fn merge_collapse(&mut self, data: &mut [T]) {
        while self.runs.len() > 1 {
            let mut n = self.runs.len() - 2;
            let ln = |i: usize| self.runs[i].len;
            if (n >= 1 && ln(n - 1) <= ln(n) + ln(n + 1))
                || (n >= 2 && ln(n - 2) <= ln(n - 1) + ln(n))
            {
                if ln(n - 1) < ln(n + 1) {
                    n -= 1;
                }
                self.merge_at(data, n);
            } else if ln(n) <= ln(n + 1) {
                self.merge_at(data, n);
            } else {
                break;
            }
        }
    }

    /// Merges everything down to a single run (end of input).
    fn merge_force_collapse(&mut self, data: &mut [T]) {
        while self.runs.len() > 1 {
            let mut n = self.runs.len() - 2;
            if n >= 1 && self.runs[n - 1].len < self.runs[n + 1].len {
                n -= 1;
            }
            self.merge_at(data, n);
        }
    }

    /// Merges stack runs `i` and `i+1`.
    fn merge_at(&mut self, data: &mut [T], i: usize) {
        let Run {
            base: mut base1,
            len: mut len1,
        } = self.runs[i];
        let Run {
            base: base2,
            len: mut len2,
        } = self.runs[i + 1];
        debug_assert!(len1 > 0 && len2 > 0);
        debug_assert_eq!(base1 + len1, base2);

        self.runs[i].len = len1 + len2;
        if i + 3 == self.runs.len() {
            self.runs[i + 1] = self.runs[i + 2];
        }
        self.runs.pop();

        // Trim: run1's prefix already <= run2[0] stays put...
        let k = gallop_right(&data[base2], &data[base1..base1 + len1]);
        base1 += k;
        len1 -= k;
        if len1 == 0 {
            return;
        }
        // ...and run2's suffix already >= run1's last element stays put.
        len2 = gallop_left(&data[base1 + len1 - 1], &data[base2..base2 + len2]);
        if len2 == 0 {
            return;
        }

        let region = &mut data[base1..base2 + len2];
        if len1 <= len2 {
            self.merge_lo(region, len1, len2);
        } else {
            self.merge_hi(region, len1, len2);
        }
    }

    /// Merge with run1 (the left, smaller run) buffered in `tmp`, filling
    /// the region front-to-back. `region[..len1]` is run1,
    /// `region[len1..]` is run2.
    fn merge_lo(&mut self, region: &mut [T], len1: usize, len2: usize) {
        debug_assert_eq!(region.len(), len1 + len2);
        self.tmp.clear();
        self.tmp.extend_from_slice(&region[..len1]);
        let tmp = &self.tmp;
        let end2 = len1 + len2;
        let mut i = 0; // cursor into tmp (run1)
        let mut j = len1; // cursor into region (run2)
        let mut d = 0; // destination cursor
        let mut min_gallop = self.min_gallop;

        'outer: loop {
            let mut count1 = 0; // consecutive run1 wins
            let mut count2 = 0; // consecutive run2 wins

            // Straight one-at-a-time mode.
            loop {
                if region[j] < tmp[i] {
                    region[d] = region[j];
                    d += 1;
                    j += 1;
                    count2 += 1;
                    count1 = 0;
                    if j == end2 {
                        break 'outer;
                    }
                    if count2 >= min_gallop {
                        break;
                    }
                } else {
                    region[d] = tmp[i];
                    d += 1;
                    i += 1;
                    count1 += 1;
                    count2 = 0;
                    if i == len1 {
                        break 'outer;
                    }
                    if count1 >= min_gallop {
                        break;
                    }
                }
            }

            // Galloping mode: bulk-copy winning streaks.
            loop {
                let c1 = gallop_right(&region[j], &tmp[i..len1]);
                if c1 > 0 {
                    region[d..d + c1].copy_from_slice(&tmp[i..i + c1]);
                    d += c1;
                    i += c1;
                    if i == len1 {
                        break 'outer;
                    }
                }
                let c2 = gallop_left(&tmp[i], &region[j..end2]);
                if c2 > 0 {
                    region.copy_within(j..j + c2, d);
                    d += c2;
                    j += c2;
                    if j == end2 {
                        break 'outer;
                    }
                }
                if c1 < MIN_GALLOP && c2 < MIN_GALLOP {
                    break;
                }
                min_gallop = min_gallop.saturating_sub(1);
            }
            min_gallop += 2; // penalize leaving gallop mode
        }
        self.min_gallop = min_gallop.max(1);

        if i < len1 {
            // Run2 exhausted: copy the rest of tmp. d + remaining == j-relative
            let rest = len1 - i;
            debug_assert_eq!(d + rest, end2);
            region[d..d + rest].copy_from_slice(&tmp[i..len1]);
        }
        // If run1 exhausted first, run2's tail is already in place.
    }

    /// Merge with run2 (the right, smaller run) buffered in `tmp`, filling
    /// the region back-to-front.
    fn merge_hi(&mut self, region: &mut [T], len1: usize, len2: usize) {
        debug_assert_eq!(region.len(), len1 + len2);
        self.tmp.clear();
        self.tmp.extend_from_slice(&region[len1..]);
        let tmp = &self.tmp;
        let mut rem1 = len1; // elements of run1 left (region[..rem1])
        let mut rem2 = len2; // elements of tmp left (tmp[..rem2])
        let mut d = len1 + len2; // one past next destination (fill backwards)
        let mut min_gallop = self.min_gallop;

        'outer: loop {
            let mut count1 = 0;
            let mut count2 = 0;

            loop {
                // Take run1's tail when strictly greater; ties go to run2
                // (the later run) so it lands later in the output.
                if region[rem1 - 1] > tmp[rem2 - 1] {
                    d -= 1;
                    region[d] = region[rem1 - 1];
                    rem1 -= 1;
                    count1 += 1;
                    count2 = 0;
                    if rem1 == 0 {
                        break 'outer;
                    }
                    if count1 >= min_gallop {
                        break;
                    }
                } else {
                    d -= 1;
                    region[d] = tmp[rem2 - 1];
                    rem2 -= 1;
                    count2 += 1;
                    count1 = 0;
                    if rem2 == 0 {
                        break 'outer;
                    }
                    if count2 >= min_gallop {
                        break;
                    }
                }
            }

            loop {
                // Elements of run1 strictly greater than tmp's tail move
                // as a block.
                let c1 = rem1 - gallop_right(&tmp[rem2 - 1], &region[..rem1]);
                if c1 > 0 {
                    region.copy_within(rem1 - c1..rem1, d - c1);
                    d -= c1;
                    rem1 -= c1;
                    if rem1 == 0 {
                        break 'outer;
                    }
                }
                // Elements of run2 >= run1's tail move as a block.
                let c2 = rem2 - gallop_left(&region[rem1 - 1], &tmp[..rem2]);
                if c2 > 0 {
                    region[d - c2..d].copy_from_slice(&tmp[rem2 - c2..rem2]);
                    d -= c2;
                    rem2 -= c2;
                    if rem2 == 0 {
                        break 'outer;
                    }
                }
                if c1 < MIN_GALLOP && c2 < MIN_GALLOP {
                    break;
                }
                min_gallop = min_gallop.saturating_sub(1);
            }
            min_gallop += 2;
        }
        self.min_gallop = min_gallop.max(1);

        if rem2 > 0 {
            // Run1 exhausted: the remaining tmp prefix fills the front.
            debug_assert_eq!(d, rem2);
            region[..rem2].copy_from_slice(&tmp[..rem2]);
        }
        // If run2 exhausted first, run1's prefix is already in place.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_vec(seed: u64, n: usize, modulus: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % modulus
            })
            .collect()
    }

    fn check(mut v: Vec<u64>) {
        let mut expect = v.clone();
        expect.sort();
        timsort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_random_various_sizes() {
        for n in [0, 1, 2, 15, 31, 32, 33, 63, 64, 100, 1000, 10_000, 65_537] {
            check(xorshift_vec(0x1234, n, u64::MAX));
        }
    }

    #[test]
    fn sorts_heavy_duplicates() {
        for modulus in [1u64, 2, 3, 10] {
            check(xorshift_vec(0x777, 20_000, modulus));
        }
    }

    #[test]
    fn sorts_presorted_and_reverse() {
        check((0..100_000).collect());
        check((0..100_000).rev().collect());
    }

    #[test]
    fn sorts_sawtooth_and_organ_pipe() {
        let saw: Vec<u64> = (0..50_000).map(|i| (i % 123) as u64).collect();
        check(saw);
        let organ: Vec<u64> = (0..25_000).chain((0..25_000).rev()).collect();
        check(organ);
    }

    #[test]
    fn sorts_runs_of_runs() {
        // Concatenated ascending runs — TimSort's best case.
        let mut v = Vec::new();
        for chunk in 0..100 {
            v.extend((0..500u64).map(|i| i + chunk));
        }
        check(v);
    }

    #[test]
    fn min_run_length_bounds() {
        for n in [32usize, 33, 63, 64, 65, 127, 128, 1000, 1 << 20] {
            let mr = min_run_length(n);
            assert!(
                (MIN_MERGE / 2..=MIN_MERGE).contains(&mr),
                "min_run({n}) = {mr}"
            );
        }
        assert_eq!(min_run_length(MIN_MERGE), MIN_MERGE / 2);
    }

    #[test]
    fn count_run_detects_and_reverses() {
        let mut asc = vec![1, 2, 2, 3, 1];
        assert_eq!(count_run_make_ascending(&mut asc), 4);
        let mut desc = vec![5, 4, 3, 9];
        assert_eq!(count_run_make_ascending(&mut desc), 3);
        assert_eq!(desc, vec![3, 4, 5, 9]);
        let mut single = vec![7];
        assert_eq!(count_run_make_ascending(&mut single), 1);
    }

    #[test]
    fn gallop_matches_bounds() {
        let v = vec![1u64, 2, 2, 2, 5, 8, 8, 13];
        for key in 0..15 {
            assert_eq!(gallop_left(&key, &v), lower_bound(&v, &key), "key={key}");
            assert_eq!(gallop_right(&key, &v), upper_bound(&v, &key), "key={key}");
        }
    }

    #[test]
    fn gallop_long_arrays() {
        let v: Vec<u64> = (0..10_000).map(|i| i * 2).collect();
        for key in [0u64, 1, 2, 9999, 10_000, 19_998, 19_999, 30_000] {
            assert_eq!(gallop_left(&key, &v), lower_bound(&v, &key));
            assert_eq!(gallop_right(&key, &v), upper_bound(&v, &key));
        }
    }

    #[test]
    fn stability_with_tagged_keys() {
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        struct Tagged(u32, u32); // (key, original position)
        impl PartialOrd for Tagged {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Tagged {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.cmp(&other.0) // key only: ties expose stability
            }
        }
        let raw = xorshift_vec(0xabcd, 50_000, 16);
        let mut v: Vec<Tagged> = raw
            .iter()
            .enumerate()
            .map(|(pos, &k)| Tagged(k as u32, pos as u32))
            .collect();
        timsort(&mut v);
        // Sorted by key, and within equal keys original order preserved.
        for w in v.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated: {:?} {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn adversarial_merge_pattern() {
        // Alternating blocks force deep run-stack activity and galloping.
        let mut v = Vec::with_capacity(60_000);
        for b in 0..60 {
            if b % 2 == 0 {
                v.extend((0..1000u64).map(|i| i * 3));
            } else {
                v.extend((0..1000u64).rev().map(|i| i * 3 + 1));
            }
        }
        check(v);
    }
}
