//! Binary-search range utilities shared by the merges, the partitioning
//! step (§IV step 4), and the duplicate-splitter investigator.

/// Index of the first element `>= key` in sorted `data` (0..=len).
pub fn lower_bound<T: Ord>(data: &[T], key: &T) -> usize {
    let mut lo = 0;
    let mut hi = data.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if data[mid] < *key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Index of the first element `> key` in sorted `data` (0..=len).
pub fn upper_bound<T: Ord>(data: &[T], key: &T) -> usize {
    let mut lo = 0;
    let mut hi = data.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if data[mid] <= *key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Half-open range of positions holding `key` in sorted `data`
/// (`lower_bound..upper_bound`); empty if `key` is absent.
pub fn equal_range<T: Ord>(data: &[T], key: &T) -> std::ops::Range<usize> {
    lower_bound(data, key)..upper_bound(data, key)
}

/// Naive splitter partitioning (no duplicate handling): for `p-1` sorted
/// splitters returns `p+1` offsets into sorted `data` where destination
/// `j`'s slice is `data[offsets[j]..offsets[j+1]]`.
///
/// This is the Fig. 3a/3b behaviour — correct for distinct splitters but
/// load-imbalanced when splitters repeat — kept as the ablation baseline
/// for the investigator (see `pgxd-core::investigator`).
pub fn naive_splitter_offsets<T: Ord>(data: &[T], splitters: &[T]) -> Vec<usize> {
    debug_assert!(data.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(splitters.windows(2).all(|w| w[0] <= w[1]));
    let mut offsets = Vec::with_capacity(splitters.len() + 2);
    offsets.push(0);
    for s in splitters {
        // Send everything strictly below the splitter plus the splitter's
        // own duplicates to the lower destination via upper_bound; repeated
        // splitters then all map to the same offset (the imbalance of
        // Fig. 3b).
        offsets.push(upper_bound(data, s));
    }
    offsets.push(data.len());
    // Offsets must be monotonic for splitters that arrive sorted.
    debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_on_distinct() {
        let v = [10, 20, 30, 40];
        assert_eq!(lower_bound(&v, &25), 2);
        assert_eq!(upper_bound(&v, &25), 2);
        assert_eq!(lower_bound(&v, &20), 1);
        assert_eq!(upper_bound(&v, &20), 2);
        assert_eq!(lower_bound(&v, &5), 0);
        assert_eq!(upper_bound(&v, &45), 4);
    }

    #[test]
    fn bounds_on_duplicates() {
        let v = [1, 2, 2, 2, 3];
        assert_eq!(lower_bound(&v, &2), 1);
        assert_eq!(upper_bound(&v, &2), 4);
        assert_eq!(equal_range(&v, &2), 1..4);
        assert_eq!(equal_range(&v, &4), 5..5);
    }

    #[test]
    fn bounds_empty() {
        let v: [u8; 0] = [];
        assert_eq!(lower_bound(&v, &1), 0);
        assert_eq!(upper_bound(&v, &1), 0);
    }

    #[test]
    fn naive_offsets_tile_data() {
        let data = [1u32, 3, 3, 5, 7, 9, 9, 9, 12];
        let splitters = [3u32, 9];
        let off = naive_splitter_offsets(&data, &splitters);
        assert_eq!(off.first(), Some(&0));
        assert_eq!(off.last(), Some(&data.len()));
        assert!(off.windows(2).all(|w| w[0] <= w[1]));
        // dest 0: <= 3 -> [1,3,3]; dest 1: (3, 9] -> [5,7,9,9,9]; dest 2: rest
        assert_eq!(off, vec![0, 3, 8, 9]);
    }

    #[test]
    fn naive_offsets_duplicate_splitters_collapse() {
        // The pathological case of Fig. 3b: all splitters equal `a` means
        // one destination gets everything <= a and the middle destinations
        // get nothing.
        let data = [2u32, 2, 2, 2, 2, 2, 8];
        let splitters = [2u32, 2, 2];
        let off = naive_splitter_offsets(&data, &splitters);
        assert_eq!(off, vec![0, 6, 6, 6, 7]);
    }

    #[test]
    fn lower_upper_agree_with_std() {
        let mut x: u64 = 0xdeadbeefcafe1234;
        let mut v: Vec<u64> = (0..500)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 40
            })
            .collect();
        v.sort_unstable();
        for key in 0..41 {
            assert_eq!(lower_bound(&v, &key), v.partition_point(|&e| e < key));
            assert_eq!(upper_bound(&v, &key), v.partition_point(|&e| e <= key));
        }
    }
}
