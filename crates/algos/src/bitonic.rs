//! Batcher's bitonic sort — the classical merge-network baseline of §II.
//!
//! The local kernel sorts power-of-two lengths directly and arbitrary
//! lengths by physically padding with a maximum sentinel. The distributed
//! bitonic baseline in `pgxd-baselines` composes [`compare_split`] with
//! pairwise machine exchanges, reproducing the "exchanges the entire data
//! assigned to each processor" communication pattern the paper criticizes.

/// The raw iterative bitonic network for power-of-two lengths (or < 2).
pub fn bitonic_sort_pow2<T: Ord>(data: &mut [T]) {
    let n = data.len();
    if n < 2 {
        return;
    }
    assert!(n.is_power_of_two(), "length must be a power of two");
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..n {
                let partner = i ^ j;
                if partner > i {
                    let ascending = i & k == 0;
                    if (data[i] > data[partner]) == ascending {
                        data.swap(i, partner);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
}

/// Sorts arbitrary-length data by padding with `pad` (which must compare
/// `>=` every element, e.g. `u64::MAX`) up to the next power of two,
/// running the network, and copying the prefix back.
pub fn bitonic_sort_padded<T: Ord + Copy>(data: &mut [T], pad: T) {
    let n = data.len();
    if n < 2 {
        return;
    }
    debug_assert!(data.iter().all(|x| *x <= pad), "pad must be a maximum");
    let padded_len = n.next_power_of_two();
    if padded_len == n {
        bitonic_sort_pow2(data);
        return;
    }
    let mut buf = Vec::with_capacity(padded_len);
    buf.extend_from_slice(data);
    buf.resize(padded_len, pad);
    bitonic_sort_pow2(&mut buf);
    data.copy_from_slice(&buf[..n]);
}

/// The compare-split primitive of *distributed* bitonic sort: two machines
/// holding sorted blocks exchange copies, and the "low" side keeps the
/// smallest `a.len()` elements while the "high" side keeps the largest
/// `b.len()`. Returns `(low_keep, high_keep)`.
pub fn compare_split<T: Ord + Copy>(a: &[T], b: &[T]) -> (Vec<T>, Vec<T>) {
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]));
    let mut all = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let take_a = i < a.len() && (j >= b.len() || a[i] <= b[j]);
        if take_a {
            all.push(a[i]);
            i += 1;
        } else {
            all.push(b[j]);
            j += 1;
        }
    }
    let high = all.split_off(a.len());
    (all, high)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_vec(seed: u64, n: usize, modulus: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % modulus
            })
            .collect()
    }

    #[test]
    fn pow2_network_sorts() {
        for n in [2usize, 4, 64, 1024, 4096] {
            let mut v = xorshift_vec(7, n, 1000);
            let mut expect = v.clone();
            expect.sort_unstable();
            bitonic_sort_pow2(&mut v);
            assert_eq!(v, expect, "n={n}");
        }
    }

    #[test]
    fn pow2_tiny() {
        let mut v: Vec<u64> = vec![];
        bitonic_sort_pow2(&mut v);
        let mut v = vec![3u64];
        bitonic_sort_pow2(&mut v);
        assert_eq!(v, vec![3]);
    }

    #[test]
    fn padded_sorts_arbitrary_lengths() {
        for n in [1usize, 3, 5, 100, 1000, 1023, 1025] {
            let mut v = xorshift_vec(n as u64, n, 500);
            let mut expect = v.clone();
            expect.sort_unstable();
            bitonic_sort_padded(&mut v, u64::MAX);
            assert_eq!(v, expect, "n={n}");
        }
    }

    #[test]
    fn padded_duplicates() {
        let mut v = xorshift_vec(77, 3000, 4);
        let mut expect = v.clone();
        expect.sort_unstable();
        bitonic_sort_padded(&mut v, u64::MAX);
        assert_eq!(v, expect);
    }

    #[test]
    fn compare_split_partitions() {
        let a = vec![1u64, 5, 9, 12];
        let b = vec![2u64, 3, 10, 11, 20];
        let (lo, hi) = compare_split(&a, &b);
        assert_eq!(lo.len(), a.len());
        assert_eq!(hi.len(), b.len());
        assert_eq!(lo, vec![1, 2, 3, 5]);
        assert_eq!(hi, vec![9, 10, 11, 12, 20]);
        assert!(lo.last().unwrap() <= hi.first().unwrap());
    }

    #[test]
    fn compare_split_empty_sides() {
        let (lo, hi) = compare_split::<u64>(&[], &[1, 2]);
        assert!(lo.is_empty());
        assert_eq!(hi, vec![1, 2]);
        let (lo, hi) = compare_split::<u64>(&[1, 2], &[]);
        assert_eq!(lo, vec![1, 2]);
        assert!(hi.is_empty());
    }

    #[test]
    fn compare_split_interleaved_duplicates() {
        let a = vec![2u64, 2, 2];
        let b = vec![2u64, 2];
        let (lo, hi) = compare_split(&a, &b);
        assert_eq!(lo, vec![2, 2, 2]);
        assert_eq!(hi, vec![2, 2]);
    }
}
