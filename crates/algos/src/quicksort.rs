//! Sequential quicksort — the per-worker local sort of §IV step 1.
//!
//! Introsort-flavoured for robustness: median-of-three pivot selection,
//! insertion sort below [`INSERTION_THRESHOLD`], and a heapsort fallback
//! once recursion depth exceeds `2·log2(n)` so adversarial inputs cannot
//! degrade to `O(n²)`.

use crate::insertion::insertion_sort;

/// Below this length quicksort hands over to insertion sort.
pub const INSERTION_THRESHOLD: usize = 24;

/// Sorts `data` in place with introsort (quicksort + insertion base +
/// heapsort depth fallback).
pub fn quicksort<T: Ord + Copy>(data: &mut [T]) {
    let depth_limit = 2 * (usize::BITS - data.len().leading_zeros()) as usize;
    introsort(data, depth_limit);
}

fn introsort<T: Ord + Copy>(data: &mut [T], depth_limit: usize) {
    let mut slice = data;
    let mut depth = depth_limit;
    // Tail-recurse into the larger half iteratively to bound stack depth.
    loop {
        if slice.len() <= INSERTION_THRESHOLD {
            insertion_sort(slice);
            return;
        }
        if depth == 0 {
            heapsort(slice);
            return;
        }
        depth -= 1;
        let pivot_index = partition(slice);
        let (lo, rest) = slice.split_at_mut(pivot_index);
        let hi = &mut rest[1..];
        if lo.len() < hi.len() {
            introsort(lo, depth);
            slice = hi;
        } else {
            introsort(hi, depth);
            slice = lo;
        }
    }
}

/// Hoare-style partition around a median-of-three pivot; returns the final
/// pivot position. The pivot is swapped to the end during partitioning, so
/// `data[returned]` equals the pivot and both sides exclude it.
fn partition<T: Ord + Copy>(data: &mut [T]) -> usize {
    let len = data.len();
    let (a, b, c) = (0, len / 2, len - 1);
    // Order the three samples so the median lands at `b`.
    if data[a] > data[b] {
        data.swap(a, b);
    }
    if data[b] > data[c] {
        data.swap(b, c);
    }
    if data[a] > data[b] {
        data.swap(a, b);
    }
    data.swap(b, len - 2); // stash pivot just before the (>= pivot) sentinel
    let pivot = data[len - 2];
    let mut i = a;
    let mut j = len - 2;
    loop {
        i += 1;
        while data[i] < pivot {
            i += 1;
        }
        j -= 1;
        while data[j] > pivot {
            j -= 1;
        }
        if i >= j {
            break;
        }
        data.swap(i, j);
    }
    data.swap(i, len - 2);
    i
}

/// Bottom-up heapsort used as the introsort depth fallback.
pub fn heapsort<T: Ord + Copy>(data: &mut [T]) {
    let len = data.len();
    for start in (0..len / 2).rev() {
        sift_down(data, start, len);
    }
    for end in (1..len).rev() {
        data.swap(0, end);
        sift_down(data, 0, end);
    }
}

fn sift_down<T: Ord + Copy>(data: &mut [T], mut root: usize, end: usize) {
    loop {
        let mut child = 2 * root + 1;
        if child >= end {
            return;
        }
        if child + 1 < end && data[child] < data[child + 1] {
            child += 1;
        }
        if data[root] >= data[child] {
            return;
        }
        data.swap(root, child);
        root = child;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sorts(mut v: Vec<u64>) {
        let mut expect = v.clone();
        expect.sort_unstable();
        quicksort(&mut v);
        assert_eq!(v, expect);
    }

    fn xorshift_vec(n: usize, modulus: u64) -> Vec<u64> {
        let mut x: u64 = 0x853c49e6748fea9b;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % modulus
            })
            .collect()
    }

    #[test]
    fn sorts_random() {
        check_sorts(xorshift_vec(10_000, u64::MAX));
    }

    #[test]
    fn sorts_many_duplicates() {
        check_sorts(xorshift_vec(10_000, 4));
    }

    #[test]
    fn sorts_sorted_and_reverse() {
        check_sorts((0..5000).collect());
        check_sorts((0..5000).rev().collect());
    }

    #[test]
    fn sorts_all_equal() {
        check_sorts(vec![9; 4096]);
    }

    #[test]
    fn sorts_organ_pipe() {
        let mut v: Vec<u64> = (0..2500).chain((0..2500).rev()).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        quicksort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_tiny() {
        check_sorts(vec![]);
        check_sorts(vec![1]);
        check_sorts(vec![2, 1]);
        check_sorts(vec![2, 1, 3]);
    }

    #[test]
    fn heapsort_standalone() {
        let mut v = xorshift_vec(3000, 1000);
        let mut expect = v.clone();
        expect.sort_unstable();
        heapsort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn partition_separates() {
        let mut v = xorshift_vec(500, 100);
        let p = partition(&mut v);
        let pivot = v[p];
        assert!(v[..p].iter().all(|&x| x <= pivot));
        assert!(v[p + 1..].iter().all(|&x| x >= pivot));
    }
}
