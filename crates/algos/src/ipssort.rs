//! In-place super scalar sample sort (ips4o-style; Axtmann, Witt,
//! Ferizovic, Sanders — "In-place Parallel Super Scalar Samplesort").
//!
//! Same branchless splitter-tree classification as [`ssssort`], but instead
//! of scattering into a fresh `n`-element buffer per recursion level, the
//! classified elements pass through `k` small bucket *blocks*: full blocks
//! are flushed back into the already-consumed prefix of the input, a
//! block-granular cycle permutation groups each bucket's blocks together,
//! and a final right-shift pass drops the partial blocks into place. Peak
//! extra memory is `k · BLOCK` elements plus one label byte per block —
//! constant in `n` — and the whole scratch kit is reused across recursion
//! levels, replacing the out-of-place `ssssort` allocation churn.
//!
//! Everything here is safe Rust: the flush invariant (a bucket buffer only
//! fills after at least `BLOCK` input elements were consumed past the write
//! head) is proved in a comment at the flush site, and the block swaps go
//! through `split_at_mut`/`swap_with_slice`.
//!
//! [`ssssort`]: crate::ssssort

use std::time::Instant;

use crate::exec::{self, even_chunk_bounds};
use crate::insertion::insertion_sort;
use crate::merge::parallel_kway_merge_into;
use crate::quicksort::quicksort;
use crate::Key;

/// Buckets per classification level (power of two).
pub const NUM_BUCKETS: usize = 64;
const LOG_BUCKETS: u32 = NUM_BUCKETS.trailing_zeros();

/// Elements per bucket block: the flush/permutation granularity. Large
/// enough that flushes are memcpy-bound, small enough that the whole
/// buffer kit (`NUM_BUCKETS * BLOCK` elements) stays cache-resident.
pub const BLOCK: usize = 256;

/// Oversampling factor: `NUM_BUCKETS * OVERSAMPLING` sample candidates.
pub const OVERSAMPLING: usize = 8;

/// At or below this size a partitioning level is not worth its
/// classification pass; hand the slice to quicksort.
pub const BASE_CASE: usize = 2048;

/// At or below this size, plain insertion sort wins outright.
const INSERTION_CASE: usize = 48;

/// Phase timings accumulated over one sort call (all recursion levels).
/// `classify_ns` covers the splitter-tree descent plus block flushes,
/// `permute_ns` the block cycle permutation plus the final placement
/// shifts, `base_ns` the quicksort/insertion base cases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IpsStats {
    /// Nanoseconds spent classifying elements into bucket blocks.
    pub classify_ns: u64,
    /// Nanoseconds spent permuting blocks and placing partial buffers.
    pub permute_ns: u64,
    /// Nanoseconds spent in base-case sorts.
    pub base_ns: u64,
    /// Number of partitioning levels executed.
    pub levels: u64,
}

impl IpsStats {
    /// Merges another accumulation into this one (for per-chunk parallel
    /// runs that aggregate worker stats).
    pub fn merge(&mut self, other: &IpsStats) {
        self.classify_ns += other.classify_ns;
        self.permute_ns += other.permute_ns;
        self.base_ns += other.base_ns;
        self.levels += other.levels;
    }
}

/// The reusable scratch kit: bucket buffers, splitter tree, sample, and
/// block labels. One instance serves every recursion level of one sort
/// (depth-first recursion never needs two levels' buffers at once).
struct Scratch<T> {
    /// `NUM_BUCKETS` buffers of `BLOCK` elements each, flattened.
    bufs: Vec<T>,
    /// Eytzinger splitter tree (`tree[1..NUM_BUCKETS]`; slot 0 unused).
    tree: Vec<T>,
    /// Sample candidates.
    sample: Vec<T>,
    /// Bucket label of each flushed block, in flush order.
    labels: Vec<u8>,
}

impl<T: Copy> Scratch<T> {
    // analyze: allow(hot-path-alloc): per-invocation scratch (buckets, swap
    // blocks) sized by the classifier constants, reused across all
    // recursion levels of one sort call.
    fn new() -> Self {
        Scratch {
            bufs: Vec::new(),
            tree: Vec::new(),
            sample: Vec::new(),
            labels: Vec::new(),
        }
    }
}

/// Sorts `data` in place with the ips4o-style samplesort.
pub fn in_place_sample_sort<T: Key>(data: &mut [T]) {
    let mut stats = IpsStats::default();
    in_place_sample_sort_stats_into(data, &mut stats);
}

/// Sorts `data` in place, returning per-phase timings.
pub fn in_place_sample_sort_stats<T: Key>(data: &mut [T]) -> IpsStats {
    let mut stats = IpsStats::default();
    in_place_sample_sort_stats_into(data, &mut stats);
    stats
}

/// Sorts `data` in place, accumulating phase timings into `stats`.
pub fn in_place_sample_sort_stats_into<T: Key>(data: &mut [T], stats: &mut IpsStats) {
    if data.len() < 2 {
        return;
    }
    let depth_limit = 1 + data.len().max(2).ilog2() / LOG_BUCKETS;
    let mut scratch = Scratch::new();
    sort_rec(data, depth_limit as usize, &mut scratch, stats);
}

/// Parallel form: each worker ip-samplesorts an even chunk in place, and
/// the sorted chunks are combined with the splitter-planned parallel k-way
/// merge (one pass over the data, cache-conscious segments per worker).
/// Returns aggregated phase timings.
///
/// The distributed runtime drives the same two stages itself (so the merge
/// output can come from its chunk pool); this entry point is the
/// self-contained version for standalone use and benches.
// analyze: allow(panic-surface): chunk bounds come from even_chunk_bounds
// over data.len(), and the per-worker stats mutexes are function-local —
// poison means a kernel already panicked.
// analyze: allow(hot-path-alloc): worker handoff buffers at batch scale —
// per-worker stat cells and one scratch copy per call; algos has no
// pool access by layering (no pgxd dependency).
pub fn in_place_sample_sort_par<T: Key>(data: &mut [T], workers: usize) -> IpsStats {
    let n = data.len();
    let workers = workers.max(1).min((n / exec::MIN_ITEMS_PER_WORKER).max(1));
    if workers <= 1 {
        return in_place_sample_sort_stats(data);
    }
    let bounds = even_chunk_bounds(n, workers);
    let stats_per: Vec<std::sync::Mutex<IpsStats>> =
        (0..workers).map(|_| std::sync::Mutex::new(IpsStats::default())).collect();
    {
        let stats_per = &stats_per;
        exec::for_each_chunk_mut(data, workers, |w, chunk| {
            let s = in_place_sample_sort_stats(chunk);
            *stats_per[w].lock().expect("stats mutex poisoned") = s;
        });
    }
    let mut total = IpsStats::default();
    for s in &stats_per {
        total.merge(&s.lock().expect("stats mutex poisoned"));
    }
    // One-pass k-way merge of the chunks through a scratch copy.
    let scratch: Vec<T> = data.to_vec();
    let runs: Vec<&[T]> = bounds.windows(2).map(|w| &scratch[w[0]..w[1]]).collect();
    parallel_kway_merge_into(&runs, data, workers);
    total
}

// analyze: allow(panic-surface): bucket counts, offsets, and block indices
// are all derived from one counting pass over this same slice — the
// classifier/permute invariants keep every index in range.
fn sort_rec<T: Key>(data: &mut [T], depth: usize, scratch: &mut Scratch<T>, stats: &mut IpsStats) {
    let n = data.len();
    if n <= INSERTION_CASE {
        let t0 = Instant::now();
        insertion_sort(data);
        stats.base_ns += t0.elapsed().as_nanos() as u64;
        return;
    }
    if n <= BASE_CASE || depth == 0 {
        let t0 = Instant::now();
        quicksort(data);
        stats.base_ns += t0.elapsed().as_nanos() as u64;
        return;
    }
    stats.levels += 1;

    // --- sample & splitters -------------------------------------------------
    let sample_size = (NUM_BUCKETS * OVERSAMPLING).min(n);
    scratch.sample.clear();
    let mut x: u64 = 0x9e3779b97f4a7c15 ^ (n as u64);
    for _ in 0..sample_size {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        scratch.sample.push(data[(x % n as u64) as usize]);
    }
    quicksort(&mut scratch.sample);
    let sample_len = scratch.sample.len();
    let first_splitter = scratch.sample[sample_len / NUM_BUCKETS];
    let last_splitter = scratch.sample[(NUM_BUCKETS - 1) * sample_len / NUM_BUCKETS];
    // Degenerate sample (all candidates equal): classification would put
    // everything in one bucket; fall back.
    if first_splitter == last_splitter {
        let t0 = Instant::now();
        quicksort(data);
        stats.base_ns += t0.elapsed().as_nanos() as u64;
        return;
    }

    // --- implicit Eytzinger splitter tree -----------------------------------
    scratch.tree.clear();
    scratch.tree.resize(NUM_BUCKETS, first_splitter);
    {
        let mut idx = 0usize;
        fill_tree_from_sample(&scratch.sample, &mut scratch.tree, 1, &mut idx);
        debug_assert_eq!(idx, NUM_BUCKETS - 1);
    }

    // --- classification into bucket blocks ----------------------------------
    let t0 = Instant::now();
    scratch.bufs.clear();
    scratch.bufs.resize(NUM_BUCKETS * BLOCK, data[0]);
    scratch.labels.clear();
    let mut fills = [0usize; NUM_BUCKETS];
    let tree = &scratch.tree[..NUM_BUCKETS];
    let mut write = 0usize; // elements flushed back into data so far
    for i in 0..n {
        let key = data[i];
        let mut node = 1usize;
        for _ in 0..LOG_BUCKETS {
            // Branch-free descent: left for <=, right for >.
            node = 2 * node + usize::from(key > tree[node]);
        }
        let b = node - NUM_BUCKETS;
        scratch.bufs[b * BLOCK + fills[b]] = key;
        fills[b] += 1;
        if fills[b] == BLOCK {
            // Flush invariant: `i + 1` elements have been consumed, and
            // `write` of them were flushed while the rest sit in buffers,
            // so the buffered total is `i + 1 - write >= BLOCK` (this
            // bucket alone holds BLOCK). Hence `write + BLOCK <= i + 1`:
            // the flush only overwrites already-consumed slots.
            data[write..write + BLOCK]
                .copy_from_slice(&scratch.bufs[b * BLOCK..(b + 1) * BLOCK]);
            scratch.labels.push(b as u8);
            write += BLOCK;
            fills[b] = 0;
        }
    }
    stats.classify_ns += t0.elapsed().as_nanos() as u64;

    // --- block permutation + final placement --------------------------------
    let t1 = Instant::now();
    let mut blocks_of = [0usize; NUM_BUCKETS];
    for &l in &scratch.labels {
        blocks_of[l as usize] += 1;
    }
    // counts[b]: total elements of bucket b; first[b]/end[b]: its block
    // range in the packed (post-permutation) block area.
    let mut counts = [0usize; NUM_BUCKETS];
    let mut first = [0usize; NUM_BUCKETS];
    let mut off = [0usize; NUM_BUCKETS + 1];
    {
        let mut blk = 0usize;
        let mut elems = 0usize;
        for b in 0..NUM_BUCKETS {
            counts[b] = blocks_of[b] * BLOCK + fills[b];
            first[b] = blk;
            off[b] = elems;
            blk += blocks_of[b];
            elems += counts[b];
        }
        off[NUM_BUCKETS] = elems;
        debug_assert_eq!(elems, n);
    }

    // Cycle permutation at block granularity: place every flushed block
    // into its bucket's packed region. Each swap moves one block home, so
    // the loop does at most `labels.len()` swaps.
    {
        let labels = &mut scratch.labels;
        let mut next = first;
        for b in 0..NUM_BUCKETS {
            let end = first[b] + blocks_of[b];
            while next[b] < end {
                let l = labels[next[b]] as usize;
                if l == b {
                    next[b] += 1;
                } else {
                    swap_blocks(data, next[b], next[l]);
                    labels.swap(next[b], next[l]);
                    next[l] += 1;
                }
            }
        }
    }

    // Final placement, highest bucket first: shift each bucket's full-block
    // region right from its packed position to its final offset (the gap is
    // exactly the partial-block space of the buckets below it), then drop
    // the partial buffer into the tail. Descending order means every
    // destination region only overlaps sources of the same bucket
    // (memmove via copy_within) or already-vacated higher regions.
    for b in (0..NUM_BUCKETS).rev() {
        let src = first[b] * BLOCK;
        let len = blocks_of[b] * BLOCK;
        let dst = off[b];
        debug_assert!(dst >= src);
        if len > 0 && dst != src {
            data.copy_within(src..src + len, dst);
        }
        let tail = dst + len;
        data[tail..tail + fills[b]]
            .copy_from_slice(&scratch.bufs[b * BLOCK..b * BLOCK + fills[b]]);
    }
    stats.permute_ns += t1.elapsed().as_nanos() as u64;

    // --- recurse per bucket --------------------------------------------------
    for b in 0..NUM_BUCKETS {
        let (start, end) = (off[b], off[b + 1]);
        if end - start < 2 {
            continue;
        }
        if end - start > n / 2 {
            // Guaranteed progress: a bucket that barely shrank (heavy
            // duplication piling onto one splitter) is finished directly.
            let t2 = Instant::now();
            quicksort(&mut data[start..end]);
            stats.base_ns += t2.elapsed().as_nanos() as u64;
        } else {
            sort_rec(&mut data[start..end], depth - 1, scratch, stats);
        }
    }
}

/// Swaps the `BLOCK`-element blocks at block indices `i` and `j`.
// analyze: allow(panic-surface): block indices are produced by the permute
// walk and bounded by data.len() / BLOCK.
fn swap_blocks<T: Copy>(data: &mut [T], i: usize, j: usize) {
    debug_assert_ne!(i, j);
    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
    let (head, tail) = data.split_at_mut(hi * BLOCK);
    head[lo * BLOCK..(lo + 1) * BLOCK].swap_with_slice(&mut tail[..BLOCK]);
}

/// In-order fill of the Eytzinger layout from the *sample*: node `node`'s
/// subtree receives the next regular sample positions in sorted order
/// (splitter `i` is `sample[(i + 1) * len / NUM_BUCKETS]`).
// analyze: allow(panic-surface): the in-order walk visits exactly
// tree.len() < NUM_BUCKETS nodes, so the regular-sample index stays below
// sample.len().
fn fill_tree_from_sample<T: Copy>(sample: &[T], tree: &mut [T], node: usize, idx: &mut usize) {
    if node >= tree.len() {
        return;
    }
    fill_tree_from_sample(sample, tree, 2 * node, idx);
    *idx += 1;
    tree[node] = sample[*idx * sample.len() / NUM_BUCKETS];
    fill_tree_from_sample(sample, tree, 2 * node + 1, idx);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_vec(seed: u64, n: usize, modulus: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % modulus
            })
            .collect()
    }

    fn check(mut v: Vec<u64>) {
        let mut expect = v.clone();
        expect.sort_unstable();
        in_place_sample_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_random_various_sizes() {
        for n in [0usize, 1, 2, 47, 48, 49, 100, 2048, 2049, 10_000, 100_000, 262_144] {
            check(xorshift_vec(1, n, u64::MAX));
        }
    }

    #[test]
    fn sorts_heavy_duplicates() {
        for modulus in [1u64, 2, 5, 50, 1000] {
            check(xorshift_vec(7, 50_000, modulus));
        }
    }

    #[test]
    fn sorts_presorted_reverse_and_organ() {
        check((0..50_000).collect());
        check((0..50_000).rev().collect());
        check((0..25_000).chain((0..25_000).rev()).collect());
    }

    #[test]
    fn sorts_single_dominant_value() {
        let mut v = vec![7u64; 40_000];
        v.extend(xorshift_vec(3, 10_000, 1000));
        check(v);
    }

    #[test]
    fn sorts_block_boundary_sizes() {
        // Sizes straddling multiples of BLOCK and NUM_BUCKETS * BLOCK to
        // exercise empty-partial / all-full edge paths.
        for n in [
            BLOCK - 1,
            BLOCK,
            BLOCK + 1,
            NUM_BUCKETS * BLOCK - 1,
            NUM_BUCKETS * BLOCK,
            NUM_BUCKETS * BLOCK + 1,
        ] {
            check(xorshift_vec(11, n, u64::MAX));
            check(xorshift_vec(13, n, 97));
        }
    }

    #[test]
    fn stats_account_for_work() {
        let mut v = xorshift_vec(17, 200_000, u64::MAX);
        let stats = in_place_sample_sort_stats(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        assert!(stats.levels >= 1, "large input must partition: {stats:?}");
        assert!(stats.classify_ns > 0);
        assert!(stats.permute_ns > 0);
    }

    #[test]
    fn small_inputs_skip_partitioning() {
        let mut v = xorshift_vec(19, BASE_CASE, u64::MAX);
        let stats = in_place_sample_sort_stats(&mut v);
        assert_eq!(stats.levels, 0);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        for (n, modulus) in [(100_000usize, u64::MAX), (50_000, 13), (30_000, 1)] {
            let v = xorshift_vec(23, n, modulus);
            let mut expect = v.clone();
            expect.sort_unstable();
            let mut got = v;
            in_place_sample_sort_par(&mut got, 4);
            assert_eq!(got, expect, "n={n} modulus={modulus}");
        }
    }

    #[test]
    fn parallel_tiny_input_inline() {
        let mut v = xorshift_vec(29, 100, 50);
        let mut expect = v.clone();
        expect.sort_unstable();
        in_place_sample_sort_par(&mut v, 8);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_non_numeric_keys() {
        let words = ["kiwi", "apple", "fig", "apple", "banana", "cherry"];
        let mut keys: Vec<crate::FixedStr<8>> = (0..5000)
            .map(|i| crate::FixedStr::new(words[i % words.len()]))
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        in_place_sample_sort(&mut keys);
        assert_eq!(keys, expect);
    }
}
