//! The **balanced merge handler** (paper §IV-A, Fig. 2).
//!
//! Per-worker sorted runs are combined by a power-of-two pairwise merge
//! tree: at step `s`, the run owned by thread `i + 2^s` is merged into the
//! run owned by thread `i` (for `i` a multiple of `2^(s+1)`). Because the
//! initial runs have (almost) equal sizes, every merge at every level
//! combines two runs of (almost) equal size — the "balanced merging" that
//! the paper credits with avoiding cache misses. All merges of one step
//! run in parallel, and each individual merge can itself be split across
//! workers by median partitioning.

use crate::exec::{self, even_chunk_bounds};

/// Sequential two-run merge of sorted `a` and `b` into `out`.
///
/// `out.len()` must equal `a.len() + b.len()`. Stable: on ties, elements
/// of `a` come first.
pub fn merge_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut [T]) {
    assert_eq!(a.len() + b.len(), out.len(), "output size mismatch");
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        // Take from `a` while its head is <= b's head (stability).
        let take_a = i < a.len() && (j >= b.len() || a[i] <= b[j]);
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Parallel two-run merge: recursively splits (`a`, `b`) at the median of
/// the larger run so both halves have balanced work, running the halves on
/// scoped threads until the `workers` budget is exhausted or the problem
/// is below [`PARALLEL_MERGE_CUTOFF`].
pub fn parallel_merge_into<T: Ord + Copy + Send + Sync>(
    a: &[T],
    b: &[T],
    out: &mut [T],
    workers: usize,
) {
    assert_eq!(a.len() + b.len(), out.len(), "output size mismatch");
    if workers <= 1 || out.len() < PARALLEL_MERGE_CUTOFF {
        merge_into(a, b, out);
        return;
    }
    // Split the larger run in half; binary-search its midpoint key in the
    // smaller run. Everything left of the two split points merges into the
    // left half of `out`, the rest into the right half.
    let (a_mid, b_mid) = if a.len() >= b.len() {
        let am = a.len() / 2;
        (am, crate::search::lower_bound(b, &a[am]))
    } else {
        let bm = b.len() / 2;
        // Use upper_bound here so equal keys go left with `a` (stability).
        (crate::search::upper_bound(a, &b[bm]), bm)
    };
    let (out_lo, out_hi) = out.split_at_mut(a_mid + b_mid);
    let (a_lo, a_hi) = a.split_at(a_mid);
    let (b_lo, b_hi) = b.split_at(b_mid);
    let half = workers / 2;
    exec::join2(
        true,
        move || parallel_merge_into(a_lo, b_lo, out_lo, half),
        move || parallel_merge_into(a_hi, b_hi, out_hi, workers - half),
    );
}

/// Below this output size a merge is not worth splitting across threads.
pub const PARALLEL_MERGE_CUTOFF: usize = 1 << 14;

/// Merges `runs.len()` consecutive sorted runs stored back-to-back in
/// `data` (run `r` occupies `data[bounds[r]..bounds[r+1]]`) with the
/// Fig. 2 balanced pairwise tree. Returns the fully sorted data.
///
/// `workers` caps the threads used *per step*: the pair-merges of one step
/// run concurrently, and leftover worker budget parallelizes the
/// individual merges of the later (wider) steps.
// analyze: allow(hot-path-alloc): per-part staging buffers at batch
// scale — each part is merged once into its slot and escapes as the
// call's output; algos has no pool access by layering.
pub fn balanced_merge<T: Ord + Copy + Send + Sync>(
    mut data: Vec<T>,
    bounds: &[usize],
    workers: usize,
) -> Vec<T> {
    assert!(!bounds.is_empty(), "bounds must contain at least [0]");
    assert_eq!(*bounds.last().unwrap(), data.len(), "bounds must cover data");
    let mut cur_bounds: Vec<usize> = bounds.to_vec();
    if cur_bounds.len() <= 2 {
        return data; // zero or one run: already sorted
    }
    // Small data: thread spawns would dominate; run the same pairwise
    // tree sequentially.
    if workers <= 1 || data.len() < PARALLEL_MERGE_CUTOFF {
        return balanced_merge_sequential(data, &cur_bounds);
    }
    let mut scratch: Vec<T> = Vec::with_capacity(data.len());
    // SAFETY-free alternative: initialize scratch by cloning data; every
    // slot is overwritten by the first merge step anyway, and one extra
    // memcpy keeps the implementation entirely safe.
    scratch.extend_from_slice(&data);

    while cur_bounds.len() > 2 {
        let num_runs = cur_bounds.len() - 1;
        let num_pairs = num_runs / 2;
        let has_orphan = num_runs % 2 == 1;

        // Plan this step's merges: pair (2k, 2k+1) -> output run k.
        let mut next_bounds = Vec::with_capacity(num_pairs + 2);
        next_bounds.push(0);
        for k in 0..num_pairs {
            next_bounds.push(cur_bounds[2 * k + 2]);
        }
        if has_orphan {
            next_bounds.push(*cur_bounds.last().unwrap());
        }

        // Execute all pair merges of this step in parallel, spawning at
        // most `workers` threads: with many pairs, each thread handles a
        // contiguous group of pairs sequentially; with few pairs, the
        // surplus budget parallelizes inside each merge.
        {
            let data_ref = &data;
            let cur = &cur_bounds;
            // Split scratch into per-pair output regions (+ orphan tail).
            let mut regions: Vec<&mut [T]> = Vec::with_capacity(num_pairs + 1);
            let mut rest: &mut [T] = &mut scratch;
            let mut offset = 0;
            for k in 0..num_pairs {
                let end = cur[2 * k + 2];
                let (region, tail) = rest.split_at_mut(end - offset);
                regions.push(region);
                offset = end;
                rest = tail;
            }
            let orphan_region = has_orphan.then_some(rest);

            let merge_pair = |k: usize, region: &mut [T], merge_workers: usize| {
                let a = &data_ref[cur[2 * k]..cur[2 * k + 1]];
                let b = &data_ref[cur[2 * k + 1]..cur[2 * k + 2]];
                parallel_merge_into(a, b, region, merge_workers);
            };
            let merge_pair = &merge_pair; // shared by all spawned closures

            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers + 1);
                if num_pairs >= workers {
                    // Group pairs into ≤ workers contiguous batches.
                    let per_group = num_pairs.div_ceil(workers);
                    let mut iter = regions.into_iter().enumerate();
                    loop {
                        let group: Vec<(usize, &mut [T])> = iter.by_ref().take(per_group).collect();
                        if group.is_empty() {
                            break;
                        }
                        handles.push(scope.spawn(move || {
                            for (k, region) in group {
                                merge_pair(k, region, 1);
                            }
                        }));
                    }
                } else {
                    let per_merge_workers = (workers / num_pairs.max(1)).max(1);
                    for (k, region) in regions.into_iter().enumerate() {
                        handles.push(scope.spawn(move || {
                            merge_pair(k, region, per_merge_workers);
                        }));
                    }
                }
                if let Some(region) = orphan_region {
                    // Odd run out: copy through unchanged this step.
                    let start = cur[2 * num_pairs];
                    region.copy_from_slice(&data_ref[start..]);
                }
                for h in handles {
                    h.join().expect("merge worker panicked");
                }
            });
        }

        std::mem::swap(&mut data, &mut scratch);
        cur_bounds = next_bounds;
    }
    data
}

/// Oversampling factor for the multiway split planner: candidates per run
/// per output part. Higher values tighten part-size balance at the cost of
/// a slightly larger (still tiny) planning sort.
const SPLIT_OVERSAMPLE: usize = 8;

/// Plans a `parts`-way partition of a k-way merge: returns `parts + 1`
/// rows of per-run cut positions, where output part `i` is the merge of
/// `runs[j][rows[i][j]..rows[i + 1][j]]` over all `j`. The rows satisfy
///
/// * **monotonicity** — `rows[i][j] <= rows[i + 1][j]` for every run, with
///   `rows[0]` all zeros and `rows[parts]` the run lengths, and
/// * **cross-part order** — every element of part `i` is `<=` every
///   element of part `i + 1`,
///
/// so the parts can be merged independently into disjoint output segments
/// and the concatenation is sorted. Boundary values are picked from a
/// regular sample of each run (splitter-style, like the §IV distributed
/// partition but within one machine); exact target ranks are approached by
/// greedily distributing elements equal to the boundary value, so equal
/// keys may change run-relative order *across* part boundaries (within a
/// part the merge stays stable in run order).
// analyze: allow(hot-path-alloc): O(parts × k) split plan — the plan is
// the function's product, sized by run/part counts, not elements.
pub fn plan_multiway_splits<T: Ord + Copy>(runs: &[&[T]], parts: usize) -> Vec<Vec<usize>> {
    let parts = parts.max(1);
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut rows: Vec<Vec<usize>> = Vec::with_capacity(parts + 1);
    rows.push(vec![0; runs.len()]);
    if total == 0 {
        rows.resize(parts + 1, vec![0; runs.len()]);
        return rows;
    }

    // Regular sample of boundary candidates from every run.
    let mut cands: Vec<T> = Vec::new();
    for run in runs {
        if run.is_empty() {
            continue;
        }
        let s = (parts * SPLIT_OVERSAMPLE).min(run.len());
        for t in 0..s {
            cands.push(run[(t * run.len()) / s + run.len() / (2 * s)]);
        }
    }
    cands.sort_unstable();

    for i in 1..parts {
        let target = (i * total) / parts;
        let v = cands[((i * cands.len()) / parts).min(cands.len() - 1)];
        // Everything strictly below `v` must land in parts <= i; elements
        // equal to `v` are distributed greedily to hit the target rank.
        let mut row: Vec<usize> = Vec::with_capacity(runs.len());
        let mut below = 0usize;
        let mut ties: Vec<usize> = Vec::with_capacity(runs.len());
        for run in runs {
            let lo = crate::search::lower_bound(run, &v);
            let hi = crate::search::upper_bound(run, &v);
            row.push(lo);
            ties.push(hi - lo);
            below += lo;
        }
        let mut deficit = target.saturating_sub(below);
        for (j, cut) in row.iter_mut().enumerate() {
            let take = deficit.min(ties[j]);
            *cut += take;
            deficit -= take;
        }
        // Clamp against the previous row: candidate values are sorted so
        // the cuts are already monotone, but make it structural.
        let prev = rows.last().expect("rows starts non-empty");
        for (cut, &p) in row.iter_mut().zip(prev.iter()) {
            *cut = (*cut).max(p);
        }
        rows.push(row);
    }
    rows.push(runs.iter().map(|r| r.len()).collect());
    rows
}

/// Parallel k-way merge of sorted `runs` into `out` (whose length must
/// equal the total run length): the output is split into `workers`
/// near-equal parts by [`plan_multiway_splits`], and each part is merged
/// independently on a scoped thread — one pass over the data, each worker
/// streaming into its own contiguous, cache-local output segment. Small
/// inputs fall through to the sequential [`kway_merge_into`].
// analyze: allow(hot-path-alloc): O(parts) slice bookkeeping around the
// in-place merge of caller-owned memory.
pub fn parallel_kway_merge_into<T: Ord + Copy + Send + Sync>(
    runs: &[&[T]],
    out: &mut [T],
    workers: usize,
) {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert_eq!(total, out.len(), "output size mismatch");
    if workers <= 1 || total < PARALLEL_MERGE_CUTOFF {
        crate::kway::kway_merge_into(runs, out);
        return;
    }
    let rows = plan_multiway_splits(runs, workers);
    std::thread::scope(|scope| {
        let mut rest = out;
        for pair in rows.windows(2) {
            let (lo, hi) = (&pair[0], &pair[1]);
            let part_len: usize = lo.iter().zip(hi.iter()).map(|(&a, &b)| b - a).sum();
            let (segment, tail) = rest.split_at_mut(part_len);
            rest = tail;
            if part_len == 0 {
                continue;
            }
            let part_runs: Vec<&[T]> = runs
                .iter()
                .zip(lo.iter().zip(hi.iter()))
                .map(|(run, (&a, &b))| &run[a..b])
                .collect();
            scope.spawn(move || crate::kway::kway_merge_into(&part_runs, segment));
        }
    });
}

/// Convenience wrapper: parallel k-way merge of the runs stored
/// back-to-back in `data` (run `r` at `data[bounds[r]..bounds[r + 1]]`).
/// The flat-k-way alternative to the Fig. 2 [`balanced_merge`] tree.
pub fn parallel_kway_merge<T: Ord + Copy + Send + Sync>(
    data: Vec<T>,
    bounds: &[usize],
    workers: usize,
) -> Vec<T> {
    assert!(!bounds.is_empty(), "bounds must contain at least [0]");
    assert_eq!(*bounds.last().unwrap(), data.len(), "bounds must cover data");
    if bounds.len() <= 2 {
        return data; // zero or one run: already sorted
    }
    let mut out = data.clone();
    let runs: Vec<&[T]> = bounds.windows(2).map(|w| &data[w[0]..w[1]]).collect();
    parallel_kway_merge_into(&runs, &mut out, workers);
    out
}

/// Sequential form of the Fig. 2 tree: identical merge schedule, no
/// thread spawns. Used automatically for small inputs.
// analyze: allow(hot-path-alloc): fallback path ping-pong buffer at
// batch scale; the result escapes as the merged output.
fn balanced_merge_sequential<T: Ord + Copy>(mut data: Vec<T>, bounds: &[usize]) -> Vec<T> {
    let mut cur_bounds: Vec<usize> = bounds.to_vec();
    let mut scratch: Vec<T> = data.clone();
    while cur_bounds.len() > 2 {
        let num_runs = cur_bounds.len() - 1;
        let num_pairs = num_runs / 2;
        let mut next_bounds = Vec::with_capacity(num_pairs + 2);
        next_bounds.push(0);
        for k in 0..num_pairs {
            let (a0, a1, b1) = (cur_bounds[2 * k], cur_bounds[2 * k + 1], cur_bounds[2 * k + 2]);
            merge_into(&data[a0..a1], &data[a1..b1], &mut scratch[a0..b1]);
            next_bounds.push(b1);
        }
        if num_runs % 2 == 1 {
            let start = cur_bounds[2 * num_pairs];
            let end = *cur_bounds.last().unwrap();
            scratch[start..end].copy_from_slice(&data[start..end]);
            next_bounds.push(end);
        }
        std::mem::swap(&mut data, &mut scratch);
        cur_bounds = next_bounds;
    }
    data
}

/// Convenience: sorts each even chunk with the provided sorter and then
/// combines the chunks with [`balanced_merge`]. This is exactly the §IV
/// step-1 pipeline (chunk → local sort → balanced merge) and is reused by
/// both the parallel quicksort and the distributed final merge.
///
/// The worker count is clamped so each chunk holds at least
/// [`exec::MIN_ITEMS_PER_WORKER`] items — spawning threads for tiny
/// chunks costs more than it saves.
pub fn sort_chunks_and_merge<T, F>(mut data: Vec<T>, workers: usize, sorter: F) -> Vec<T>
where
    T: Ord + Copy + Send + Sync,
    F: Fn(&mut [T]) + Sync,
{
    let workers = workers
        .max(1)
        .min((data.len() / exec::MIN_ITEMS_PER_WORKER).max(1));
    let bounds = even_chunk_bounds(data.len(), workers);
    exec::for_each_chunk_mut(&mut data, workers, |_, chunk| sorter(chunk));
    balanced_merge(data, &bounds, workers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_vec(n: usize, modulus: u64) -> Vec<u64> {
        let mut x: u64 = 0x2545f4914f6cdd1d;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % modulus
            })
            .collect()
    }

    #[test]
    fn merge_into_basic() {
        let a = [1, 3, 5];
        let b = [2, 4, 6, 7];
        let mut out = [0; 7];
        merge_into(&a, &b, &mut out);
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn merge_into_empty_sides() {
        let mut out = [0; 3];
        merge_into(&[], &[1, 2, 3], &mut out);
        assert_eq!(out, [1, 2, 3]);
        merge_into(&[1, 2, 3], &[], &mut out);
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn merge_is_stable_for_tagged_ties() {
        // Tag values with their source; Ord on the key part only.
        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        struct Tagged(u32, u8);
        impl PartialOrd for Tagged {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Tagged {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.cmp(&other.0)
            }
        }
        let a = [Tagged(1, 0), Tagged(2, 0)];
        let b = [Tagged(1, 1), Tagged(2, 1)];
        let mut out = [Tagged(0, 9); 4];
        merge_into(&a, &b, &mut out);
        // ties: `a` side first
        assert_eq!(out[0].1, 0);
        assert_eq!(out[1].1, 1);
        assert_eq!(out[2].1, 0);
        assert_eq!(out[3].1, 1);
    }

    #[test]
    fn parallel_merge_matches_sequential() {
        let mut a = xorshift_vec(50_000, 1000);
        let mut b = xorshift_vec(30_011, 1000);
        a.sort_unstable();
        b.sort_unstable();
        let mut seq = vec![0u64; a.len() + b.len()];
        merge_into(&a, &b, &mut seq);
        let mut par = vec![0u64; a.len() + b.len()];
        parallel_merge_into(&a, &b, &mut par, 8);
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_merge_skewed_sizes() {
        let mut a = xorshift_vec(100_000, u64::MAX);
        let mut b = xorshift_vec(17, u64::MAX);
        a.sort_unstable();
        b.sort_unstable();
        let mut out = vec![0u64; a.len() + b.len()];
        parallel_merge_into(&a, &b, &mut out, 4);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn balanced_merge_power_of_two_runs() {
        let mut data = xorshift_vec(1 << 16, 1 << 20);
        let bounds = even_chunk_bounds(data.len(), 8);
        for w in bounds.windows(2) {
            data[w[0]..w[1]].sort_unstable();
        }
        let mut expect = data.clone();
        expect.sort_unstable();
        let merged = balanced_merge(data, &bounds, 8);
        assert_eq!(merged, expect);
    }

    #[test]
    fn balanced_merge_odd_run_count() {
        for runs in [1usize, 3, 5, 7, 9] {
            let mut data = xorshift_vec(10_000 + runs, 64);
            let bounds = even_chunk_bounds(data.len(), runs);
            for w in bounds.windows(2) {
                data[w[0]..w[1]].sort_unstable();
            }
            let mut expect = data.clone();
            expect.sort_unstable();
            let merged = balanced_merge(data, &bounds, 4);
            assert_eq!(merged, expect, "runs={runs}");
        }
    }

    #[test]
    fn balanced_merge_with_empty_runs() {
        // Some machines may contribute nothing after the exchange.
        let data = vec![5u64, 6, 7];
        let bounds = vec![0, 0, 3, 3, 3];
        let merged = balanced_merge(data, &bounds, 2);
        assert_eq!(merged, vec![5, 6, 7]);
    }

    #[test]
    fn balanced_merge_empty_input() {
        let merged = balanced_merge(Vec::<u64>::new(), &[0], 4);
        assert!(merged.is_empty());
        let merged = balanced_merge(Vec::<u64>::new(), &[0, 0, 0], 4);
        assert!(merged.is_empty());
    }

    #[test]
    fn sort_chunks_and_merge_end_to_end() {
        let data = xorshift_vec(100_000, 1 << 30);
        let mut expect = data.clone();
        expect.sort_unstable();
        let sorted = sort_chunks_and_merge(data, 8, |chunk| chunk.sort_unstable());
        assert_eq!(sorted, expect);
    }

    #[test]
    fn sort_chunks_single_worker() {
        let data = xorshift_vec(1000, 100);
        let mut expect = data.clone();
        expect.sort_unstable();
        let sorted = sort_chunks_and_merge(data, 1, |chunk| chunk.sort_unstable());
        assert_eq!(sorted, expect);
    }

    fn sorted_runs(k: usize, n: usize, modulus: u64) -> Vec<Vec<u64>> {
        (0..k)
            .map(|i| {
                let mut run = xorshift_vec(n + 37 * i, modulus);
                run.sort_unstable();
                run
            })
            .collect()
    }

    #[test]
    fn split_plan_is_monotone_and_ordered() {
        for modulus in [u64::MAX, 1000, 7, 1] {
            let runs = sorted_runs(5, 20_000, modulus);
            let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
            let parts = 6;
            let rows = plan_multiway_splits(&refs, parts);
            assert_eq!(rows.len(), parts + 1);
            assert_eq!(rows[0], vec![0; refs.len()]);
            let lens: Vec<usize> = refs.iter().map(|r| r.len()).collect();
            assert_eq!(rows[parts], lens);
            for i in 0..parts {
                for j in 0..refs.len() {
                    assert!(rows[i][j] <= rows[i + 1][j], "row {i} run {j} not monotone");
                }
                // cross-part order: max of part i <= min of part i+1
                let part_max = (0..refs.len())
                    .filter(|&j| rows[i + 1][j] > rows[i][j])
                    .map(|j| refs[j][rows[i + 1][j] - 1])
                    .max();
                let next_min = if i + 1 < parts {
                    (0..refs.len())
                        .filter(|&j| rows[i + 2][j] > rows[i + 1][j])
                        .map(|j| refs[j][rows[i + 1][j]])
                        .min()
                } else {
                    None
                };
                if let (Some(mx), Some(mn)) = (part_max, next_min) {
                    assert!(mx <= mn, "part {i} max {mx} > part {} min {mn}", i + 1);
                }
            }
        }
    }

    #[test]
    fn split_plan_balances_uniform_parts() {
        let runs = sorted_runs(4, 50_000, u64::MAX);
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let total: usize = refs.iter().map(|r| r.len()).sum();
        let parts = 8;
        let rows = plan_multiway_splits(&refs, parts);
        let ideal = total / parts;
        for pair in rows.windows(2) {
            let size: usize = pair[0]
                .iter()
                .zip(pair[1].iter())
                .map(|(&a, &b)| b - a)
                .sum();
            // Regular sampling keeps parts within a loose factor of ideal.
            assert!(
                size < ideal * 2 + SPLIT_OVERSAMPLE * parts,
                "part size {size} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn parallel_kway_matches_flat_sort() {
        for (k, modulus) in [(2usize, u64::MAX), (5, 1000), (8, 3), (7, 1)] {
            let runs = sorted_runs(k, 20_000, modulus);
            let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
            let total: usize = refs.iter().map(|r| r.len()).sum();
            let mut out = vec![0u64; total];
            parallel_kway_merge_into(&refs, &mut out, 4);
            let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
            expect.sort_unstable();
            assert_eq!(out, expect, "k={k} modulus={modulus}");
        }
    }

    #[test]
    fn parallel_kway_with_empty_and_tiny_runs() {
        let runs: Vec<Vec<u64>> = vec![vec![], vec![5], vec![], (0..40_000).collect(), vec![2, 9]];
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let total: usize = refs.iter().map(|r| r.len()).sum();
        let mut out = vec![0u64; total];
        parallel_kway_merge_into(&refs, &mut out, 4);
        let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_kway_small_input_sequential_path() {
        let runs = sorted_runs(3, 100, 50);
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let total: usize = refs.iter().map(|r| r.len()).sum();
        let mut out = vec![0u64; total];
        parallel_kway_merge_into(&refs, &mut out, 8);
        let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_kway_vec_wrapper() {
        let mut data = xorshift_vec(60_000, 1 << 30);
        let bounds = even_chunk_bounds(data.len(), 5);
        for w in bounds.windows(2) {
            data[w[0]..w[1]].sort_unstable();
        }
        let mut expect = data.clone();
        expect.sort_unstable();
        let merged = parallel_kway_merge(data, &bounds, 4);
        assert_eq!(merged, expect);
        // Degenerate bounds: zero or one run returns input as-is.
        let merged = parallel_kway_merge(vec![3u64, 1, 2], &[0, 3], 4);
        assert_eq!(merged, vec![3, 1, 2]);
        let merged = parallel_kway_merge(Vec::<u64>::new(), &[0], 4);
        assert!(merged.is_empty());
    }
}
