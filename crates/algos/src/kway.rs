//! Loser-tree k-way merge.
//!
//! Used by the master to combine the `p` sorted sample runs it gathers in
//! §IV step 3 (one comparison per emitted element instead of the
//! `log₂ p`-swap churn of a binary heap), and by the ablation benches as
//! the non-balanced alternative to the Fig. 2 merge tree.

/// A tournament loser tree over `k` sorted runs.
///
/// The tree stores, at each internal node, the *loser* of the match played
/// there; the overall winner (smallest head) sits at the root. Advancing
/// the winner replays only its leaf-to-root path: `O(log k)` comparisons
/// per emitted element, independent of how the other runs interleave.
pub struct LoserTree<'a, T> {
    runs: Vec<&'a [T]>,
    /// Cursor into each run.
    cursors: Vec<usize>,
    /// `tree[n]` = run index that *lost* the match at internal node `n`;
    /// `tree[0]` holds the overall winner.
    tree: Vec<usize>,
    k: usize,
}

impl<'a, T: Ord + Copy> LoserTree<'a, T> {
    /// Builds the tree over the given sorted runs (empty runs allowed).
    // analyze: allow(hot-path-alloc): O(k) run pointers and tree nodes per
    // merge; k is the run count, never the element count.
    pub fn new(runs: Vec<&'a [T]>) -> Self {
        let k = runs.len().max(1);
        let mut lt = LoserTree {
            cursors: vec![0; runs.len()],
            runs,
            tree: vec![usize::MAX; k],
            k,
        };
        lt.rebuild();
        lt
    }

    /// Key at the head of run `r`, or `None` if exhausted.
    #[inline]
    fn head(&self, r: usize) -> Option<T> {
        if r < self.runs.len() {
            self.runs[r].get(self.cursors[r]).copied()
        } else {
            None
        }
    }

    /// `true` if run `a`'s head should win against run `b`'s head.
    /// Exhausted runs always lose; ties break toward the lower run index
    /// so the merge is stable in run order.
    #[inline]
    fn beats(&self, a: usize, b: usize) -> bool {
        match (self.head(a), self.head(b)) {
            (Some(x), Some(y)) => x < y || (x == y && a < b),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Recomputes the whole tree bottom-up.
    ///
    /// Conceptual layout: a complete binary tree over `2k` positions with
    /// the `k` leaves at positions `k..2k`; internal node `n` plays the
    /// winners of positions `2n` and `2n+1`, storing the loser in
    /// `tree[n]`. Run index `usize::MAX` is a virtual "always loses" run
    /// that pads positions with no real leaf.
    // analyze: allow(hot-path-alloc): O(k) node reset when a merge is
    // re-seeded; amortized over the whole merged output.
    fn rebuild(&mut self) {
        let k = self.k;
        self.tree = vec![usize::MAX; k];
        let mut winner = vec![usize::MAX; 2 * k];
        for (r, slot) in winner[k..].iter_mut().enumerate() {
            if r < self.runs.len() {
                *slot = r;
            }
        }
        for node in (1..k).rev() {
            let a = winner[2 * node];
            let b = winner[2 * node + 1];
            let (w, l) = if self.beats(a, b) { (a, b) } else { (b, a) };
            winner[node] = w;
            self.tree[node] = l;
        }
        self.tree[0] = winner[1.min(2 * k - 1)];
    }

    /// Pops the smallest remaining element across all runs, with the index
    /// of the run it came from.
    pub fn pop(&mut self) -> Option<(T, usize)> {
        let winner = self.tree[0];
        if winner == usize::MAX {
            return None;
        }
        let value = self.head(winner)?;
        self.cursors[winner] += 1;
        // Replay the winner's path with its new head.
        let mut node = (winner + self.k) / 2;
        let mut current = winner;
        while node > 0 {
            let stored = self.tree[node];
            if stored != usize::MAX && self.beats(stored, current) {
                self.tree[node] = current;
                current = stored;
            }
            node /= 2;
        }
        self.tree[0] = current;
        Some((value, winner))
    }

    /// Total remaining elements across all runs.
    pub fn remaining(&self) -> usize {
        self.runs
            .iter()
            .zip(&self.cursors)
            .map(|(run, &c)| run.len() - c)
            .sum()
    }
}

/// Merges `k` sorted runs into one sorted vector with a loser tree.
// analyze: allow(hot-path-alloc): O(k) run-slice copies plus the output
// vector — the output IS the merge result handed back to the caller.
pub fn kway_merge<T: Ord + Copy>(runs: &[&[T]]) -> Vec<T> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut tree = LoserTree::new(runs.to_vec());
    while let Some((v, _)) = tree.pop() {
        out.push(v);
    }
    debug_assert_eq!(out.len(), total);
    out
}

/// Merges `k` sorted runs into a caller-provided output slice whose length
/// must equal the total run length. The allocation-free form of
/// [`kway_merge`], used by the parallel multiway merge to fill disjoint
/// output segments in place.
// analyze: allow(hot-path-alloc): O(k) run-slice copy to seed the loser
// tree; the element payload goes to the caller-provided slice.
pub fn kway_merge_into<T: Ord + Copy>(runs: &[&[T]], out: &mut [T]) {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert_eq!(total, out.len(), "output size mismatch");
    match runs.len() {
        0 => {}
        1 => out.copy_from_slice(runs[0]),
        2 => crate::merge::merge_into(runs[0], runs[1], out),
        _ => {
            let mut tree = LoserTree::new(runs.to_vec());
            for slot in out.iter_mut() {
                let (v, _) = tree.pop().expect("loser tree exhausted early");
                *slot = v;
            }
            debug_assert_eq!(tree.remaining(), 0);
        }
    }
}

/// Merges `k` sorted runs, also reporting for every output element which
/// run it came from. Used where provenance matters (e.g. tracing samples
/// back to their processor).
// analyze: allow(hot-path-alloc): O(k) run-slice copy plus the tagged
// output vector the verifier consumes.
pub fn kway_merge_tagged<T: Ord + Copy>(runs: &[&[T]]) -> Vec<(T, usize)> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut tree = LoserTree::new(runs.to_vec());
    while let Some(pair) = tree.pop() {
        out.push(pair);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_runs(k: usize, n: usize, modulus: u64) -> Vec<Vec<u64>> {
        let mut x: u64 = 0xa5a5a5a5deadbeef;
        (0..k)
            .map(|i| {
                let mut run: Vec<u64> = (0..n + i)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x % modulus
                    })
                    .collect();
                run.sort_unstable();
                run
            })
            .collect()
    }

    #[test]
    fn merges_three_runs() {
        let runs = [vec![1u64, 4, 7], vec![2, 5, 8], vec![3, 6, 9]];
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        assert_eq!(kway_merge(&refs), vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn merges_with_empty_runs() {
        let runs = [vec![], vec![1u64, 2], vec![], vec![0, 3], vec![]];
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        assert_eq!(kway_merge(&refs), vec![0, 1, 2, 3]);
    }

    #[test]
    fn merges_single_run_and_none() {
        let run = vec![1u64, 2, 3];
        assert_eq!(kway_merge(&[run.as_slice()]), vec![1, 2, 3]);
        let empty: Vec<&[u64]> = vec![];
        assert_eq!(kway_merge(&empty), Vec::<u64>::new());
    }

    #[test]
    fn matches_flat_sort_various_k() {
        for k in [1usize, 2, 3, 5, 8, 13, 16, 31] {
            let runs = xorshift_runs(k, 500, 100);
            let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
            let merged = kway_merge(&refs);
            let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
            expect.sort_unstable();
            assert_eq!(merged, expect, "k={k}");
        }
    }

    #[test]
    fn tagged_provenance_is_correct() {
        let runs = [vec![1u64, 3], vec![2, 3]];
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let tagged = kway_merge_tagged(&refs);
        assert_eq!(tagged, vec![(1, 0), (2, 1), (3, 0), (3, 1)]);
    }

    #[test]
    fn stability_ties_prefer_lower_run() {
        let runs = [vec![5u64, 5], vec![5, 5], vec![5]];
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let tagged = kway_merge_tagged(&refs);
        let sources: Vec<usize> = tagged.iter().map(|&(_, s)| s).collect();
        assert_eq!(sources, vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn remaining_counts_down() {
        let runs = [vec![1u64, 2], vec![3]];
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let mut tree = LoserTree::new(refs);
        assert_eq!(tree.remaining(), 3);
        tree.pop();
        assert_eq!(tree.remaining(), 2);
        tree.pop();
        tree.pop();
        assert_eq!(tree.remaining(), 0);
        assert_eq!(tree.pop(), None);
    }

    #[test]
    fn all_duplicates_heavy() {
        let runs = xorshift_runs(7, 2000, 2);
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let merged = kway_merge(&refs);
        let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
        expect.sort_unstable();
        assert_eq!(merged, expect);
    }
}
