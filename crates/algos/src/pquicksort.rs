//! The paper's *parallel quick sort* (§IV step 1): data is divided equally
//! among the worker threads of a machine, each worker quicksorts its chunk
//! locally, and the per-worker runs are combined with the balanced merge
//! handler of Fig. 2.

use crate::merge::sort_chunks_and_merge;
use crate::quicksort::quicksort;

/// Sorts `data` with `workers` threads: even chunking, per-chunk
/// quicksort, balanced pairwise merging. Returns the sorted vector.
pub fn parallel_quicksort<T: Ord + Copy + Send + Sync>(data: Vec<T>, workers: usize) -> Vec<T> {
    sort_chunks_and_merge(data, workers, |chunk| quicksort(chunk))
}

/// In-place convenience wrapper around [`parallel_quicksort`].
pub fn parallel_quicksort_in_place<T: Ord + Copy + Send + Sync>(data: &mut Vec<T>, workers: usize) {
    let taken = std::mem::take(data);
    *data = parallel_quicksort(taken, workers);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_vec(n: usize, modulus: u64) -> Vec<u64> {
        let mut x: u64 = 0x9e3779b97f4a7c15;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % modulus
            })
            .collect()
    }

    #[test]
    fn matches_std_sort_across_worker_counts() {
        let base = xorshift_vec(200_000, u64::MAX);
        let mut expect = base.clone();
        expect.sort_unstable();
        for workers in [1, 2, 3, 4, 7, 8, 16] {
            let got = parallel_quicksort(base.clone(), workers);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn heavy_duplicates() {
        let base = xorshift_vec(100_000, 3);
        let mut expect = base.clone();
        expect.sort_unstable();
        assert_eq!(parallel_quicksort(base, 8), expect);
    }

    #[test]
    fn small_inputs() {
        assert_eq!(parallel_quicksort(Vec::<u64>::new(), 8), vec![]);
        assert_eq!(parallel_quicksort(vec![1u64], 8), vec![1]);
        assert_eq!(parallel_quicksort(vec![2u64, 1], 8), vec![1, 2]);
    }

    #[test]
    fn in_place_wrapper() {
        let mut v = vec![5u32, 1, 4, 2, 3];
        parallel_quicksort_in_place(&mut v, 2);
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn already_sorted_and_reverse() {
        let asc: Vec<u64> = (0..50_000).collect();
        assert_eq!(parallel_quicksort(asc.clone(), 4), asc);
        let desc: Vec<u64> = (0..50_000).rev().collect();
        assert_eq!(parallel_quicksort(desc, 4), asc);
    }
}
