//! LSD radix sort — the comparison-free classical baseline of §II.
//!
//! The paper notes radix sort "highly depends on the data characteristics"
//! and suffers irregular communication in its distributed form; the
//! distributed variant in `pgxd-baselines` is built on this local kernel.
//! [`RadixDispatch`] lets generic `Key` code reach this fast path without
//! specialization: the runtime's `LocalSortAlgo::{Radix, Auto}` route
//! through it and fall back to comparison sorting for non-radix keys.

use std::any::{Any, TypeId};

use crate::exec::{self, even_chunk_bounds};
use crate::Key;

/// Keys that expose a fixed-width unsigned radix image whose order matches
/// their `Ord` order.
pub trait RadixKey: Copy {
    /// Number of 8-bit digit passes needed.
    const PASSES: usize;
    /// The `d`-th least-significant byte of the order-preserving image.
    fn digit(self, d: usize) -> u8;
}

impl RadixKey for u64 {
    const PASSES: usize = 8;
    #[inline]
    fn digit(self, d: usize) -> u8 {
        (self >> (8 * d)) as u8
    }
}

impl RadixKey for u32 {
    const PASSES: usize = 4;
    #[inline]
    fn digit(self, d: usize) -> u8 {
        (self >> (8 * d)) as u8
    }
}

impl RadixKey for i64 {
    const PASSES: usize = 8;
    #[inline]
    fn digit(self, d: usize) -> u8 {
        // Bias to unsigned so negative values order below positive ones.
        (((self as u64) ^ (1u64 << 63)) >> (8 * d)) as u8
    }
}

/// Stable LSD radix sort with 8-bit digits and per-pass counting, skipping
/// passes where every key shares the same digit (common on duplicated or
/// small-range data). Allocates one internal scratch buffer; callers with
/// a buffer to recycle should use [`radix_sort_with_scratch`].
// analyze: allow(hot-path-alloc): one counting-scratch vector per sort
// call, reused across all digit passes.
pub fn radix_sort<T: RadixKey>(data: &mut [T]) {
    let mut scratch = Vec::new();
    radix_sort_with_scratch(data, &mut scratch);
}

/// [`radix_sort`] into a caller-supplied scratch buffer (cleared and
/// refilled here; any prior capacity is reused). Callable on worker chunk
/// slices without per-chunk allocation.
pub fn radix_sort_with_scratch<T: RadixKey>(data: &mut [T], scratch: &mut Vec<T>) {
    let n = data.len();
    if n < 2 {
        return;
    }
    scratch.clear();
    scratch.extend_from_slice(data);

    let mut src_is_data = true;
    for pass in 0..T::PASSES {
        let (src, dst): (&mut [T], &mut [T]) = if src_is_data {
            (&mut *data, scratch.as_mut_slice())
        } else {
            (scratch.as_mut_slice(), &mut *data)
        };
        if !radix_pass(src, dst, pass) {
            continue; // degenerate pass: all keys share this digit
        }
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        data.copy_from_slice(scratch);
    }
}

/// One counting pass: scatters `src` into `dst` by digit `pass`. Returns
/// `false` without writing when the pass is degenerate (every key shares
/// the digit), so the caller keeps its source/destination roles.
// analyze: allow(panic-surface): digits are u8 so the 256-entry count and
// offset tables cannot be out-indexed, and dst is the same length as src.
fn radix_pass<T: RadixKey>(src: &[T], dst: &mut [T], pass: usize) -> bool {
    let n = src.len();
    let mut counts = [0usize; 256];
    for &k in src.iter() {
        counts[k.digit(pass) as usize] += 1;
    }
    if counts.contains(&n) {
        return false;
    }
    let mut offsets = [0usize; 256];
    let mut running = 0;
    for (o, &c) in offsets.iter_mut().zip(counts.iter()) {
        *o = running;
        running += c;
    }
    for &k in src.iter() {
        let d = k.digit(pass) as usize;
        dst[offsets[d]] = k;
        offsets[d] += 1;
    }
    true
}

/// Specialization-free bridge from generic [`Key`] code to the radix fast
/// path. The blanket impl probes the concrete type at runtime (`TypeId`
/// against the [`RadixKey`] impls) and round-trips the owned buffer
/// through `Box<dyn Any>` — no unsafe, no nightly specialization, and the
/// probe is one comparison per *call*, not per element.
pub trait RadixDispatch: Key {
    /// Whether this key type has a radix image ([`RadixKey`] impl).
    fn radix_capable() -> bool;

    /// Radix-sorts `data` split into `workers` even chunks (each chunk
    /// sorted independently; combine with a k-way merge). On success
    /// returns the chunk-sorted buffer plus the chunk bounds; for
    /// non-radix key types returns the input untouched as `Err`.
    fn radix_sort_chunks(data: Vec<Self>, workers: usize) -> Result<(Vec<Self>, Vec<usize>), Vec<Self>>;
}

impl<K: Key> RadixDispatch for K {
    fn radix_capable() -> bool {
        let id = TypeId::of::<K>();
        id == TypeId::of::<u64>() || id == TypeId::of::<u32>() || id == TypeId::of::<i64>()
    }

    // analyze: allow(panic-surface): every downcast is guarded by the
    // TypeId comparison on the line above it — the box always holds the
    // type named in the expect.
    // analyze: allow(hot-path-alloc): per-worker chunk staging at batch
    // scale — the chunks escape as the distributed exchange payload.
    fn radix_sort_chunks(data: Vec<K>, workers: usize) -> Result<(Vec<K>, Vec<usize>), Vec<K>> {
        fn go<T: RadixKey + Key>(data: Vec<T>, workers: usize) -> (Vec<T>, Vec<usize>) {
            let mut data = data;
            let n = data.len();
            let workers = workers
                .max(1)
                .min((n / exec::MIN_ITEMS_PER_WORKER).max(1));
            let bounds = even_chunk_bounds(n, workers);
            if workers <= 1 {
                radix_sort(&mut data);
                return (data, bounds);
            }
            exec::for_each_chunk_mut(&mut data, workers, |_, chunk| {
                let mut scratch = Vec::new();
                radix_sort_with_scratch(chunk, &mut scratch);
            });
            (data, bounds)
        }

        fn reclaim<K: 'static>(boxed: Box<dyn Any>) -> Vec<K> {
            *boxed
                .downcast::<Vec<K>>()
                .expect("radix dispatch round-trip changed the buffer type")
        }

        let id = TypeId::of::<K>();
        let boxed: Box<dyn Any> = Box::new(data);
        if id == TypeId::of::<u64>() {
            let v = reclaim::<u64>(boxed);
            let (v, bounds) = go(v, workers);
            return Ok((reclaim::<K>(Box::new(v)), bounds));
        }
        if id == TypeId::of::<u32>() {
            let v = reclaim::<u32>(boxed);
            let (v, bounds) = go(v, workers);
            return Ok((reclaim::<K>(Box::new(v)), bounds));
        }
        if id == TypeId::of::<i64>() {
            let v = reclaim::<i64>(boxed);
            let (v, bounds) = go(v, workers);
            return Ok((reclaim::<K>(Box::new(v)), bounds));
        }
        Err(reclaim::<K>(boxed))
    }
}

/// Convenience: full parallel radix sort (chunk passes + parallel k-way
/// merge). `Err` returns the input untouched for non-radix key types.
// analyze: allow(panic-surface): run bounds come from even_chunk_bounds
// over the data length, so every bounds window indexes in range.
// analyze: allow(hot-path-alloc): merge staging for the per-chunk
// results; the output vector is what the caller takes ownership of.
pub fn try_parallel_radix_sort<K: Key>(data: Vec<K>, workers: usize) -> Result<Vec<K>, Vec<K>> {
    let (chunked, bounds) = K::radix_sort_chunks(data, workers)?;
    if bounds.len() <= 2 {
        return Ok(chunked);
    }
    let workers = bounds.len() - 1;
    let mut out = chunked.clone();
    let runs: Vec<&[K]> = bounds.windows(2).map(|w| &chunked[w[0]..w[1]]).collect();
    crate::merge::parallel_kway_merge_into(&runs, &mut out, workers);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_vec(seed: u64, n: usize, modulus: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % modulus
            })
            .collect()
    }

    #[test]
    fn sorts_u64_random() {
        let mut v = xorshift_vec(0x5151, 50_000, u64::MAX);
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_small_range_skips_passes() {
        let mut v = xorshift_vec(0x99, 10_000, 200); // only low byte varies
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_u32() {
        let mut v: Vec<u32> = xorshift_vec(0x3, 20_000, 1 << 31)
            .into_iter()
            .map(|x| x as u32)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_i64_with_negatives() {
        let mut v: Vec<i64> = xorshift_vec(0x42, 20_000, u64::MAX)
            .into_iter()
            .map(|x| x as i64)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_edges() {
        let mut v: Vec<u64> = vec![];
        radix_sort(&mut v);
        let mut v = vec![9u64];
        radix_sort(&mut v);
        assert_eq!(v, vec![9]);
        let mut v = vec![u64::MAX, 0, u64::MAX, 1];
        radix_sort(&mut v);
        assert_eq!(v, vec![0, 1, u64::MAX, u64::MAX]);
    }

    #[test]
    fn all_equal() {
        let mut v = vec![123456789u64; 5000];
        let expect = v.clone();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_subslice_only() {
        // The slice API must leave everything outside the slice alone.
        let mut v = xorshift_vec(0x77, 1000, u64::MAX);
        let before_head = v[..10].to_vec();
        let mut expect_mid = v[10..990].to_vec();
        expect_mid.sort_unstable();
        let before_tail = v[990..].to_vec();
        radix_sort(&mut v[10..990]);
        assert_eq!(&v[..10], &before_head[..]);
        assert_eq!(&v[10..990], &expect_mid[..]);
        assert_eq!(&v[990..], &before_tail[..]);
    }

    #[test]
    fn scratch_reuse_across_calls() {
        let mut scratch = Vec::new();
        for seed in [1u64, 2, 3] {
            let mut v = xorshift_vec(seed, 4096, 1 << 40);
            let mut expect = v.clone();
            expect.sort_unstable();
            radix_sort_with_scratch(&mut v, &mut scratch);
            assert_eq!(v, expect);
        }
        assert!(scratch.capacity() >= 4096);
    }

    #[test]
    fn dispatch_capability_probe() {
        assert!(<u64 as RadixDispatch>::radix_capable());
        assert!(<u32 as RadixDispatch>::radix_capable());
        assert!(<i64 as RadixDispatch>::radix_capable());
        assert!(!<crate::FixedStr<8> as RadixDispatch>::radix_capable());
        assert!(!<(u64, u64) as RadixDispatch>::radix_capable());
    }

    #[test]
    fn dispatch_chunks_are_sorted_at_bounds() {
        let v = xorshift_vec(0xabc, 100_000, u64::MAX);
        let (chunked, bounds) = u64::radix_sort_chunks(v.clone(), 4).expect("u64 is radix-capable");
        assert_eq!(bounds.first(), Some(&0));
        assert_eq!(bounds.last(), Some(&v.len()));
        for w in bounds.windows(2) {
            assert!(chunked[w[0]..w[1]].windows(2).all(|p| p[0] <= p[1]));
        }
        let mut expect = v;
        expect.sort_unstable();
        let mut flat = chunked;
        flat.sort_unstable();
        assert_eq!(flat, expect); // same multiset
    }

    #[test]
    fn dispatch_refuses_non_radix_keys() {
        let v: Vec<(u64, u64)> = (0..100).map(|i| (i, i)).collect();
        let back = <(u64, u64)>::radix_sort_chunks(v.clone(), 4).expect_err("tuples have no radix image");
        assert_eq!(back, v);
    }

    #[test]
    fn parallel_radix_agrees() {
        for modulus in [u64::MAX, 255, 1] {
            let v = xorshift_vec(0xdead, 80_000, modulus);
            let mut expect = v.clone();
            expect.sort_unstable();
            let got = try_parallel_radix_sort(v, 4).expect("u64 is radix-capable");
            assert_eq!(got, expect, "modulus={modulus}");
        }
    }

    #[test]
    fn parallel_radix_i64() {
        let v: Vec<i64> = xorshift_vec(0xbeef, 60_000, u64::MAX)
            .into_iter()
            .map(|x| x as i64)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        let got = try_parallel_radix_sort(v, 8).expect("i64 is radix-capable");
        assert_eq!(got, expect);
    }
}
