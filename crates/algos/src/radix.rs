//! LSD radix sort — the comparison-free classical baseline of §II.
//!
//! The paper notes radix sort "highly depends on the data characteristics"
//! and suffers irregular communication in its distributed form; the
//! distributed variant in `pgxd-baselines` is built on this local kernel.

/// Keys that expose a fixed-width unsigned radix image whose order matches
/// their `Ord` order.
pub trait RadixKey: Copy {
    /// Number of 8-bit digit passes needed.
    const PASSES: usize;
    /// The `d`-th least-significant byte of the order-preserving image.
    fn digit(self, d: usize) -> u8;
}

impl RadixKey for u64 {
    const PASSES: usize = 8;
    #[inline]
    fn digit(self, d: usize) -> u8 {
        (self >> (8 * d)) as u8
    }
}

impl RadixKey for u32 {
    const PASSES: usize = 4;
    #[inline]
    fn digit(self, d: usize) -> u8 {
        (self >> (8 * d)) as u8
    }
}

impl RadixKey for i64 {
    const PASSES: usize = 8;
    #[inline]
    fn digit(self, d: usize) -> u8 {
        // Bias to unsigned so negative values order below positive ones.
        (((self as u64) ^ (1u64 << 63)) >> (8 * d)) as u8
    }
}

/// Stable LSD radix sort with 8-bit digits and per-pass counting, skipping
/// passes where every key shares the same digit (common on duplicated or
/// small-range data).
pub fn radix_sort<T: RadixKey>(data: &mut Vec<T>) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let mut scratch: Vec<T> = Vec::with_capacity(n);
    // SAFETY-free: fill scratch by copying; every slot is rewritten by the
    // first executed pass anyway.
    scratch.extend_from_slice(data);

    let mut src_is_data = true;
    for pass in 0..T::PASSES {
        let (src, dst): (&mut Vec<T>, &mut Vec<T>) = if src_is_data {
            (data, &mut scratch)
        } else {
            (&mut scratch, data)
        };
        let mut counts = [0usize; 256];
        for &k in src.iter() {
            counts[k.digit(pass) as usize] += 1;
        }
        // Skip degenerate passes (all keys share this digit).
        if counts.contains(&n) {
            continue;
        }
        let mut offsets = [0usize; 256];
        let mut running = 0;
        for (o, &c) in offsets.iter_mut().zip(counts.iter()) {
            *o = running;
            running += c;
        }
        for &k in src.iter() {
            let d = k.digit(pass) as usize;
            dst[offsets[d]] = k;
            offsets[d] += 1;
        }
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        data.copy_from_slice(&scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_vec(seed: u64, n: usize, modulus: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % modulus
            })
            .collect()
    }

    #[test]
    fn sorts_u64_random() {
        let mut v = xorshift_vec(0x5151, 50_000, u64::MAX);
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_small_range_skips_passes() {
        let mut v = xorshift_vec(0x99, 10_000, 200); // only low byte varies
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_u32() {
        let mut v: Vec<u32> = xorshift_vec(0x3, 20_000, 1 << 31)
            .into_iter()
            .map(|x| x as u32)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_i64_with_negatives() {
        let mut v: Vec<i64> = xorshift_vec(0x42, 20_000, u64::MAX)
            .into_iter()
            .map(|x| x as i64)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_edges() {
        let mut v: Vec<u64> = vec![];
        radix_sort(&mut v);
        let mut v = vec![9u64];
        radix_sort(&mut v);
        assert_eq!(v, vec![9]);
        let mut v = vec![u64::MAX, 0, u64::MAX, 1];
        radix_sort(&mut v);
        assert_eq!(v, vec![0, 1, u64::MAX, u64::MAX]);
    }

    #[test]
    fn all_equal() {
        let mut v = vec![123456789u64; 5000];
        let expect = v.clone();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }
}
