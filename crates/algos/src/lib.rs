//! Single-machine sorting substrate for the PGX.D distributed-sort
//! reproduction.
//!
//! The distributed algorithm (crate `pgxd-core`) and the baselines (crate
//! `pgxd-baselines`) are built on top of the algorithms here:
//!
//! - [`quicksort`] — sequential introsort-flavoured quicksort (median-of-
//!   three partitioning, insertion-sort base case, heapsort depth fallback),
//!   the paper's per-worker local sort.
//! - [`pquicksort`] — the paper's *parallel quick sort* (§IV step 1): data
//!   is divided equally among worker threads, each sorts its chunk, and the
//!   chunks are combined with the balanced merge handler.
//! - [`merge`] — the **balanced merge handler** of Fig. 2: a power-of-two
//!   pairwise merge tree whose steps each run in parallel, merging runs of
//!   (almost) equal size at every level to keep caches warm and work even.
//! - [`kway`] — loser-tree k-way merge used by the master to combine sample
//!   runs, with a provenance-carrying variant.
//! - [`ipssort`] — ips4o-style **in-place** parallel samplesort: the same
//!   branchless splitter-tree classification as [`ssssort`] but flushing
//!   through constant-size bucket blocks and permuting blocks in place, so
//!   the peak extra memory is constant in `n`; the runtime's default fast
//!   local path.
//! - [`timsort`] — a from-scratch TimSort (run detection, binary insertion
//!   bulking to min-run, galloping merges) as used by Spark's `sortByKey`;
//!   this is the baseline's local sort.
//! - [`radix`] — LSD radix sort, the classic comparison-free baseline the
//!   paper discusses in §II, now reachable from generic code through
//!   [`radix::RadixDispatch`] (the runtime's `LocalSortAlgo::{Radix, Auto}`
//!   fast path).
//! - [`bitonic`] — Batcher's bitonic sorting network, the other classical
//!   baseline of §II.
//! - [`search`] — `lower_bound`/`upper_bound` and the splitter-range
//!   machinery shared with the investigator.
//! - [`exec`] — a minimal scoped fork-join helper so the algorithms can be
//!   parallel without depending on the distributed runtime.
//!
//! All sorts in this crate are generic over [`Key`] (a `Copy + Ord` value —
//! the distributed sort moves raw values between machines, so keys are
//! plain data) and every public sort is covered by both unit tests and
//! property tests asserting *sorted permutation of the input*.

#![forbid(unsafe_code)]

pub mod bitonic;
pub mod exec;
pub mod insertion;
pub mod ipssort;
pub mod kway;
pub mod merge;
pub mod pquicksort;
pub mod quicksort;
pub mod radix;
pub mod search;
pub mod ssssort;
pub mod timsort;

/// Marker trait for sortable plain-data keys.
///
/// Every `Copy + Ord + Send + Sync + 'static` type is a [`Key`]; the alias
/// exists so the bound reads as intent at the dozens of call sites.
pub trait Key: Copy + Ord + Send + Sync + 'static {}
impl<T: Copy + Ord + Send + Sync + 'static> Key for T {}

/// A totally ordered `f64` wrapper (NaN sorts last), so floating-point
/// graph properties can flow through the `Ord`-based sorts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TotalF64(pub f64);

impl TotalF64 {
    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A fixed-width byte-string key: `Copy + Ord` with lexicographic byte
/// order, so textual keys (ids, names, URLs truncated/padded to `N`
/// bytes) flow through every sort in this workspace — the "works with
/// any data type" claim of §VI made concrete for strings.
///
/// Shorter strings are zero-padded (and therefore sort before any longer
/// string sharing their prefix); longer strings are truncated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FixedStr<const N: usize>(pub [u8; N]);

impl<const N: usize> FixedStr<N> {
    /// Builds from a string slice, truncating or zero-padding to `N`.
    pub fn new(s: &str) -> Self {
        let mut buf = [0u8; N];
        let take = s.len().min(N);
        buf[..take].copy_from_slice(&s.as_bytes()[..take]);
        FixedStr(buf)
    }

    /// The key as a string slice, with trailing NULs trimmed (lossy on
    /// non-UTF-8 bytes).
    pub fn as_str(&self) -> std::borrow::Cow<'_, str> {
        let end = self.0.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
        String::from_utf8_lossy(&self.0[..end])
    }
}

impl<const N: usize> std::fmt::Display for FixedStr<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Order-reversing key wrapper: sorting `Desc<K>` ascending yields the
/// descending order of `K`. Lets the distributed sort (and every local
/// kernel) produce descending output with zero extra code paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Desc<K>(pub K);

impl<K: Ord> PartialOrd for Desc<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for Desc<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.cmp(&self.0)
    }
}

impl<K> Desc<K> {
    /// The wrapped key.
    pub fn into_inner(self) -> K {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_reverses_order() {
        let mut v = vec![Desc(1u64), Desc(5), Desc(3)];
        v.sort();
        let keys: Vec<u64> = v.into_iter().map(Desc::into_inner).collect();
        assert_eq!(keys, vec![5, 3, 1]);
    }

    #[test]
    fn desc_roundtrips_through_quicksort() {
        let mut v: Vec<Desc<u32>> = (0..1000).map(Desc).collect();
        quicksort::quicksort(&mut v);
        assert!(v.windows(2).all(|w| w[0].0 >= w[1].0));
    }

    #[test]
    fn fixed_str_orders_lexicographically() {
        let mut v = vec![
            FixedStr::<8>::new("pear"),
            FixedStr::<8>::new("apple"),
            FixedStr::<8>::new("app"),
            FixedStr::<8>::new("banana"),
        ];
        v.sort();
        let names: Vec<String> = v.iter().map(|s| s.as_str().into_owned()).collect();
        assert_eq!(names, vec!["app", "apple", "banana", "pear"]);
    }

    #[test]
    fn fixed_str_truncates_and_pads() {
        let long = FixedStr::<4>::new("abcdefgh");
        assert_eq!(long.as_str(), "abcd");
        let short = FixedStr::<4>::new("x");
        assert_eq!(short.as_str(), "x");
        assert_eq!(format!("{short}"), "x");
        let empty = FixedStr::<4>::new("");
        assert_eq!(empty.as_str(), "");
    }

    #[test]
    fn fixed_str_sorts_through_quicksort() {
        let words = ["zeta", "alpha", "mu", "beta", "alpha"];
        let mut keys: Vec<FixedStr<16>> = words.iter().map(|w| FixedStr::new(w)).collect();
        quicksort::quicksort(&mut keys);
        let sorted: Vec<String> = keys.iter().map(|s| s.as_str().into_owned()).collect();
        assert_eq!(sorted, vec!["alpha", "alpha", "beta", "mu", "zeta"]);
    }

    #[test]
    fn total_f64_orders_nan_last() {
        let mut v = [TotalF64(f64::NAN),
            TotalF64(1.0),
            TotalF64(-1.0),
            TotalF64(0.0)];
        v.sort();
        assert_eq!(v[0].0, -1.0);
        assert_eq!(v[1].0, 0.0);
        assert_eq!(v[2].0, 1.0);
        assert!(v[3].0.is_nan());
    }

    #[test]
    fn total_f64_negative_zero() {
        let mut v = [TotalF64(0.0), TotalF64(-0.0)];
        v.sort();
        assert!(v[0].0.is_sign_negative());
        assert!(v[1].0.is_sign_positive());
    }
}
