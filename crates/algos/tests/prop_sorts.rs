//! Property tests: every sorting kernel produces a sorted permutation of
//! its input for arbitrary data, and the search/merge primitives agree
//! with their `std` reference implementations.

use pgxd_algos::bitonic::{bitonic_sort_padded, compare_split};
use pgxd_algos::insertion::{binary_insertion_sort, insertion_sort};
use pgxd_algos::ipssort::{in_place_sample_sort, in_place_sample_sort_par};
use pgxd_algos::kway::{kway_merge, kway_merge_into, kway_merge_tagged};
use pgxd_algos::merge::{
    balanced_merge, merge_into, parallel_kway_merge_into, parallel_merge_into,
    plan_multiway_splits, sort_chunks_and_merge,
};
use pgxd_algos::pquicksort::parallel_quicksort;
use pgxd_algos::quicksort::{heapsort, quicksort};
use pgxd_algos::radix::{radix_sort, radix_sort_with_scratch, try_parallel_radix_sort, RadixDispatch};
use pgxd_algos::search::{lower_bound, upper_bound};
use pgxd_algos::ssssort::{super_scalar_sample_sort, super_scalar_sample_sort_with_scratch};
use pgxd_algos::timsort::{gallop_left, gallop_right, timsort};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

fn sorted_copy(v: &[u64]) -> Vec<u64> {
    let mut s = v.to_vec();
    s.sort();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quicksort_sorts_anything(mut v in pvec(any::<u64>(), 0..2000)) {
        let expect = sorted_copy(&v);
        quicksort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn quicksort_heavy_duplicates(mut v in pvec(0u64..4, 0..2000)) {
        let expect = sorted_copy(&v);
        quicksort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn heapsort_sorts_anything(mut v in pvec(any::<u64>(), 0..1500)) {
        let expect = sorted_copy(&v);
        heapsort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn timsort_sorts_anything(mut v in pvec(any::<u64>(), 0..2000)) {
        let expect = sorted_copy(&v);
        timsort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn timsort_sorts_runny_data(
        runs in pvec(pvec(any::<u64>(), 1..100), 1..20),
        reverse_mask in any::<u32>(),
    ) {
        // Concatenated pre-sorted (possibly reversed) runs — the natural-
        // run detector's home turf.
        let mut v = Vec::new();
        for (i, mut run) in runs.into_iter().enumerate() {
            run.sort();
            if reverse_mask >> (i % 32) & 1 == 1 {
                run.reverse();
            }
            v.extend(run);
        }
        let expect = sorted_copy(&v);
        timsort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn insertion_sorts_small(mut v in pvec(any::<u64>(), 0..200)) {
        let expect = sorted_copy(&v);
        insertion_sort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn binary_insertion_respects_sorted_prefix(
        mut prefix in pvec(any::<u64>(), 0..100),
        suffix in pvec(any::<u64>(), 0..100),
    ) {
        prefix.sort();
        let sorted_len = prefix.len();
        let mut v = prefix;
        v.extend(suffix);
        let expect = sorted_copy(&v);
        binary_insertion_sort(&mut v, sorted_len);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn radix_matches_std(v in pvec(any::<u64>(), 0..2000)) {
        let expect = sorted_copy(&v);
        let mut got = v;
        radix_sort(&mut got);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn bitonic_matches_std(v in pvec(any::<u64>(), 0..600)) {
        let expect = sorted_copy(&v);
        let mut got = v;
        bitonic_sort_padded(&mut got, u64::MAX);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn ssssort_matches_std(v in pvec(any::<u64>(), 0..4000)) {
        let expect = sorted_copy(&v);
        prop_assert_eq!(super_scalar_sample_sort(v), expect);
    }

    #[test]
    fn ssssort_heavy_duplicates(v in pvec(0u64..3, 0..4000)) {
        let expect = sorted_copy(&v);
        prop_assert_eq!(super_scalar_sample_sort(v), expect);
    }

    #[test]
    fn ipssort_matches_std(mut v in pvec(any::<u64>(), 0..6000)) {
        let expect = sorted_copy(&v);
        in_place_sample_sort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn ipssort_heavy_duplicates(mut v in pvec(0u64..3, 0..6000)) {
        let expect = sorted_copy(&v);
        in_place_sample_sort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn ipssort_parallel_matches_std(
        mut v in pvec(any::<u64>(), 0..8000),
        workers in 1usize..9,
    ) {
        let expect = sorted_copy(&v);
        in_place_sample_sort_par(&mut v, workers);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn radix_scratch_matches_std(v in pvec(any::<u64>(), 0..2000)) {
        let expect = sorted_copy(&v);
        let mut got = v;
        let mut scratch = Vec::new();
        radix_sort_with_scratch(&mut got, &mut scratch);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn radix_slice_leaves_surroundings(
        head in pvec(any::<u64>(), 0..50),
        mid in pvec(any::<u64>(), 0..500),
        tail in pvec(any::<u64>(), 0..50),
    ) {
        let mut v = head.clone();
        v.extend(&mid);
        v.extend(&tail);
        let expect_mid = sorted_copy(&mid);
        let (h, t) = (head.len(), head.len() + mid.len());
        radix_sort(&mut v[h..t]);
        prop_assert_eq!(&v[..h], &head[..]);
        prop_assert_eq!(&v[h..t], &expect_mid[..]);
        prop_assert_eq!(&v[t..], &tail[..]);
    }

    #[test]
    fn radix_dispatch_parallel_matches_std(
        v in pvec(any::<i64>(), 0..5000),
        workers in 1usize..9,
    ) {
        prop_assert!(<i64 as RadixDispatch>::radix_capable());
        let mut expect = v.clone();
        expect.sort_unstable();
        let got = try_parallel_radix_sort(v, workers).unwrap();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn kway_merge_into_matches_kway_merge(mut runs in pvec(pvec(any::<u64>(), 0..200), 0..10)) {
        for r in &mut runs {
            r.sort();
        }
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let expect = kway_merge(&refs);
        let mut out = vec![0u64; expect.len()];
        kway_merge_into(&refs, &mut out);
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn multiway_split_plan_invariants(
        mut runs in pvec(pvec(any::<u64>(), 0..400), 1..8),
        parts in 1usize..9,
    ) {
        for r in &mut runs {
            r.sort();
        }
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let rows = plan_multiway_splits(&refs, parts);
        prop_assert_eq!(rows.len(), parts + 1);
        prop_assert_eq!(&rows[0], &vec![0usize; refs.len()]);
        let lens: Vec<usize> = refs.iter().map(|r| r.len()).collect();
        prop_assert_eq!(&rows[parts], &lens);
        for i in 0..parts {
            for (lo, hi) in rows[i].iter().zip(&rows[i + 1]) {
                prop_assert!(lo <= hi);
            }
            let part_max = (0..refs.len())
                .filter(|&j| rows[i + 1][j] > rows[i][j])
                .map(|j| refs[j][rows[i + 1][j] - 1])
                .max();
            if i + 1 < parts {
                let next_min = (0..refs.len())
                    .filter(|&j| rows[i + 2][j] > rows[i + 1][j])
                    .map(|j| refs[j][rows[i + 1][j]])
                    .min();
                if let (Some(mx), Some(mn)) = (part_max, next_min) {
                    prop_assert!(mx <= mn);
                }
            }
        }
    }

    #[test]
    fn parallel_kway_matches_std(
        mut runs in pvec(pvec(any::<u64>(), 0..600), 0..8),
        workers in 1usize..6,
    ) {
        for r in &mut runs {
            r.sort();
        }
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
        expect.sort();
        let mut out = vec![0u64; expect.len()];
        parallel_kway_merge_into(&refs, &mut out, workers);
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn ssssort_scratch_matches_vec_api(v in pvec(any::<u64>(), 0..4000)) {
        let expect = sorted_copy(&v);
        let mut got = v;
        let mut scratch = Vec::new();
        super_scalar_sample_sort_with_scratch(&mut got, &mut scratch);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn parallel_quicksort_matches_std(
        v in pvec(any::<u64>(), 0..3000),
        workers in 1usize..9,
    ) {
        let expect = sorted_copy(&v);
        prop_assert_eq!(parallel_quicksort(v, workers), expect);
    }

    #[test]
    fn merge_into_merges(mut a in pvec(any::<u64>(), 0..500), mut b in pvec(any::<u64>(), 0..500)) {
        a.sort();
        b.sort();
        let mut out = vec![0u64; a.len() + b.len()];
        merge_into(&a, &b, &mut out);
        let mut expect = a.clone();
        expect.extend(&b);
        expect.sort();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn parallel_merge_matches_sequential(
        mut a in pvec(any::<u64>(), 0..2000),
        mut b in pvec(any::<u64>(), 0..2000),
        workers in 1usize..8,
    ) {
        a.sort();
        b.sort();
        let mut seq = vec![0u64; a.len() + b.len()];
        merge_into(&a, &b, &mut seq);
        let mut par = vec![0u64; a.len() + b.len()];
        parallel_merge_into(&a, &b, &mut par, workers);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn balanced_merge_of_sorted_runs(
        mut runs in pvec(pvec(any::<u64>(), 0..300), 1..12),
        workers in 1usize..5,
    ) {
        for r in &mut runs {
            r.sort();
        }
        let mut bounds = vec![0usize];
        let mut data = Vec::new();
        for r in &runs {
            data.extend(r);
            bounds.push(data.len());
        }
        let expect = sorted_copy(&data);
        prop_assert_eq!(balanced_merge(data, &bounds, workers), expect);
    }

    #[test]
    fn sort_chunks_and_merge_matches_std(
        v in pvec(any::<u64>(), 0..3000),
        workers in 1usize..7,
    ) {
        let expect = sorted_copy(&v);
        let got = sort_chunks_and_merge(v, workers, |c| c.sort_unstable());
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn kway_merge_matches_std(mut runs in pvec(pvec(any::<u64>(), 0..200), 0..10)) {
        for r in &mut runs {
            r.sort();
        }
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
        expect.sort();
        prop_assert_eq!(kway_merge(&refs), expect);
    }

    #[test]
    fn kway_tagged_provenance_valid(mut runs in pvec(pvec(any::<u64>(), 0..100), 1..8)) {
        for r in &mut runs {
            r.sort();
        }
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let tagged = kway_merge_tagged(&refs);
        // Each output element exists in its claimed source run, consumed
        // in order.
        let mut cursors = vec![0usize; runs.len()];
        for (value, src) in tagged {
            prop_assert_eq!(runs[src][cursors[src]], value);
            cursors[src] += 1;
        }
        for (src, c) in cursors.iter().enumerate() {
            prop_assert_eq!(*c, runs[src].len());
        }
    }

    #[test]
    fn gallops_match_bounds(mut v in pvec(0u64..100, 0..400), key in 0u64..110) {
        v.sort();
        prop_assert_eq!(gallop_left(&key, &v), lower_bound(&v, &key));
        prop_assert_eq!(gallop_right(&key, &v), upper_bound(&v, &key));
    }

    #[test]
    fn bounds_match_partition_point(mut v in pvec(0u64..50, 0..300), key in 0u64..55) {
        v.sort();
        prop_assert_eq!(lower_bound(&v, &key), v.partition_point(|&x| x < key));
        prop_assert_eq!(upper_bound(&v, &key), v.partition_point(|&x| x <= key));
    }

    #[test]
    fn compare_split_is_order_preserving(
        mut a in pvec(any::<u64>(), 0..300),
        mut b in pvec(any::<u64>(), 0..300),
    ) {
        a.sort();
        b.sort();
        let (lo, hi) = compare_split(&a, &b);
        prop_assert_eq!(lo.len(), a.len());
        prop_assert_eq!(hi.len(), b.len());
        // Partitioned: everything low <= everything high.
        if let (Some(&lmax), Some(&hmin)) = (lo.last(), hi.first()) {
            prop_assert!(lmax <= hmin);
        }
        // Multiset preserved.
        let mut merged: Vec<u64> = lo.into_iter().chain(hi).collect();
        let mut expect: Vec<u64> = a.into_iter().chain(b).collect();
        merged.sort();
        expect.sort();
        prop_assert_eq!(merged, expect);
    }

    #[test]
    fn timsort_stability(v in pvec(0u32..16, 0..1500)) {
        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        struct Tagged(u32, u32);
        impl PartialOrd for Tagged {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Tagged {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.cmp(&o.0)
            }
        }
        let mut tagged: Vec<Tagged> = v
            .iter()
            .enumerate()
            .map(|(i, &k)| Tagged(k, i as u32))
            .collect();
        timsort(&mut tagged);
        for w in tagged.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }
}
