//! Fixture corpus assertions: each should-fail fixture produces exactly
//! the expected findings (file:line), and each should-pass fixture comes
//! back clean.

use pgxd_analyze::{analyze_sources, Report};

fn run(name: &str, src: &str, allow: &str) -> Report {
    analyze_sources(&[(name.to_string(), src.to_string())], allow, "analyze.allow")
}

#[test]
fn lock_cycle_across_two_fns() {
    let src = include_str!("fixtures/fail_lock_cycle.rs");
    let r = run("fail_lock_cycle.rs", src, "");
    assert!(!r.is_clean());
    assert_eq!(
        r.cycles,
        [[
            "InjCyclePool::inj_ring",
            "InjCyclePool::inj_slab",
            "InjCyclePool::inj_ring"
        ]]
    );

    let mut sites: Vec<(String, usize, String)> = r
        .findings
        .iter()
        .filter(|f| f.rule == "blocking-under-lock")
        .map(|f| (f.file.clone(), f.line, f.operation.clone()))
        .collect();
    sites.sort();
    assert_eq!(
        sites,
        [
            ("fail_lock_cycle.rs".to_string(), 16, "lock(InjCyclePool::inj_slab)".to_string()),
            ("fail_lock_cycle.rs".to_string(), 22, "lock(InjCyclePool::inj_ring)".to_string()),
        ]
    );

    let cycle = r
        .findings
        .iter()
        .find(|f| f.rule == "lock-order")
        .expect("cycle finding");
    assert!(cycle.message.contains("InjCyclePool::inj_ring -> InjCyclePool::inj_slab"));
    // The provenance chain names both closing edges with file:line.
    assert!(cycle.chain.iter().any(|s| s.contains("fail_lock_cycle.rs:16")), "{:?}", cycle.chain);
    assert!(cycle.chain.iter().any(|s| s.contains("fail_lock_cycle.rs:22")), "{:?}", cycle.chain);
}

#[test]
fn blocking_recv_through_helper() {
    let src = include_str!("fixtures/fail_blocking_recv.rs");
    let r = run("fail_blocking_recv.rs", src, "");
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, "blocking-under-lock");
    assert_eq!((f.file.as_str(), f.line), ("fail_blocking_recv.rs", 9));
    assert_eq!(f.operation, "recv");
    assert_eq!(f.held.as_deref(), Some("InjDrain::inj_state"));
    assert_eq!(f.chain, ["InjDrain::pump"]);
    assert!(r.cycles.is_empty());
}

#[test]
fn allowlisted_site_passes_and_entry_is_not_stale() {
    let src = include_str!("fixtures/pass_allowlisted.rs");
    // Without the entry: one finding.
    let bare = run("pass_allowlisted.rs", src, "");
    assert_eq!(bare.findings.len(), 1);
    assert_eq!(bare.findings[0].operation, "send");
    let key = bare.findings[0].key();
    assert_eq!(
        key,
        "blocking-under-lock | pass_allowlisted.rs | InjFlusher::flush | InjFlusher::inj_state | send"
    );
    // With a justified entry: clean, finding moved to `allowlisted`.
    let allow = format!("# the flush channel is unbounded; send cannot block\n{key}\n");
    let r = run("pass_allowlisted.rs", src, &allow);
    assert!(r.is_clean(), "{:?}", r.findings);
    assert_eq!(r.allowlisted.len(), 1);
}

#[test]
fn block_scoped_guards_do_not_leak() {
    let src = include_str!("fixtures/pass_block_scoped.rs");
    let r = run("pass_block_scoped.rs", src, "");
    assert!(r.is_clean(), "{:?}", r.findings);
    assert!(r.graph_edges.is_empty());
}

#[test]
fn custody_leak_on_early_return() {
    let src = include_str!("fixtures/fail_custody_leak.rs");
    let r = run("fail_custody_leak.rs", src, "");
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, "chunk-custody");
    assert_eq!((f.file.as_str(), f.line), ("fail_custody_leak.rs", 16));
    assert_eq!(f.operation, "leak(buf)");
    assert_eq!(f.function, "InjLeaker::fill");
    // Chain ties the escaping return back to the acquire site.
    assert!(f.chain.iter().any(|c| c.contains("acquired at fail_custody_leak.rs:14")), "{:?}", f.chain);
    assert!(f.chain.iter().any(|c| c.contains("escapes at fail_custody_leak.rs:16")), "{:?}", f.chain);

    // Leaks are structural bugs: an allowlist entry must NOT silence one.
    let allow = format!("# cannot happen\n{}\n", f.key());
    let still = run("fail_custody_leak.rs", src, &allow);
    assert!(still.findings.iter().any(|f| f.operation == "leak(buf)"), "{:?}", still.findings);
}

#[test]
fn custody_double_release_on_one_path() {
    let src = include_str!("fixtures/fail_custody_double_release.rs");
    let r = run("fail_custody_double_release.rs", src, "");
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, "chunk-custody");
    assert_eq!((f.file.as_str(), f.line), ("fail_custody_double_release.rs", 15));
    assert_eq!(f.operation, "double-release(buf)");
    assert!(f.chain.iter().any(|c| c.contains("first release at fail_custody_double_release.rs:14")), "{:?}", f.chain);
    assert!(f.chain.iter().any(|c| c.contains("second release at fail_custody_double_release.rs:15")), "{:?}", f.chain);
}

#[test]
fn asymmetric_barrier_entry_names_the_branch() {
    let src = include_str!("fixtures/fail_barrier_asym.rs");
    let r = run("fail_barrier_asym.rs", src, "");
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, "wait-graph");
    assert_eq!(f.operation, "asymmetric-barrier");
    // Line 17 is the barrier call; the chain carries the branch at 16.
    assert_eq!((f.file.as_str(), f.line), ("fail_barrier_asym.rs", 17));
    assert_eq!(f.chain, ["branch at fail_barrier_asym.rs:16"]);
    // The barrier site itself still lands in the wait-op inventory.
    assert!(r.wait_ops.iter().any(|o| o.line == 17), "{:?}", r.wait_ops);
}

#[test]
fn relaxed_seqlock_publication_is_flagged() {
    let src = include_str!("fixtures/fail_relaxed_seqlock.rs");
    let r = run("fail_relaxed_seqlock.rs", src, "");
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, "atomics-ordering");
    assert_eq!((f.file.as_str(), f.line), ("fail_relaxed_seqlock.rs", 15));
    assert_eq!(f.operation, "store(Relaxed)");
    assert!(f.message.contains("inj_payload.store"), "{}", f.message);
    // The Release version bump on line 16 is fine.
    assert!(!r.findings.iter().any(|f| f.line == 16));
}

#[test]
fn aliased_use_fixture_parses_to_banned_paths() {
    // The xtask lint owns the banning policy; here we assert the parsing
    // layer it builds on sees through the renames.
    let src = include_str!("fixtures/fail_aliased_use.rs");
    let pf = pgxd_analyze::parse_file("fail_aliased_use.rs", src);
    let got: Vec<(usize, &str, &str)> = pf
        .uses
        .iter()
        .map(|u| (u.line, u.path.as_str(), u.name.as_str()))
        .collect();
    assert_eq!(
        got,
        [
            (7, "std::sync::Mutex", "InjStdMutex"),
            (8, "std::sync::mpsc", "inj_chan"),
            (8, "std::sync::RwLock", "InjRw"),
        ]
    );
}

#[test]
fn hotpath_alloc_chain_names_every_hop() {
    let src = include_str!("fixtures/fail_hotpath_alloc_chain.rs");
    let r = run("fail_hotpath_alloc_chain.rs", src, "");
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, "hot-path-alloc");
    assert_eq!((f.file.as_str(), f.line), ("fail_hotpath_alloc_chain.rs", 21));
    assert_eq!(f.operation, "alloc(to_vec)");
    assert_eq!(f.function, "InjShipper::inj_pack");
    // Root-to-site provenance: the step region, then each call hop.
    assert!(f.chain[0].contains("step:exchange"), "{:?}", f.chain);
    assert_eq!(
        f.chain[1..],
        ["InjShipper::inj_ship".to_string(), "InjShipper::inj_pack".to_string()]
    );
    // The region itself lands in the inventory.
    assert!(
        r.hot_regions.iter().any(|h| h.name == "step:exchange" && h.line == 11),
        "{:?}",
        r.hot_regions
    );
}

#[test]
fn hotpath_setup_alloc_is_clean() {
    let src = include_str!("fixtures/pass_hotpath_setup_alloc.rs");
    let r = run("pass_hotpath_setup_alloc.rs", src, "");
    assert!(r.is_clean(), "{:?}", r.findings);
    // The kernel root is inventoried even though nothing is flagged.
    assert!(r.hot_regions.iter().any(|h| h.name.contains("hot_kernel")), "{:?}", r.hot_regions);
}

#[test]
fn loop_invariant_acquire_is_flagged_and_allowlistable() {
    let src = include_str!("fixtures/fail_loop_invariant_acquire.rs");
    let r = run("fail_loop_invariant_acquire.rs", src, "");
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, "loop-discipline");
    assert_eq!((f.file.as_str(), f.line), ("fail_loop_invariant_acquire.rs", 9));
    assert_eq!(f.operation, "loop-invariant-acquire(lock:self.table)");
    // Unlike unbounded growth, a justified allowlist entry DOES cover
    // an invariant acquire — hold-time trades can be deliberate.
    let allow = format!("# re-acquire bounds hold time on purpose\n{}\n", f.key());
    let r2 = run("fail_loop_invariant_acquire.rs", src, &allow);
    assert!(r2.is_clean(), "{:?}", r2.findings);
    assert_eq!(r2.allowlisted.len(), 1);
}

#[test]
fn unbounded_recv_push_cannot_be_silenced() {
    let src = include_str!("fixtures/fail_unbounded_recv_push.rs");
    // The fixture carries an inline allow marker on the push line; it
    // must not cover structural growth.
    let r = run("fail_unbounded_recv_push.rs", src, "");
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, "loop-discipline");
    assert_eq!((f.file.as_str(), f.line), ("fail_unbounded_recv_push.rs", 12));
    assert_eq!(f.operation, "unbounded-growth(push:self.backlog)");
    assert!(f.chain[0].contains("fail_unbounded_recv_push.rs:9"), "{:?}", f.chain);
    // An analyze.allow entry must not silence it either.
    let allow = format!("# cannot happen\n{}\n", f.key());
    let still = run("fail_unbounded_recv_push.rs", src, &allow);
    assert!(
        still.findings.iter().any(|f| f.operation.starts_with("unbounded-growth(")),
        "{:?}",
        still.findings
    );
}

#[test]
fn hashmap_iteration_in_fault_decision_is_flagged() {
    let src = include_str!("fixtures/fail_hashmap_fault_decision.rs");
    let r = run("fail_hashmap_fault_decision.rs", src, "");
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, "determinism");
    assert_eq!((f.file.as_str(), f.line), ("fail_hashmap_fault_decision.rs", 8));
    assert_eq!(f.operation, "hashmap-iteration(pending)");
    assert_eq!(f.function, "InjFaultPlan::inj_arm");
    // The source inventory carries the site too.
    assert!(
        r.nondet_sources.iter().any(|s| s.kind == "hashmap-iteration" && s.line == 8),
        "{:?}",
        r.nondet_sources
    );
}

#[test]
fn instant_now_in_ordered_output_is_flagged() {
    let src = include_str!("fixtures/fail_instant_ordered_output.rs");
    let r = run("fail_instant_ordered_output.rs", src, "");
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, "determinism");
    assert_eq!((f.file.as_str(), f.line), ("fail_instant_ordered_output.rs", 7));
    assert_eq!(f.operation, "instant-now(Instant)");
    // Annotating keeps the finding out but the inventory entry in.
    let annotated = src.replace(
        "        let t = Instant::now();",
        "        // analyze: allow(determinism): test-only fixture reason\n        let t = Instant::now();",
    );
    let ok = run("fail_instant_ordered_output.rs", &annotated, "");
    assert!(ok.is_clean(), "{:?}", ok.findings);
    assert_eq!(ok.nondet_sources.len(), 1);
}
