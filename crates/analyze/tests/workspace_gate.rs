//! The analyzer gate over the real workspace, plus the regression guard
//! for the PR 3 review race: `ChunkPool::acquire`/`release` may touch the
//! checker ledger while a shard guard is held (that ordering is the fix),
//! but must never reach a communication or barrier primitive from inside
//! the critical section.

use std::path::Path;

use pgxd_analyze::analyze_workspace;

fn root() -> &'static Path {
    // crates/analyze -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

#[test]
fn workspace_is_clean_and_acyclic() {
    let r = analyze_workspace(root()).expect("workspace sources readable");
    assert!(
        r.is_clean(),
        "analyzer findings on the workspace:\n{}",
        pgxd_analyze::render_human(&r)
    );
    assert!(r.cycles.is_empty());
    // The canonical order is a DAG rooted at the pool shard locks.
    assert!(r.graph_nodes.contains(&"ChunkPool::shards".to_string()));
}

/// The fixed ordering from the PR 3 review: ledger hooks run inside the
/// shard critical section — and nothing else does. Every operation the
/// allowlist admits under a shard guard is a leaf lock acquisition; if a
/// send/recv/wait/join/acquire ever becomes reachable there, this fails
/// even if someone allowlists it.
#[test]
fn pool_critical_sections_never_block_on_comm_or_barriers() {
    let r = analyze_workspace(root()).expect("workspace sources readable");
    for f in r.findings.iter().chain(r.allowlisted.iter()) {
        if f.held.as_deref() == Some("ChunkPool::shards") {
            assert!(
                f.operation.starts_with("lock("),
                "blocking primitive `{}` reachable under a shard guard at {}:{} (via {:?})",
                f.operation,
                f.file,
                f.line,
                f.chain
            );
            assert!(
                !f.chain.iter().any(|c| c.contains("CommSender") || c.contains("barrier")),
                "pool critical section reaches comm/barrier code: {:?}",
                f.chain
            );
        }
    }
    // The ordering itself: the ledger hooks ARE under the shard guard
    // (regression guard for the custody race — if someone "fixes" the
    // analyzer findings by moving them back outside, this fails).
    let keys: Vec<String> = r.allowlisted.iter().map(|f| f.key()).collect();
    for expected in [
        "blocking-under-lock | crates/pgxd/src/pool.rs | ChunkPool::acquire | ChunkPool::shards | lock(ProtocolChecker::ledger)",
        "blocking-under-lock | crates/pgxd/src/pool.rs | ChunkPool::acquire | ChunkPool::shards | lock(ChunkPool::known_caps)",
        "blocking-under-lock | crates/pgxd/src/pool.rs | ChunkPool::release_impl | ChunkPool::shards | lock(ProtocolChecker::ledger)",
        "blocking-under-lock | crates/pgxd/src/pool.rs | ChunkPool::drop | ChunkPool::shards | lock(ProtocolChecker::ledger)",
    ] {
        assert!(
            keys.contains(&expected.to_string()),
            "expected allowlisted hook missing: {expected}\nhave: {keys:#?}"
        );
    }
}

/// The v2 inventories over the real tree: if a refactor renames the sort
/// drivers or the pool entry points out of the analyzer's sight, the new
/// passes silently go blind — this pins the coverage floor.
#[test]
fn v2_inventories_cover_the_runtime() {
    let r = analyze_workspace(root()).expect("workspace sources readable");
    // Wait-graph: the cluster barrier and the exchange send/recv sites
    // are all visible.
    assert!(
        r.wait_ops.iter().any(|o| o.file.ends_with("machine.rs") && o.callee == "wait"),
        "{:?}",
        r.wait_ops
    );
    assert!(r.wait_ops.iter().any(|o| o.callee.starts_with("send_")));
    assert!(r.wait_ops.iter().any(|o| o.callee.starts_with("recv_")));
    // Both §IV drivers traverse the full step sequence in order.
    for f in ["DistSorter::sort_batch", "DistSorter::sort_impl"] {
        let seq: Vec<(&str, &str)> = r
            .step_edges
            .iter()
            .filter(|e| e.function == f)
            .map(|e| (e.from.as_str(), e.to.as_str()))
            .collect();
        assert_eq!(
            seq,
            [
                ("local_sort", "sampling"),
                ("sampling", "splitters"),
                ("splitters", "partition"),
                ("partition", "exchange"),
                ("exchange", "final_merge"),
            ],
            "step sequence drifted for {f}"
        );
    }
    // Custody: the pooled local-sort buffer is tracked through the
    // custody-returning driver into both callers.
    assert!(r.custody.custody_fns.iter().any(|f| f == "run_local_sort"), "{:?}", r.custody);
    assert!(r.custody.acquire_sites >= 3, "{:?}", r.custody);
    assert!(r.custody.tracked_bindings >= r.custody.acquire_sites, "{:?}", r.custody);
}

/// The canonical acquisition order documented in DESIGN.md, checked
/// structurally: every edge goes forward in the order, so the graph cannot
/// have a cycle among the named runtime locks.
#[test]
fn canonical_lock_order_holds() {
    let order = [
        "ChunkPool::shards",
        "ChunkPool::known_caps",
        "ProtocolChecker::ledger",
        "ProtocolChecker::traces",
        "NameTable::names",
    ];
    let rank = |n: &str| order.iter().position(|o| *o == n);
    let r = analyze_workspace(root()).expect("workspace sources readable");
    for e in &r.graph_edges {
        if let (Some(a), Some(b)) = (rank(&e.from), rank(&e.to)) {
            assert!(
                a < b,
                "edge {} -> {} at {}:{} violates the canonical order",
                e.from,
                e.to,
                e.file,
                e.line
            );
        }
    }
}

/// The v3 inventories over the real tree: hot regions, loop sites, and
/// nondeterminism sources must keep covering the runtime. If a rename
/// moves the §IV steps, the fabric surface, or the replay-critical
/// wall-clock reads out of the analyzer's sight, these floors fail
/// before the passes silently go blind.
#[test]
fn v3_inventories_cover_the_runtime() {
    let r = analyze_workspace(root()).expect("workspace sources readable");
    // Both §IV drivers contribute one hot region per step: 6 names × 2.
    let steps: Vec<&str> = r
        .hot_regions
        .iter()
        .filter(|h| h.kind == "step")
        .map(|h| h.name.as_str())
        .collect();
    assert_eq!(steps.len(), 12, "{steps:?}");
    for name in [
        "step:local_sort",
        "step:sampling",
        "step:splitters",
        "step:partition",
        "step:exchange",
        "step:final_merge",
    ] {
        assert_eq!(steps.iter().filter(|s| **s == name).count(), 2, "{steps:?}");
    }
    // Every root class is populated: the sort kernels, the fabric
    // send/recv surface, and the always-on emit paths.
    for kind in ["kernel", "fabric", "exchange", "metrics-emit", "trace-emit"] {
        assert!(r.hot_regions.iter().any(|h| h.kind == kind), "no {kind} roots: {:?}", r.hot_regions);
    }
    // The fabric's receive pumps are inventoried as recv-loops.
    assert!(
        r.loop_sites.iter().any(|s| s.file.ends_with("comm.rs") && s.kind == "recv-loop"),
        "{:?}",
        r.loop_sites
    );
    // The barrier-timeout wall-clock reads are annotated (so not
    // findings — the workspace is clean) but stay in the audit
    // inventory: determinism sources never disappear behind a marker.
    let fault_instants = r
        .nondet_sources
        .iter()
        .filter(|s| s.file.ends_with("fault.rs") && s.kind == "instant-now")
        .count();
    assert!(fault_instants >= 2, "{:?}", r.nondet_sources);
}
