//! Should-fail fixture: a lock-order cycle split across two functions.
//!
//! `flush_side` takes `ring` then calls `refill`, which takes `slab` and
//! calls back into `admit_side`, which takes `ring` again — so the
//! interprocedural held-lock graph contains `ring -> slab -> ring`.
//! Expected findings: two `blocking-under-lock` acquires (the call sites
//! at lines 16 and 22) and one `lock-order` cycle.
//!
//! This file is never compiled; it exists to be scanned (both by the
//! integration tests and by the CI injected-violation step, which copies
//! it into `crates/pgxd/src` and asserts `cargo xtask check` fails).

impl InjCyclePool {
    fn flush_side(&self) {
        let ring = self.inj_ring.lock();
        self.refill();
        drop(ring);
    }

    fn refill(&self) {
        let slab = self.inj_slab.lock();
        self.admit_side();
        drop(slab);
    }

    fn admit_side(&self) {
        let ring = self.inj_ring.lock();
        drop(ring);
    }
}
