//! Should-pass fixture: every blocking call happens after the guard is
//! gone — a same-depth `drop`, a statement temporary ending at its `;`,
//! and a block-scoped guard whose brace closes before the receive.

impl InjScoped {
    fn drop_then_recv(&self) {
        let state = self.inj_state.lock();
        state.touch();
        drop(state);
        self.inj_rx.recv();
    }

    fn temp_then_recv(&self) {
        self.inj_state.lock().touch();
        self.inj_rx.recv();
    }

    fn block_then_recv(&self) {
        {
            let state = self.inj_state.lock();
            state.touch();
        }
        self.inj_rx.recv();
    }
}
