//! Should-fail fixture: a wall-clock read stamps output that replay
//! compares across runs — the timestamps can never match.
// analyze: scope(determinism)

impl InjStamper {
    fn inj_stamp(&mut self) -> u64 {
        let t = Instant::now();
        self.seq.push(t);
        t.elapsed().as_nanos() as u64
    }
}
