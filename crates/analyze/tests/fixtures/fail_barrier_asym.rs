//! Should-fail fixture: only the master's arm reaches the barrier.
//!
//! `sync_round` enters the cluster barrier on the master arm but skips
//! it on the worker arm; with a data-dependent condition every other
//! machine deadlocks waiting for the worker that never arrives. The
//! wait-graph pass must flag the barrier site with the branch line.
//!
//! This file is never compiled; it exists to be scanned (both by the
//! integration tests and by the CI injected-violation step, which copies
//! it into `crates/pgxd/src` and asserts `cargo xtask check` fails).

// analyze: scope(wait-graph)

impl InjAsymSync {
    fn sync_round(&self, is_master: bool) {
        if is_master {
            self.barrier.wait();
        } else {
            self.tally();
        }
    }
}
