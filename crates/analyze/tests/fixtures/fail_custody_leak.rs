//! Should-fail fixture: a pooled chunk leaks on an early return.
//!
//! `fill` acquires a chunk from the pool, then bails out on the empty
//! input before either releasing or handing it off — the chunk-custody
//! dataflow pass must report the escape at the `return` with a chain
//! back to the acquire site.
//!
//! This file is never compiled; it exists to be scanned (both by the
//! integration tests and by the CI injected-violation step, which copies
//! it into `crates/pgxd/src` and asserts `cargo xtask check` fails).

impl InjLeaker {
    fn fill(&self, n: usize) -> bool {
        let buf = self.inj_pool.acquire::<u64>(n);
        if n == 0 {
            return false;
        }
        self.inj_pool.release(buf);
        true
    }
}
