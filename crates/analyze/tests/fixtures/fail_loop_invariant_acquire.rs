//! Should-fail fixture: the table lock depends on none of the loop's
//! variant identifiers — it belongs outside the `for`.
// analyze: scope(loop-discipline)

impl InjScanner {
    fn inj_scan(&self, n: usize) -> u64 {
        let mut total = 0;
        for i in 0..n {
            let g = self.table.lock();
            total += g.get(i).copied().unwrap_or(0);
        }
        total
    }
}
