//! Should-fail fixture: the same pooled chunk is released twice.
//!
//! `drain` acquires one chunk and hands it to `release` twice on the
//! same straight-line path — the second release hands the pool a buffer
//! it already owns, aliasing whoever reacquired it in between.
//!
//! This file is never compiled; it exists to be scanned (both by the
//! integration tests and by the CI injected-violation step, which copies
//! it into `crates/pgxd/src` and asserts `cargo xtask check` fails).

impl InjDoubleFree {
    fn drain(&self, n: usize) {
        let buf = self.inj_pool.acquire::<u64>(n);
        self.inj_pool.release(buf);
        self.inj_pool.release(buf);
    }
}
