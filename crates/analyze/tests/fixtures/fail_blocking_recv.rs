//! Should-fail fixture: a blocking channel receive reached while a guard
//! is live, through a helper call — the exact shape the intraprocedural
//! lint cannot see. Expected finding: `recv` under `InjDrain::inj_state`
//! at the call site on line 9, with chain `InjDrain::pump`.

impl InjDrain {
    fn drain_one(&self) {
        let state = self.inj_state.lock();
        self.pump();
        drop(state);
    }

    fn pump(&self) {
        self.inj_rx.recv();
    }
}
