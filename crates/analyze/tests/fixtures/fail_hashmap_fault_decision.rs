//! Should-fail fixture: HashMap iteration order decides which fault
//! fires first — replay would reorder deliveries between runs.
// analyze: scope(determinism)

impl InjFaultPlan {
    fn inj_arm(&mut self) {
        let pending: HashMap<u64, InjFault> = self.take_pending();
        for (id, f) in &pending {
            self.deliver(*id, f);
        }
    }
}
