//! Should-fail fixture: packets accumulate in a receive loop with no
//! drain, break, or escape. The inline marker below must NOT silence
//! it, and neither may an `analyze.allow` entry — unbounded growth in a
//! pump loop is a structural leak, never a judgment call.
// analyze: scope(loop-discipline)

impl InjPump {
    fn inj_pump(&mut self) {
        loop {
            let pkt = self.rx.recv_packet();
            // analyze: allow(loop-discipline): bounded upstream (it is not)
            self.backlog.push(pkt);
        }
    }
}
