//! Should-pass fixture (with the matching allowlist): a blocking send
//! under a guard that the test suppresses via an `analyze.allow` entry,
//! proving key-based matching and the stale-entry check.

impl InjFlusher {
    fn flush(&self) {
        let state = self.inj_state.lock();
        self.inj_tx.send(1);
        drop(state);
    }
}
