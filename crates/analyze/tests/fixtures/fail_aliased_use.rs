//! Should-fail fixture for the xtask sync-shim lint: renamed imports of
//! banned primitives. The literal-path rule cannot see these — the
//! use-declaration tracker must. Expected findings: the renamed bindings
//! (lines 7–8) and the aliased usage sites (lines 11–13).

mod inj_aliased {
    use std::sync::Mutex as InjStdMutex;
    use std::sync::{mpsc as inj_chan, RwLock as InjRw};

    fn build() {
        let _rw = InjRw::new(0u32);
        let _m = InjStdMutex::new(0u32);
        let (_tx, _rx) = inj_chan::channel::<u8>();
    }
}
