//! Should-pass fixture: constructor allocations are setup, not steady
//! state — no hot region reaches them, so the pass stays quiet.
// analyze: scope(hot-path-alloc)

pub struct InjWarm {
    buf: Vec<u64>,
    name: String,
}

impl InjWarm {
    fn new(n: usize) -> Self {
        InjWarm { buf: Vec::with_capacity(n), name: String::new() }
    }

    fn hot_kernel(&mut self) {
        self.buf.sort_unstable();
    }
}
