//! Should-fail fixture: a §IV step body reaches a `to_vec` two calls
//! deep — the full root-to-site chain must name every hop.
// analyze: scope(hot-path-alloc)

pub struct InjShipper {
    data: Vec<u8>,
}

impl InjShipper {
    fn inj_drive(&self, ctx: &Ctx) {
        ctx.step(steps::EXCHANGE, |c| {
            self.inj_ship(c);
        });
    }

    fn inj_ship(&self, c: &C) {
        self.inj_pack(c);
    }

    fn inj_pack(&self, _c: &C) {
        let copy = self.data.to_vec();
        drop(copy);
    }
}
