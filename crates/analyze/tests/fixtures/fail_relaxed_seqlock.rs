//! Should-fail fixture: seqlock publication with a `Relaxed` store.
//!
//! `publish` writes the payload with `Relaxed` before bumping the
//! version — readers can observe the new version without the payload,
//! which is exactly the reorder the seqlock discipline exists to stop.
//!
//! This file is never compiled; it exists to be scanned (both by the
//! integration tests and by the CI injected-violation step, which copies
//! it into `crates/pgxd/src` and asserts `cargo xtask check` fails).

// analyze: scope(atomics-ordering)

impl InjSeqCell {
    fn publish(&self, v: u64) {
        self.inj_payload.store(v, Ordering::Relaxed);
        self.inj_version.store(1, Ordering::Release);
    }
}
