//! Loop-discipline pass (`loop-discipline`, schema pgxd-analyze/3).
//!
//! Two rules about what a loop body may do, aimed at the ROADMAP's
//! multi-job service layer where today's one-shot loops become
//! long-lived pumps:
//!
//! * **loop-invariant-acquire** — a guard acquisition (`.lock()` /
//!   `.read()` / `.write()`) or a `ChunkPool`-style `.acquire(..)`
//!   inside a `for`/`while`/`loop` whose receiver chain and arguments
//!   mention none of the loop-variant identifiers (the loop pattern
//!   variables, the `while` condition identifiers, and `let` bindings
//!   made inside the body). Such an acquisition re-pays the lock or
//!   pool tax every iteration for the same object — hoist it, or
//!   annotate why it must stay (`analyze: allow(loop-discipline):
//!   <reason>`, panic-surface coverage rules, reason mandatory).
//!   Variance is judged against the *innermost* enclosing loop: an
//!   acquisition invariant there is hoistable out of at least that
//!   loop.
//!
//! * **unbounded-growth** — a `push`/`push_back`/`push_front`/
//!   `extend`/`insert`/`append` into a collection inside a recv/poll
//!   loop (a loop whose condition or body receives) with no bound in
//!   sight: no `return`/`break` leaving the loop (a bounded search or
//!   parked-delivery scan exits; a service pump does not) and no
//!   drain-class call (`pop*`/`remove`/`drain`/`clear`/`truncate`/
//!   `split_off`) on the *same* receiver chain inside the loop. This is
//!   the backpressure gate: such a loop falls behind its producer by
//!   allocating, which no allowlist entry or inline marker can excuse —
//!   like custody leaks, the fix is a bound or a drain, not a
//!   justification. `apply_allowlist` enforces that.
//!
//! Scope: every workspace file under `crates/` (the pass is cheap and
//! the rules are global), plus any file carrying an
//! `analyze: scope(loop-discipline)` comment (fixtures).
//!
//! Known approximations, documented here so nobody trusts the pass past
//! its design: closure parameters and `match`-arm bindings inside the
//! body are not collected as loop-variant; a `while` condition bounded
//! by a counter the body advances still counts as a recv loop (the
//! growth rule then wants the `return`/`break`/drain evidence); and
//! receiver identity is the textual chain, not an alias analysis.

use std::collections::HashSet;

use crate::analysis::{
    call_open_paren, is_ident, marker_allowed_lines, receiver_chain, receiver_chain_span,
};
use crate::items::{matching_brace, matching_paren, ParsedFile};
use crate::report::Finding;
use crate::waitgraph::body_open;

/// Marker pulling extra files (fixtures) into scope.
pub const SCOPE_MARKER: &str = "analyze: scope(loop-discipline)";

/// Inline escape hatch for loop-invariant-acquire only; unbounded
/// growth is never excusable.
pub const ALLOW_MARKER: &str = "analyze: allow(loop-discipline)";

/// Guard acquisitions checked for loop invariance.
const GUARD_CALLS: [&str; 3] = ["lock", "read", "write"];

/// Growth calls checked inside recv loops.
const GROWTH_CALLS: [&str; 6] = ["push", "push_back", "push_front", "extend", "insert", "append"];

/// Drain-class calls that bound growth on the same receiver.
const DRAIN_CALLS: [&str; 8] =
    ["pop", "pop_front", "pop_back", "remove", "drain", "clear", "truncate", "split_off"];

/// One inventoried loop: a recv/poll loop or a loop holding acquire
/// sites (a loop that is both appears once per kind).
#[derive(Debug, Clone)]
pub struct LoopSite {
    pub file: String,
    pub line: usize,
    pub function: String,
    /// `recv-loop` | `acquire-loop`.
    pub kind: String,
}

pub struct LoopDiscipline {
    pub findings: Vec<Finding>,
    pub sites: Vec<LoopSite>,
}

fn in_scope(pf: &ParsedFile) -> bool {
    pf.rel.starts_with("crates/")
        || pf.stripped.comments.iter().any(|c| c.contains(SCOPE_MARKER))
}

/// One loop inside a function body.
struct Loop {
    /// Token index of the loop keyword.
    kw: usize,
    /// Tokens of the condition / iterated expression (empty for `loop`).
    head: (usize, usize),
    /// Body token range (inside the braces).
    body: (usize, usize),
    /// Loop-variant identifiers.
    variant: HashSet<String>,
}

fn ident_set(pf: &ParsedFile, range: (usize, usize)) -> HashSet<String> {
    pf.toks[range.0..range.1]
        .iter()
        .filter(|t| is_ident(&t.text) || t.text == "self")
        .map(|t| t.text.clone())
        .collect()
}

/// Finds the loops in `body`, innermost included.
fn find_loops(pf: &ParsedFile, body: (usize, usize)) -> Vec<Loop> {
    let toks = &pf.toks;
    let mut out = Vec::new();
    let mut i = body.0;
    while i < body.1 {
        match toks[i].text.as_str() {
            "for" => {
                let Some(open) = body_open(pf, i + 1, body.1) else {
                    i += 1;
                    continue;
                };
                // `for PAT in EXPR {`: require the `in`; `for<'a>` bounds
                // have none.
                let Some(in_idx) = (i + 1..open).find(|&j| toks[j].text == "in") else {
                    i += 1;
                    continue;
                };
                let mut variant = ident_set(pf, (i + 1, in_idx));
                let lb = (open + 1, matching_brace(toks, open));
                variant.extend(let_bound(pf, lb));
                out.push(Loop { kw: i, head: (in_idx + 1, open), body: lb, variant });
                i += 1;
            }
            "while" => {
                let Some(open) = body_open(pf, i + 1, body.1) else {
                    i += 1;
                    continue;
                };
                // `while let PAT = EXPR {` binds PAT; a plain condition's
                // identifiers are all variant (the body advances them).
                let mut variant = ident_set(pf, (i + 1, open));
                let lb = (open + 1, matching_brace(toks, open));
                variant.extend(let_bound(pf, lb));
                out.push(Loop { kw: i, head: (i + 1, open), body: lb, variant });
                i += 1;
            }
            "loop" => {
                let Some(open) = body_open(pf, i + 1, body.1) else {
                    i += 1;
                    continue;
                };
                let lb = (open + 1, matching_brace(toks, open));
                let variant = let_bound(pf, lb);
                out.push(Loop { kw: i, head: (i, i), body: lb, variant });
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Identifiers bound by `let` statements inside `range`.
fn let_bound(pf: &ParsedFile, range: (usize, usize)) -> HashSet<String> {
    let toks = &pf.toks;
    let mut out = HashSet::new();
    let mut i = range.0;
    while i < range.1 {
        if toks[i].text == "let" {
            let mut j = i + 1;
            while j < range.1 && toks[j].text != "=" && toks[j].text != ";" {
                if is_ident(&toks[j].text) {
                    out.insert(toks[j].text.clone());
                }
                j += 1;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// The innermost loop (smallest body) containing token `i`, if any.
fn innermost<'a>(loops: &'a [Loop], i: usize) -> Option<&'a Loop> {
    loops
        .iter()
        .filter(|l| i >= l.body.0 && i < l.body.1)
        .min_by_key(|l| l.body.1 - l.body.0)
}

/// True when the method name receives from a channel / poll source.
fn is_recv_name(name: &str) -> bool {
    name.starts_with("recv") || name.starts_with("try_recv") || name.starts_with("poll")
}

/// Receiver key for growth/drain matching: the textual chain.
fn receiver_key(pf: &ParsedFile, dot: usize, start: usize) -> String {
    let (root, segs) = receiver_chain(pf, dot, start);
    if segs.is_empty() {
        root
    } else {
        format!("{root}.{}", segs.join("."))
    }
}

pub fn analyze_loops(files: &[ParsedFile]) -> LoopDiscipline {
    let mut findings = Vec::new();
    let mut sites = Vec::new();
    for pf in files {
        if !in_scope(pf) {
            continue;
        }
        let allowed = marker_allowed_lines(pf, ALLOW_MARKER);
        for f in &pf.functions {
            let loops = find_loops(pf, f.body);
            for l in &loops {
                // Classify the loop once for the inventory.
                let mut scan_names: Vec<(usize, String, usize)> = Vec::new(); // (dot, name, open)
                for i in l.head.0..l.head.1 {
                    collect_call(pf, i, l.head.1, &mut scan_names);
                }
                for i in l.body.0..l.body.1 {
                    collect_call(pf, i, l.body.1, &mut scan_names);
                }
                let is_recv_loop = scan_names.iter().any(|(_, n, _)| is_recv_name(n));
                let has_acquire =
                    scan_names.iter().any(|(dot, n, open)| is_acquire(pf, n, *dot, *open));
                if is_recv_loop {
                    sites.push(LoopSite {
                        file: pf.rel.clone(),
                        line: pf.toks[l.kw].line,
                        function: f.name.clone(),
                        kind: "recv-loop".into(),
                    });
                }
                if has_acquire {
                    sites.push(LoopSite {
                        file: pf.rel.clone(),
                        line: pf.toks[l.kw].line,
                        function: f.name.clone(),
                        kind: "acquire-loop".into(),
                    });
                }
            }

            // Rule 1: loop-invariant acquire, judged at the innermost
            // enclosing loop of each acquisition site.
            let mut i = f.body.0;
            while i < f.body.1 {
                let Some((name, open)) = method_call_at(pf, i, f.body.1) else {
                    i += 1;
                    continue;
                };
                if !is_acquire(pf, &name, i, open) {
                    i += 1;
                    continue;
                }
                let Some(l) = innermost(&loops, i) else {
                    i += 1;
                    continue;
                };
                let (root, segs, span) = receiver_chain_span(pf, i, f.body.0);
                let mut mentions: HashSet<String> = segs.into_iter().collect();
                mentions.insert(root);
                // The chain skips index brackets and nested call args, but
                // a loop variable there makes the acquisition variant
                // (`self.shards[(start + i) % N].lock()` is per-shard, not
                // re-acquired) — count every ident the receiver mentions.
                mentions.extend(ident_set(pf, (span, i)));
                if name == "acquire" {
                    let close = matching_paren(&pf.toks, open);
                    mentions.extend(ident_set(pf, (open + 1, close)));
                }
                let line = pf.toks[i].line;
                if mentions.is_disjoint(&l.variant) && !allowed.contains(&line) {
                    let key = receiver_key(pf, i, f.body.0);
                    findings.push(Finding {
                        rule: "loop-discipline".into(),
                        file: pf.rel.clone(),
                        line,
                        function: f.name.clone(),
                        held: None,
                        operation: format!("loop-invariant-acquire({name}:{key})"),
                        chain: vec![
                            format!("loop at {}:{}", pf.rel, pf.toks[l.kw].line),
                            format!("acquire at {}:{}", pf.rel, line),
                        ],
                        message: format!(
                            "`{key}.{name}(..)` re-acquired every iteration of the loop at {}:{} but depends on none of its loop-variant identifiers — hoist it, or annotate with `{ALLOW_MARKER}: <reason>`",
                            pf.rel,
                            pf.toks[l.kw].line
                        ),
                    });
                }
                i = open + 1;
            }

            // Rule 2: unbounded growth in recv loops. Never excusable.
            for l in &loops {
                let mut head_body_calls: Vec<(usize, String, usize)> = Vec::new();
                for i in l.head.0..l.head.1 {
                    collect_call(pf, i, l.head.1, &mut head_body_calls);
                }
                for i in l.body.0..l.body.1 {
                    collect_call(pf, i, l.body.1, &mut head_body_calls);
                }
                if !head_body_calls.iter().any(|(_, n, _)| is_recv_name(n)) {
                    continue;
                }
                let escapes = pf.toks[l.body.0..l.body.1]
                    .iter()
                    .any(|t| t.text == "return" || t.text == "break");
                if escapes {
                    continue;
                }
                let drained: HashSet<String> = head_body_calls
                    .iter()
                    .filter(|(_, n, _)| DRAIN_CALLS.contains(&n.as_str()))
                    .map(|(dot, _, _)| receiver_key(pf, *dot, f.body.0))
                    .collect();
                for (dot, name, _) in &head_body_calls {
                    if !GROWTH_CALLS.contains(&name.as_str()) {
                        continue;
                    }
                    let key = receiver_key(pf, *dot, f.body.0);
                    if drained.contains(&key) {
                        continue;
                    }
                    let line = pf.toks[*dot].line;
                    findings.push(Finding {
                        rule: "loop-discipline".into(),
                        file: pf.rel.clone(),
                        line,
                        function: f.name.clone(),
                        held: None,
                        operation: format!("unbounded-growth({name}:{key})"),
                        chain: vec![
                            format!("recv loop at {}:{}", pf.rel, pf.toks[l.kw].line),
                            format!("growth at {}:{}", pf.rel, line),
                        ],
                        message: format!(
                            "`{key}.{name}(..)` grows without bound inside the recv loop at {}:{} — no break/return and no drain on `{key}`; a service pump that allocates per message falls behind its producer. Add a bound or a drain; this finding cannot be allowlisted",
                            pf.rel,
                            pf.toks[l.kw].line
                        ),
                    });
                }
            }
        }
    }
    findings.sort_by_key(|f| f.sort_key());
    findings.dedup_by(|a, b| a.sort_key() == b.sort_key());
    sites.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.kind.as_str()).cmp(&(b.file.as_str(), b.line, b.kind.as_str()))
    });
    sites.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.kind == b.kind);
    LoopDiscipline { findings, sites }
}

/// `(name, open paren)` when token `i` is the `.` of a method call.
fn method_call_at(pf: &ParsedFile, i: usize, end: usize) -> Option<(String, usize)> {
    if pf.toks[i].text != "." || i + 2 >= end || !is_ident(&pf.toks[i + 1].text) {
        return None;
    }
    let open = call_open_paren(&pf.toks, i + 1)?;
    Some((pf.toks[i + 1].text.clone(), open))
}

/// Collects method-call sites into `out` (dot index, name, open paren).
fn collect_call(pf: &ParsedFile, i: usize, end: usize, out: &mut Vec<(usize, String, usize)>) {
    if let Some((name, open)) = method_call_at(pf, i, end) {
        out.push((i, name, open));
    }
}

/// True when the call is a guard acquisition (`.lock()`-style, empty
/// args) or a pool `.acquire(..)`.
fn is_acquire(pf: &ParsedFile, name: &str, _dot: usize, open: usize) -> bool {
    if name == "acquire" {
        return true;
    }
    GUARD_CALLS.contains(&name)
        && pf.toks.get(open + 1).map(|t| t.text.as_str()) == Some(")")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;

    fn run(src: &str) -> LoopDiscipline {
        let marked = format!("// analyze: scope(loop-discipline)\n{src}");
        analyze_loops(&[parse_file("t.rs", &marked)])
    }

    #[test]
    fn invariant_lock_in_for_loop_is_flagged() {
        let r = run(
            "impl S {\n    fn scan(&self, n: usize) -> u64 {\n        let mut total = 0;\n        for i in 0..n {\n            let g = self.state.lock();\n            total += g.get(i).copied().unwrap_or(0);\n        }\n        total\n    }\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "loop-invariant-acquire(lock:self.state)");
        assert_eq!(r.findings[0].line, 6);
    }

    #[test]
    fn variant_receiver_is_clean() {
        let r = run(
            "impl S { fn scan(&self) { for s in &self.shards { let g = s.lock(); g.touch(); } } }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn loop_variable_inside_index_brackets_is_variant() {
        // The chain skips `[..]`, but the loop variable in the index makes
        // this a per-shard acquisition, not a re-acquired invariant lock.
        let r = run(
            "impl S {\n    fn probe(&self, start: usize) {\n        for i in 0..N {\n            let g = self.shards[(start + i) % N].lock();\n            g.touch();\n        }\n    }\n}\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn chained_receiver_variance_uses_full_chain() {
        let r = run(
            "impl S {\n    fn deep(&self, n: usize) {\n        for i in 0..n {\n            let g = self.inner.table.lock();\n        }\n        for slot in &self.slots {\n            let g = slot.cell.lock();\n        }\n    }\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "loop-invariant-acquire(lock:self.inner.table)");
        assert_eq!(r.findings[0].line, 5);
    }

    #[test]
    fn acquire_with_loop_variant_arg_is_clean_invariant_arg_flagged() {
        let r = run(
            "impl S {\n    fn fill(&self, pool: &P, n: usize) {\n        for sz in &self.sizes {\n            let c = pool.acquire(sz);\n        }\n        for i in 0..n {\n            let c = pool.acquire(CHUNK);\n        }\n    }\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].line, 8);
        assert!(r.findings[0].operation.starts_with("loop-invariant-acquire(acquire:"));
    }

    #[test]
    fn unbounded_push_in_recv_loop_is_flagged() {
        let r = run(
            "impl S {\n    fn pump(&mut self) {\n        loop {\n            let pkt = self.rx.recv_packet();\n            self.backlog.push(pkt);\n        }\n    }\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "unbounded-growth(push:self.backlog)");
        assert_eq!(r.findings[0].line, 6);
        assert!(r.findings[0].chain[0].contains(":4"), "{:?}", r.findings[0].chain);
    }

    #[test]
    fn drained_or_escaping_recv_loops_are_clean() {
        let drained = run(
            "impl S { fn pump(&mut self) { loop { let p = self.rx.recv_packet(); self.backlog.push(p); self.backlog.clear(); } } }",
        );
        assert!(drained.findings.is_empty(), "{:?}", drained.findings);
        let escaping = run(
            "impl S { fn find(&mut self, want: Tag) -> Option<P> { loop { let p = self.rx.recv_packet(); if p.tag == want { return Some(p); } self.mailbox.push_back(p); } } }",
        );
        assert!(escaping.findings.is_empty(), "{:?}", escaping.findings);
    }

    #[test]
    fn growth_through_call_segment_receiver_is_tracked() {
        let r = run(
            "impl S {\n    fn pump(&mut self) {\n        loop {\n            let p = self.rx.recv_packet();\n            self.buf().push(p);\n        }\n    }\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "unbounded-growth(push:self.buf)");
    }

    #[test]
    fn unbounded_growth_ignores_inline_allow_marker() {
        let r = run(
            "impl S {\n    fn pump(&mut self) {\n        loop {\n            let p = self.rx.recv_packet();\n            // analyze: allow(loop-discipline): we promise it is fine\n            self.backlog.push(p);\n        }\n    }\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "inline markers cannot excuse growth: {:?}", r.findings);
    }

    #[test]
    fn annotated_invariant_acquire_is_allowed() {
        let r = run(
            "impl S {\n    fn scan(&self, n: usize) {\n        for i in 0..n {\n            // analyze: allow(loop-discipline): contended probe, short critical section beats hoisting\n            let g = self.state.lock();\n        }\n    }\n}\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn recv_and_acquire_loops_are_inventoried() {
        let r = run(
            "impl S { fn pump(&mut self) { while let Ok(p) = self.rx.try_recv() { if p.last { break; } self.seen.push(p); } } fn scan(&self, n: usize) { for i in 0..n { let g = self.state.lock(); } } }",
        );
        let kinds: Vec<&str> = r.sites.iter().map(|s| s.kind.as_str()).collect();
        assert!(kinds.contains(&"recv-loop"), "{:?}", r.sites);
        assert!(kinds.contains(&"acquire-loop"), "{:?}", r.sites);
    }

    #[test]
    fn out_of_scope_file_is_ignored() {
        let pf = parse_file(
            "t.rs",
            "impl S { fn pump(&mut self) { loop { let p = self.rx.recv_packet(); self.backlog.push(p); } } }",
        );
        let r = analyze_loops(&[pf]);
        assert!(r.findings.is_empty());
        assert!(r.sites.is_empty());
    }
}
