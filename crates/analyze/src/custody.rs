//! Chunk-custody dataflow pass (`chunk-custody`, schema pgxd-analyze/2).
//!
//! Every `ChunkPool::acquire` must reach exactly one release
//! (`release` / `release_inbound`), an explicit `drop`, or a hand-off —
//! a by-value move into a call, a `return`, or the function's tail
//! expression — on every control-flow path. Two rules fall out:
//!
//! * **leak** — a tracked pooled binding with no consumption at all, or
//!   an early `return` / `?` after the acquire with no consumption
//!   before it and no mention of the binding in the escaping
//!   expression. PR 6's `RunError`/abort early returns are exactly this
//!   shape.
//! * **double-release** — two release-kind consumptions of the same
//!   binding that are not in mutually exclusive `if`/`else` or `match`
//!   arms. PR 7's `(buf, pooled)` carry relies on the
//!   `if pooled { release } else { drop }` split staying exclusive.
//!
//! Custody is interprocedural: a function whose tail or `return`
//! hands a pooled buffer out (e.g. `run_local_sort` returning
//! `(out, true)`) is marked *returns-custody*, propagated to wrappers by
//! fixpoint, and every `let` whose right-hand side calls such a function
//! starts a new tracked binding at the caller (e.g. `sort_impl`'s
//! `let (sorted, sorted_pooled) = ctx.step(.. run_local_sort ..)`).
//!
//! Known approximations (kept deliberately, documented in DESIGN.md):
//! tracking is name-based within one function body, so shadowing a
//! tracked binding or consuming it only through a `self`-method move
//! (`x.into_parts()`) is invisible; a `return` inside a closure is
//! treated as escaping the enclosing function; acquires that flow
//! straight into an expression without a `let` (struct literals, match
//! arms producing a value) are counted as consumed-in-place. All of
//! these under- or over-approximate toward the shapes the runtime
//! actually uses; the fixture suite pins the shapes that must fail.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::analysis::block_close;
use crate::items::{Function, ParsedFile};
use crate::lexer::Tok;
use crate::report::Finding;

/// Method names that end custody by returning the chunk to the pool.
const RELEASE_METHODS: [&str; 2] = ["release", "release_inbound"];

/// What a consumption event does with the tracked value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Consume {
    /// `pool.release(x)` / `pool.release_inbound(x)`.
    Release,
    /// `drop(x)` or a bare `x;` statement.
    Drop,
    /// By-value move: call argument, tuple/struct member, `return x`,
    /// `for .. in x`, or tail expression.
    Handoff,
}

#[derive(Debug, Clone)]
struct Event {
    idx: usize,
    line: usize,
    kind: Consume,
    /// True when this hand-off escapes the function (`return` or tail).
    escapes: bool,
}

/// One tracked pooled binding inside one function.
struct TrackedBinding {
    file: String,
    function: String,
    binding: String,
    /// Line of the acquire (or of the custody-returning call).
    acquire_line: usize,
    /// Token range `(start, end)` to watch for uses: from the end of the
    /// introducing statement to the close of the enclosing block.
    range: (usize, usize),
    /// Extra chain entry for interprocedurally derived custody.
    origin: Option<String>,
    events: Vec<Event>,
    /// `return` / `?` token indices inside `range`.
    exits: Vec<(usize, bool)>, // (token idx, is_question_mark)
}

/// Pass output: findings plus summary data for the v2 report.
pub struct CustodyResult {
    pub findings: Vec<Finding>,
    /// Total `.acquire(` sites seen (tracked or consumed-in-place).
    pub acquire_sites: usize,
    /// Bindings tracked through a dataflow scan.
    pub tracked_bindings: usize,
    /// Functions that hand pooled custody to their caller.
    pub custody_fns: Vec<String>,
}

fn is_word(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// Innermost statement boundary strictly before `idx` (token after the
/// last `;` / `{` / `}` before it), bounded below by `lo`.
fn stmt_start(toks: &[Tok], lo: usize, idx: usize) -> usize {
    let mut j = idx;
    while j > lo {
        match toks[j - 1].text.as_str() {
            ";" | "{" | "}" => return j,
            _ => j -= 1,
        }
    }
    lo
}

/// First `;` at `depth` in `(from, end)`, else `end`.
fn stmt_end(pf: &ParsedFile, from: usize, depth: usize, end: usize) -> usize {
    for j in from..end {
        if pf.toks[j].text == ";" && pf.depth[j] == depth {
            return j;
        }
    }
    end
}

/// First binding ident of a `let` pattern starting at `let_idx` (the
/// `let` token): skips `mut` and opens a tuple/struct pattern.
fn let_binding(toks: &[Tok], let_idx: usize) -> Option<String> {
    let mut j = let_idx + 1;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "mut" | "(" | "&" => j += 1,
            "=" | ";" => return None,
            // An uppercase head is an enum/struct pattern (`Some(x)`,
            // `Ok(v)`), not a binding we can track by name.
            t if is_word(t) && t.starts_with(|c: char| c.is_uppercase()) => return None,
            t if is_word(t) => return Some(t.to_string()),
            _ => return None,
        }
    }
    None
}

/// Resolves the `let` statement introducing the expression that contains
/// `dot` — either directly (`let x = pool.acquire(..);`) or one
/// expression level out (`let x = match .. { .. pool.acquire(..) .. };`).
/// Returns `(binding, let_token_idx, let_depth)`.
fn enclosing_let(pf: &ParsedFile, body_start: usize, dot: usize) -> Option<(String, usize, usize)> {
    let st = stmt_start(&pf.toks, body_start, dot);
    if pf.toks[st].text == "let" {
        return let_binding(&pf.toks, st).map(|b| (b, st, pf.depth[st]));
    }
    // One level out: the statement lives inside the body of a `match` /
    // `if` expression that is itself the RHS of a `let`.
    if st == body_start || pf.toks[st - 1].text != "{" {
        return None;
    }
    let outer = stmt_start(&pf.toks, body_start, st - 1);
    if pf.toks[outer].text != "let" {
        return None;
    }
    let span: Vec<&str> = pf.toks[outer..st - 1].iter().map(|t| t.text.as_str()).collect();
    if !span.iter().any(|t| *t == "match" || *t == "if") {
        return None;
    }
    let_binding(&pf.toks, outer).map(|b| (b, outer, pf.depth[outer]))
}

/// `.acquire(` / `.acquire::<T>(` sites whose receiver chain mentions a
/// pool. Returns `(dot_idx, open_paren_idx)` pairs.
fn acquire_sites(pf: &ParsedFile, body: (usize, usize)) -> Vec<(usize, usize)> {
    let (start, end) = body;
    let toks = &pf.toks;
    let mut out = Vec::new();
    for i in start..end.saturating_sub(2) {
        if toks[i].text != "." || toks[i + 1].text != "acquire" {
            continue;
        }
        // Locate the call's `(`, skipping a turbofish.
        let mut j = i + 2;
        if j + 2 < end && toks[j].text == ":" && toks[j + 1].text == ":" && toks[j + 2].text == "<"
        {
            let mut angle = 0usize;
            j += 2;
            while j < end {
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if j >= end || toks[j].text != "(" {
            continue;
        }
        // Receiver must look like a pool: an ident containing `pool`
        // within the few tokens before the dot, before any statement
        // boundary.
        let mut poolish = false;
        let lo = i.saturating_sub(8).max(start);
        for k in (lo..i).rev() {
            match toks[k].text.as_str() {
                ";" | "{" | "}" | "," | "=" => break,
                t if t.contains("pool") || t.contains("Pool") => {
                    poolish = true;
                    break;
                }
                _ => {}
            }
        }
        if poolish {
            out.push((i, j));
        }
    }
    out
}

/// Scans `range` for uses of `binding`, classifying consumption events
/// and collecting `return` / `?` exits.
fn scan_uses(
    pf: &ParsedFile,
    binding: &str,
    range: (usize, usize),
    tail_start: usize,
) -> (Vec<Event>, Vec<(usize, bool)>) {
    let toks = &pf.toks;
    let (start, end) = range;
    let mut events = Vec::new();
    let mut exits = Vec::new();
    for k in start..end {
        let t = toks[k].text.as_str();
        if t == "return" {
            exits.push((k, false));
            continue;
        }
        if t == "?" {
            exits.push((k, true));
            continue;
        }
        if t != binding {
            continue;
        }
        let prev = if k > 0 { toks[k - 1].text.as_str() } else { "" };
        let prev2 = if k > 1 { toks[k - 2].text.as_str() } else { "" };
        let next = toks.get(k + 1).map(|t| t.text.as_str()).unwrap_or("");
        // Borrows, field/method access, indexing, and re-assignment are
        // not consumptions.
        if prev == "&" || (prev == "mut" && prev2 == "&") || prev == "." {
            continue;
        }
        if next == "." || next == "[" {
            continue;
        }
        if next == "=" && toks.get(k + 2).map(|t| t.text.as_str()) != Some("=") {
            continue; // `x = ..` reassignment (or `x ==` comparison falls through)
        }
        let in_tail = k >= tail_start;
        match prev {
            "(" | "," => {
                // By-value argument or tuple member: find the enclosing
                // open paren and its callee.
                let mut bal = 0i32;
                let mut open = None;
                for j in (start..k).rev() {
                    match toks[j].text.as_str() {
                        ")" => bal += 1,
                        "(" => {
                            bal -= 1;
                            if bal < 0 {
                                open = Some(j);
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                let callee = open
                    .and_then(|o| o.checked_sub(1))
                    .map(|p| toks[p].text.as_str())
                    .filter(|t| is_word(t))
                    .unwrap_or("");
                let kind = if RELEASE_METHODS.contains(&callee) {
                    Consume::Release
                } else if callee == "drop" {
                    Consume::Drop
                } else {
                    Consume::Handoff
                };
                let escapes = in_tail
                    || open
                        .map(|o| {
                            let st = stmt_start(toks, start, o);
                            toks[st..o].iter().any(|t| t.text == "return")
                        })
                        .unwrap_or(false);
                events.push(Event { idx: k, line: toks[k].line, kind, escapes });
            }
            "return" | "in" => {
                events.push(Event { idx: k, line: toks[k].line, kind: Consume::Handoff, escapes: prev == "return" });
            }
            "=" if next == ";" => {
                // `let _ = x;` style move.
                events.push(Event { idx: k, line: toks[k].line, kind: Consume::Handoff, escapes: false });
            }
            ";" | "{" | "}" => {
                if next == ";" {
                    // Bare `x;` statement: the value is dropped.
                    events.push(Event { idx: k, line: toks[k].line, kind: Consume::Drop, escapes: false });
                } else if next == "}" && in_tail {
                    // Bare tail expression.
                    events.push(Event { idx: k, line: toks[k].line, kind: Consume::Handoff, escapes: true });
                }
            }
            ":" if next == "," || next == "}" => {
                // Struct-literal field value: `Foo { data: x, .. }`.
                events.push(Event { idx: k, line: toks[k].line, kind: Consume::Handoff, escapes: in_tail });
            }
            _ => {}
        }
    }
    (events, exits)
}

/// Start of the function's tail expression: the token after the last `;`
/// at body depth (the whole body if there is none).
fn tail_start(pf: &ParsedFile, f: &Function) -> usize {
    let (start, end) = f.body;
    let body_depth = pf.depth.get(start).copied().unwrap_or(1);
    let mut tail = start;
    for j in start..end {
        if pf.toks[j].text == ";" && pf.depth[j] == body_depth {
            tail = j + 1;
        }
    }
    tail
}

/// Per-open-brace conditional-arm classification used to decide whether
/// two consumptions are mutually exclusive.
struct Branches<'a> {
    pf: &'a ParsedFile,
    /// close `}` → open `{`.
    close_to_open: HashMap<usize, usize>,
    memo: HashMap<usize, Option<(usize, usize)>>,
}

impl<'a> Branches<'a> {
    fn new(pf: &'a ParsedFile) -> Self {
        let mut close_to_open = HashMap::new();
        let mut stack = Vec::new();
        for (i, t) in pf.toks.iter().enumerate() {
            match t.text.as_str() {
                "{" => stack.push(i),
                "}" => {
                    if let Some(o) = stack.pop() {
                        close_to_open.insert(i, o);
                    }
                }
                _ => {}
            }
        }
        Branches { pf, close_to_open, memo: HashMap::new() }
    }

    /// `(chain_root_open_idx, arm_number)` when the brace at `o` is an
    /// `if` / `else if` / `else` arm.
    fn classify(&mut self, o: usize) -> Option<(usize, usize)> {
        if let Some(hit) = self.memo.get(&o) {
            return *hit;
        }
        let r = self.classify_uncached(o);
        self.memo.insert(o, r);
        r
    }

    fn classify_uncached(&mut self, o: usize) -> Option<(usize, usize)> {
        let toks = &self.pf.toks;
        if o == 0 {
            return None;
        }
        // `} else {` — arm after the previous one in the same chain.
        if toks[o - 1].text == "else" && o >= 2 && toks[o - 2].text == "}" {
            let prev_open = *self.close_to_open.get(&(o - 2))?;
            let (root, arm) = self.classify(prev_open).unwrap_or((prev_open, 0));
            return Some((root, arm + 1));
        }
        // Walk back over the condition to the construct keyword.
        let mut j = o;
        let mut scanned = 0;
        while j > 0 && scanned < 64 {
            j -= 1;
            scanned += 1;
            match toks[j].text.as_str() {
                ";" | "{" | "}" | "," => return None,
                "if" => {
                    // `else if cond {` chains to the previous arm.
                    if j > 0 && toks[j - 1].text == "else" && j >= 2 && toks[j - 2].text == "}" {
                        let prev_open = *self.close_to_open.get(&(j - 2))?;
                        let (root, arm) = self.classify(prev_open).unwrap_or((prev_open, 0));
                        return Some((root, arm + 1));
                    }
                    return Some((o, 0));
                }
                "match" | "while" | "for" | "loop" | "else" => return None,
                _ => {}
            }
        }
        None
    }

    /// True when the brace at `o` opens a `match` body.
    fn is_match_body(&self, o: usize) -> bool {
        let toks = &self.pf.toks;
        let mut j = o;
        let mut scanned = 0;
        while j > 0 && scanned < 64 {
            j -= 1;
            scanned += 1;
            match toks[j].text.as_str() {
                ";" | "{" | "}" | "," => return false,
                "match" => return true,
                "if" | "while" | "for" | "loop" | "else" => return false,
                _ => {}
            }
        }
        false
    }

    /// Branch contexts of the token at `idx`: map from chain/match root
    /// to arm number, over every enclosing conditional construct.
    fn contexts(&mut self, body_start: usize, idx: usize) -> BTreeMap<usize, usize> {
        let toks = &self.pf.toks;
        let mut stack = Vec::new();
        for (j, t) in toks.iter().enumerate().take(idx).skip(body_start) {
            match t.text.as_str() {
                "{" => stack.push(j),
                "}" => {
                    stack.pop();
                }
                _ => {}
            }
        }
        let mut out = BTreeMap::new();
        for &o in &stack {
            if let Some((root, arm)) = self.classify(o) {
                out.insert(root, arm);
            }
            if self.is_match_body(o) {
                // Arm number = count of `=>` at arm depth inside this
                // match body, up to the site (`=>` lexes as `=`,`>`).
                let arm_depth = self.pf.depth[o] + 1;
                let mut arm = 0usize;
                for j in o + 1..idx {
                    if toks[j].text == "="
                        && toks.get(j + 1).map(|t| t.text.as_str()) == Some(">")
                        && self.pf.depth[j] == arm_depth
                    {
                        arm += 1;
                    }
                }
                out.insert(o, arm);
            }
        }
        out
    }
}

fn exclusive(b: &mut Branches<'_>, body_start: usize, a: usize, c: usize) -> bool {
    let ca = b.contexts(body_start, a);
    let cb = b.contexts(body_start, c);
    ca.iter().any(|(root, arm)| cb.get(root).is_some_and(|other| other != arm))
}

/// Runs the custody pass over `files` (non-test functions only; the
/// shim/test exclusions already happened upstream in collection).
pub fn analyze_custody(files: &[ParsedFile]) -> CustodyResult {
    let mut acquire_count = 0usize;
    let mut tracked: Vec<(usize, TrackedBinding)> = Vec::new(); // (file idx, binding)
    // fn qualified name (and bare name) → (file, acquire line) for
    // custody-returning functions.
    let mut custody_fns: BTreeMap<String, (String, usize)> = BTreeMap::new();

    // Pass 1: direct acquires.
    for (fi, pf) in files.iter().enumerate() {
        for f in &pf.functions {
            for (dot, _open) in acquire_sites(pf, f.body) {
                acquire_count += 1;
                let Some((binding, let_idx, let_depth)) = enclosing_let(pf, f.body.0, dot) else {
                    continue; // consumed in place (struct literal, match arm value)
                };
                let track_from = stmt_end(pf, dot, let_depth, f.body.1);
                let track_to = block_close(pf, let_idx, let_depth, f.body.1);
                let ts = tail_start(pf, f);
                let (events, exits) = scan_uses(pf, &binding, (track_from, track_to), ts);
                if events.iter().any(|e| e.kind == Consume::Handoff && e.escapes) {
                    custody_fns
                        .entry(f.name.clone())
                        .or_insert((pf.rel.clone(), pf.toks[dot].line));
                    if let Some(bare) = f.name.rsplit("::").next() {
                        custody_fns
                            .entry(bare.to_string())
                            .or_insert((pf.rel.clone(), pf.toks[dot].line));
                    }
                }
                tracked.push((
                    fi,
                    TrackedBinding {
                        file: pf.rel.clone(),
                        function: f.name.clone(),
                        binding,
                        acquire_line: pf.toks[dot].line,
                        range: (track_from, track_to),
                        origin: None,
                        events,
                        exits,
                    },
                ));
            }
        }
    }

    // Pass 2: fixpoint — wrappers whose tail/return calls a
    // custody-returning function themselves return custody.
    loop {
        let mut grew = false;
        for pf in files {
            for f in &pf.functions {
                if custody_fns.contains_key(&f.name) {
                    continue;
                }
                let ts = tail_start(pf, f);
                let mut origin = None;
                for j in ts..f.body.1 {
                    let t = pf.toks[j].text.as_str();
                    if pf.toks.get(j + 1).map(|t| t.text.as_str()) == Some("(") {
                        if let Some(o) = custody_fns.get(t) {
                            origin = Some(o.clone());
                            break;
                        }
                    }
                }
                if let Some(origin) = origin {
                    custody_fns.insert(f.name.clone(), origin.clone());
                    if let Some(bare) = f.name.rsplit("::").next() {
                        custody_fns.entry(bare.to_string()).or_insert(origin);
                    }
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }

    // Pass 3: derived bindings — `let <pat> = .. custody_fn(..) ..;`.
    for (fi, pf) in files.iter().enumerate() {
        for f in &pf.functions {
            let (start, end) = f.body;
            let ts = tail_start(pf, f);
            let mut j = start;
            while j < end {
                if pf.toks[j].text != "let" {
                    j += 1;
                    continue;
                }
                let let_idx = j;
                let let_depth = pf.depth[let_idx];
                let se = stmt_end(pf, let_idx, let_depth, end);
                let called: Option<&str> = (let_idx..se).find_map(|k| {
                    let t = pf.toks[k].text.as_str();
                    (pf.toks.get(k + 1).map(|t| t.text.as_str()) == Some("(")
                        && custody_fns.contains_key(t)
                        && t != "drop")
                        .then_some(t)
                });
                let has_direct_acquire = (let_idx..se)
                    .any(|k| pf.toks[k].text == "." && pf.toks.get(k + 1).map(|t| t.text.as_str()) == Some("acquire"));
                if let (Some(callee), false) = (called, has_direct_acquire) {
                    if let Some(binding) = let_binding(&pf.toks, let_idx) {
                        let (ofile, oline) = custody_fns.get(callee).cloned().unwrap();
                        let track_from = se;
                        let track_to = block_close(pf, let_idx, let_depth, end);
                        let (events, exits) = scan_uses(pf, &binding, (track_from, track_to), ts);
                        tracked.push((
                            fi,
                            TrackedBinding {
                                file: pf.rel.clone(),
                                function: f.name.clone(),
                                binding,
                                acquire_line: pf.toks[let_idx].line,
                                range: (track_from, track_to),
                                origin: Some(format!(
                                    "custody from `{callee}` (acquired at {ofile}:{oline})"
                                )),
                                events,
                                exits,
                            },
                        ));
                    }
                }
                j = se + 1;
            }
        }
    }

    // Findings.
    let mut findings = Vec::new();
    for (fi, tb) in &tracked {
        let pf = &files[*fi];
        let body_start = pf
            .functions
            .iter()
            .find(|f| f.name == tb.function)
            .map(|f| f.body.0)
            .unwrap_or(0);
        let mut chain = vec![format!("acquired at {}:{}", tb.file, tb.acquire_line)];
        if let Some(o) = &tb.origin {
            chain.push(o.clone());
        }

        if tb.events.is_empty() {
            findings.push(Finding {
                rule: "chunk-custody".into(),
                file: tb.file.clone(),
                line: tb.acquire_line,
                function: tb.function.clone(),
                held: None,
                operation: format!("leak({})", tb.binding),
                chain: chain.clone(),
                message: format!(
                    "pooled buffer `{}` is acquired but never released, dropped, or handed off",
                    tb.binding
                ),
            });
            continue;
        }

        // Early exits that escape before any consumption.
        for &(exit_idx, is_q) in &tb.exits {
            let consumed_before = tb.events.iter().any(|e| e.idx <= exit_idx);
            if consumed_before {
                continue;
            }
            let mentioned = if is_q {
                false
            } else {
                let se = stmt_end(pf, exit_idx, pf.depth[exit_idx], tb.range.1);
                pf.toks[exit_idx..se].iter().any(|t| t.text == tb.binding)
            };
            if mentioned {
                continue;
            }
            let what = if is_q { "`?` error propagation" } else { "early return" };
            let mut c = chain.clone();
            c.push(format!("escapes at {}:{}", tb.file, pf.toks[exit_idx].line));
            findings.push(Finding {
                rule: "chunk-custody".into(),
                file: tb.file.clone(),
                line: pf.toks[exit_idx].line,
                function: tb.function.clone(),
                held: None,
                operation: format!("leak({})", tb.binding),
                chain: c,
                message: format!(
                    "{what} leaks pooled buffer `{}` acquired at {}:{}",
                    tb.binding, tb.file, tb.acquire_line
                ),
            });
        }

        // Double release: two release-kind events on a shared path.
        let releases: Vec<&Event> =
            tb.events.iter().filter(|e| e.kind == Consume::Release).collect();
        if releases.len() > 1 {
            let mut branches = Branches::new(pf);
            for w in 0..releases.len() {
                for v in w + 1..releases.len() {
                    let (a, b) = (releases[w], releases[v]);
                    if exclusive(&mut branches, body_start, a.idx, b.idx) {
                        continue;
                    }
                    let mut c = chain.clone();
                    c.push(format!("first release at {}:{}", tb.file, a.line));
                    c.push(format!("second release at {}:{}", tb.file, b.line));
                    findings.push(Finding {
                        rule: "chunk-custody".into(),
                        file: tb.file.clone(),
                        line: b.line,
                        function: tb.function.clone(),
                        held: None,
                        operation: format!("double-release({})", tb.binding),
                        chain: c,
                        message: format!(
                            "pooled buffer `{}` released twice on the same path (first at {}:{})",
                            tb.binding, tb.file, a.line
                        ),
                    });
                }
            }
        }
    }

    let mut names: BTreeSet<String> = custody_fns
        .keys()
        .filter(|n| n.contains("::"))
        .cloned()
        .collect();
    // Free functions have no `::`; keep any bare name that is not a
    // method alias of a qualified one.
    for n in custody_fns.keys() {
        if !n.contains("::") && !custody_fns.keys().any(|q| q.contains("::") && q.ends_with(&format!("::{n}"))) {
            names.insert(n.clone());
        }
    }

    CustodyResult {
        findings,
        acquire_sites: acquire_count,
        tracked_bindings: tracked.len(),
        custody_fns: names.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;

    fn run(src: &str) -> CustodyResult {
        analyze_custody(&[parse_file("t.rs", src)])
    }

    #[test]
    fn balanced_acquire_release_is_clean() {
        let r = run(
            "impl S { fn f(&self, pool: &Pool) { let mut b = pool.acquire::<u64>(8); b.push(1); pool.release(b); } }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings.first().map(|f| &f.message));
        assert_eq!(r.acquire_sites, 1);
        assert_eq!(r.tracked_bindings, 1);
    }

    #[test]
    fn never_released_is_a_leak() {
        let r = run("fn f(pool: &Pool) { let b = pool.acquire(8); b.len(); }");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].operation, "leak(b)");
        assert_eq!(r.findings[0].line, 1);
    }

    #[test]
    fn early_return_before_release_is_a_leak() {
        let r = run(
            "fn f(pool: &Pool, bad: bool) -> u32 {\n    let b = pool.acquire(8);\n    if bad {\n        return 0;\n    }\n    pool.release(b);\n    1\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "leak(b)");
        assert_eq!(r.findings[0].line, 4);
        assert!(r.findings[0].chain.iter().any(|c| c.contains("t.rs:2")));
    }

    #[test]
    fn return_carrying_the_buffer_is_a_handoff() {
        let r = run(
            "fn f(pool: &Pool, bad: bool) -> (Vec<u64>, bool) {\n    let b = pool.acquire(8);\n    if bad {\n        return (b, true);\n    }\n    pool.release(b);\n    (Vec::new(), false)\n}\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn tail_tuple_marks_returns_custody() {
        let r = run(
            "fn make(pool: &Pool) -> (Vec<u64>, bool) {\n    let out = pool.acquire(8);\n    (out, true)\n}\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.custody_fns, vec!["make".to_string()]);
    }

    #[test]
    fn double_release_on_one_path_is_flagged() {
        let r = run(
            "fn f(pool: &Pool) {\n    let b = pool.acquire(8);\n    pool.release(b);\n    pool.release(b);\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "double-release(b)");
        assert_eq!(r.findings[0].line, 4);
    }

    #[test]
    fn release_in_exclusive_arms_is_clean() {
        let r = run(
            "fn f(pool: &Pool, pooled: bool) {\n    let b = pool.acquire(8);\n    if pooled {\n        pool.release(b);\n    } else {\n        drop(b);\n    }\n}\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        let r2 = run(
            "fn f(pool: &Pool, pooled: bool) {\n    let b = pool.acquire(8);\n    if pooled {\n        pool.release(b);\n    }\n    pool.release(b);\n}\n",
        );
        assert_eq!(r2.findings.len(), 1);
        assert_eq!(r2.findings[0].operation, "double-release(b)");
    }

    #[test]
    fn custody_propagates_to_caller_let() {
        let r = run(
            "fn make(pool: &Pool) -> Vec<u64> {\n    let out = pool.acquire(8);\n    out\n}\nfn caller(pool: &Pool) {\n    let buf = make(pool);\n    buf.len();\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "leak(buf)");
        assert_eq!(r.findings[0].function, "caller");
        assert!(r.findings[0].chain.iter().any(|c| c.contains("custody from `make`")));
    }

    #[test]
    fn caller_releasing_derived_custody_is_clean() {
        let r = run(
            "fn make(pool: &Pool) -> Vec<u64> {\n    let out = pool.acquire(8);\n    out\n}\nfn caller(pool: &Pool) {\n    let buf = make(pool);\n    pool.release(buf);\n}\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn match_arm_acquire_binds_through_outer_let() {
        let r = run(
            "fn f(pool: Option<&Pool>) {\n    let b = match pool {\n        Some(p) => p.acquire(8),\n        None => Vec::new(),\n    };\n    b.len();\n}\n",
        );
        // `p` is not pool-ish by name here, so use an explicit pool recv.
        let r2 = run(
            "fn f(maybe: Option<&Pool>) {\n    let b = match maybe {\n        Some(pool) => pool.acquire(8),\n        None => Vec::new(),\n    };\n    b.len();\n}\n",
        );
        let _ = r;
        assert_eq!(r2.findings.len(), 1, "{:?}", r2.findings);
        assert_eq!(r2.findings[0].operation, "leak(b)");
        assert_eq!(r2.findings[0].function, "f");
    }

    #[test]
    fn question_mark_exit_before_release_is_a_leak() {
        let r = run(
            "fn f(pool: &Pool) -> Result<(), E> {\n    let b = pool.acquire(8);\n    step()?;\n    pool.release(b);\n    Ok(())\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert!(r.findings[0].message.contains("`?`"));
        assert_eq!(r.findings[0].line, 3);
    }

    #[test]
    fn for_in_consumption_counts() {
        let r = run(
            "fn make(pool: &Pool) -> Vec<(Vec<u64>, bool)> {\n    let out = pool.acquire(8);\n    vec![(out, true)]\n}\nfn caller(pool: &Pool) {\n    let sorted = make(pool);\n    for (buf, pooled) in sorted {\n        if pooled {\n            pool.release(buf);\n        }\n    }\n}\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }
}
