//! Barrier/channel wait-graph pass (`wait-graph`, schema pgxd-analyze/2).
//!
//! The §IV protocol is a fixed choreography: every machine walks the
//! same six steps, and inside a step every barrier must be entered by
//! all participants and every receive must be fed by a matching send
//! somewhere on the same step's code path. This pass models the three
//! wait-site kinds over the machine-level code —
//!
//! * **barrier** — `ClusterBarrier::wait` via `Machine::barrier()` /
//!   `wait_or_unwind()` / a literal `barrier.wait()`,
//! * **send** — any `.send_*(..)` method call (`send_packet`,
//!   `send_vec`, `send_shared_vec`, `send_offset_chunk`, …),
//! * **recv** — any `.recv_*(..)` / `.try_recv_*(..)` method call,
//!
//! attributes each site to its enclosing function, tags it with the §IV
//! step when it sits inside a `ctx.step(steps::X, ..)` region, and
//! propagates send/recv/barrier *effects* through the local call graph
//! (so `exchange_by_offsets` is known to send because it drives
//! `RequestBuffer::push_slice → flush → send_offset_chunk`). Two rules:
//!
//! * **asymmetric-barrier** — an `if`/`else` chain or `match` whose
//!   non-diverging arms enter a barrier a different number of times
//!   (one path can skip or double-enter a barrier the other waits on —
//!   a deadlock once PR 6's abort plumbing is off the happy path).
//!   Compile-time-uniform conditions (`cfg`, ALL-CAPS consts like
//!   `checker::ENABLED`) are exempt: every machine takes the same arm.
//! * **recv-without-send** — a function with a direct receive site but
//!   no send anywhere in its transitive call closure: a shape that can
//!   only complete if some *other* code path feeds it, which the §IV
//!   protocol never does (every step pairs its sends and receives in
//!   the same machine-level function).
//!
//! Scope: the machine-level protocol files (`machine.rs`, `cluster.rs`,
//! `buffer.rs`, `core/sorter.rs`) plus any file carrying an
//! `analyze: scope(wait-graph)` comment (used by fixtures). The comm
//! fabric itself (`comm.rs`) and the fault plane stay out: their
//! send/recv primitives are the *implementation* of the edges this
//! graph models, not protocol participants.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::analysis::{block_close, call_open_paren};
use crate::items::{matching_paren, ParsedFile};
use crate::report::Finding;

/// Files modeled by the wait-graph (suffix match on workspace paths).
const WAIT_FILES: [&str; 4] = [
    "crates/pgxd/src/machine.rs",
    "crates/pgxd/src/cluster.rs",
    "crates/pgxd/src/buffer.rs",
    "crates/core/src/sorter.rs",
];

/// Marker pulling extra files (fixtures) into scope.
pub const SCOPE_MARKER: &str = "analyze: scope(wait-graph)";

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    Barrier,
    Send,
    Recv,
}

impl OpKind {
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Barrier => "barrier",
            OpKind::Send => "send",
            OpKind::Recv => "recv",
        }
    }
}

/// One wait site, attributed to a function and (when inside a
/// `ctx.step(steps::X, ..)` region) a §IV step.
#[derive(Debug, Clone)]
pub struct WaitOp {
    pub kind: OpKind,
    pub file: String,
    pub line: usize,
    pub function: String,
    /// Method actually called (`wait_or_unwind`, `recv_packet`, …).
    pub callee: String,
    pub step: Option<String>,
}

/// Step-transition edge: `function` runs step `from` then step `to`.
#[derive(Debug, Clone)]
pub struct StepEdge {
    pub from: String,
    pub to: String,
    pub function: String,
}

pub struct WaitGraph {
    pub findings: Vec<Finding>,
    pub ops: Vec<WaitOp>,
    pub edges: Vec<StepEdge>,
    /// Functions whose transitive closure sends (for the report).
    pub senders: Vec<String>,
}

fn in_scope(pf: &ParsedFile) -> bool {
    WAIT_FILES.iter().any(|s| pf.rel.ends_with(s))
        || pf.stripped.comments.iter().any(|c| c.contains(SCOPE_MARKER))
}

fn classify_call(pf: &ParsedFile, dot: usize) -> Option<(OpKind, String)> {
    let toks = &pf.toks;
    let name = toks.get(dot + 1)?.text.as_str();
    // Look through `::<T>` turbofish (`.recv_vec::<u64>(tag)`).
    let open = call_open_paren(toks, dot + 1)?;
    let recv_ident = dot.checked_sub(1).map(|p| toks[p].text.as_str()).unwrap_or("");
    let empty_args = toks.get(open + 1).map(|t| t.text.as_str()) == Some(")");
    let kind = if name == "wait_or_unwind"
        || (name == "barrier" && empty_args)
        || (name == "wait" && recv_ident == "barrier")
    {
        OpKind::Barrier
    } else if name.starts_with("send_") {
        OpKind::Send
    } else if name.starts_with("recv_") || name.starts_with("try_recv_") {
        OpKind::Recv
    } else {
        return None;
    };
    Some((kind, name.to_string()))
}

/// `ctx.step(steps::X, ..)` regions in a body: `(start, end, step)` with
/// the step constant lowercased to match the `steps::` string values.
/// Shared with the hot-path-alloc pass, whose hot-region roots are these
/// same step bodies.
pub(crate) fn step_regions(pf: &ParsedFile, body: (usize, usize)) -> Vec<(usize, usize, String)> {
    let toks = &pf.toks;
    let mut out = Vec::new();
    for i in body.0..body.1.saturating_sub(5) {
        if toks[i].text != "step" || toks[i + 1].text != "(" {
            continue;
        }
        if toks[i + 2].text != "steps" || toks[i + 3].text != ":" || toks[i + 4].text != ":" {
            continue;
        }
        let close = matching_paren(toks, i + 1);
        out.push((i + 1, close, toks[i + 5].text.to_lowercase()));
    }
    out
}

/// True when the condition/scrutinee tokens are compile-time uniform
/// across machines: a `cfg` mention or an ALL-CAPS const.
fn uniform_condition(toks: &[crate::lexer::Tok], range: (usize, usize)) -> bool {
    toks[range.0..range.1].iter().any(|t| {
        let s = t.text.as_str();
        s == "cfg"
            || (s.len() >= 2
                && s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && s.chars().all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit()))
    })
}

/// True when the arm's tokens unconditionally leave the protocol
/// (return / panic / abort / unreachable / break / continue).
fn diverging(toks: &[crate::lexer::Tok], range: (usize, usize)) -> bool {
    toks[range.0..range.1].iter().any(|t| {
        matches!(
            t.text.as_str(),
            "return" | "panic" | "panic_any" | "unreachable" | "abort" | "exit" | "break"
                | "continue"
        )
    })
}

/// First `{` after `from` with parens balanced, or None. Shared with the
/// loop-discipline and hot-path passes, which walk the same loop bodies.
pub(crate) fn body_open(pf: &ParsedFile, from: usize, end: usize) -> Option<usize> {
    let mut paren = 0i32;
    for j in from..end {
        match pf.toks[j].text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "{" if paren == 0 => return Some(j),
            ";" if paren == 0 => return None,
            _ => {}
        }
    }
    None
}

pub fn analyze_waitgraph(files: &[ParsedFile]) -> WaitGraph {
    let scoped: Vec<&ParsedFile> = files.iter().filter(|pf| in_scope(pf)).collect();

    // Direct sites per function, and the op list.
    let mut ops: Vec<WaitOp> = Vec::new();
    let mut direct: HashMap<String, HashSet<OpKind>> = HashMap::new();
    let mut edges: Vec<StepEdge> = Vec::new();
    // (fn qualified name, bare name) → index for effect propagation.
    let mut fn_files: HashMap<String, usize> = HashMap::new();

    for (fi, pf) in scoped.iter().enumerate() {
        for f in &pf.functions {
            fn_files.insert(f.name.clone(), fi);
            if let Some(bare) = f.name.rsplit("::").next() {
                fn_files.entry(bare.to_string()).or_insert(fi);
            }
            let regions = step_regions(pf, f.body);
            let mut seen_steps: Vec<String> = Vec::new();
            for (_, _, step) in &regions {
                if seen_steps.last() != Some(step) {
                    if let Some(prev) = seen_steps.last() {
                        edges.push(StepEdge {
                            from: prev.clone(),
                            to: step.clone(),
                            function: f.name.clone(),
                        });
                    }
                    seen_steps.push(step.clone());
                }
            }
            for i in f.body.0..f.body.1 {
                if pf.toks[i].text != "." {
                    continue;
                }
                let Some((kind, callee)) = classify_call(pf, i) else {
                    continue;
                };
                let step = regions
                    .iter()
                    .find(|&&(s, e, _)| i > s && i < e)
                    .map(|(_, _, st)| st.clone());
                direct.entry(f.name.clone()).or_default().insert(kind);
                ops.push(WaitOp {
                    kind,
                    file: pf.rel.clone(),
                    line: pf.toks[i].line,
                    function: f.name.clone(),
                    callee,
                    step,
                });
            }
        }
    }

    // Effect propagation over the local call graph: `name(` and
    // `.name(` call tokens that resolve to a scoped function.
    let mut effects: HashMap<String, HashSet<OpKind>> = direct.clone();
    loop {
        let mut grew = false;
        for pf in &scoped {
            for f in &pf.functions {
                for i in f.body.0..f.body.1.saturating_sub(1) {
                    let t = pf.toks[i].text.as_str();
                    if pf.toks[i + 1].text != "(" || !fn_files.contains_key(t) || t == f.name {
                        continue;
                    }
                    // Skip the definition site itself (`fn name(`).
                    if i > 0 && pf.toks[i - 1].text == "fn" {
                        continue;
                    }
                    let callee_effects: Vec<OpKind> = effects
                        .get(t)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    for k in callee_effects {
                        let entry = effects.entry(f.name.clone()).or_default();
                        if entry.insert(k) {
                            grew = true;
                        }
                    }
                }
            }
        }
        // Keep bare aliases in sync with their qualified entries.
        let qualified: Vec<(String, HashSet<OpKind>)> = effects
            .iter()
            .filter(|(k, _)| k.contains("::"))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for (q, v) in qualified {
            if let Some(bare) = q.rsplit("::").next() {
                let entry = effects.entry(bare.to_string()).or_default();
                for k in &v {
                    if entry.insert(*k) {
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }

    let mut findings = Vec::new();

    // Rule: recv-without-send.
    for pf in &scoped {
        for f in &pf.functions {
            let has_direct_recv = direct.get(&f.name).is_some_and(|s| s.contains(&OpKind::Recv));
            if !has_direct_recv {
                continue;
            }
            let sends = effects.get(&f.name).is_some_and(|s| s.contains(&OpKind::Send));
            if sends {
                continue;
            }
            let site = ops
                .iter()
                .find(|o| o.function == f.name && o.kind == OpKind::Recv)
                .expect("direct recv implies a site");
            findings.push(Finding {
                rule: "wait-graph".into(),
                file: pf.rel.clone(),
                line: site.line,
                function: f.name.clone(),
                held: None,
                operation: format!("recv-without-send({})", site.callee),
                chain: vec![format!("receives at {}:{}", pf.rel, site.line)],
                message: format!(
                    "`{}` receives via `{}` but nothing in its call closure sends — the §IV steps always pair sends and receives in the same machine-level function",
                    f.name, site.callee
                ),
            });
        }
    }

    // Rule: asymmetric barrier participation.
    let barrier_weight = |pf: &ParsedFile, f_name: &str, range: (usize, usize)| -> Vec<usize> {
        // Token indices in `range` that enter a barrier: direct sites or
        // calls into barrier-effect functions.
        let mut hits = Vec::new();
        for j in range.0..range.1 {
            if pf.toks[j].text == "." {
                if let Some((OpKind::Barrier, _)) = classify_call(pf, j) {
                    hits.push(j);
                    continue;
                }
            }
            let t = pf.toks[j].text.as_str();
            if pf.toks.get(j + 1).map(|t| t.text.as_str()) == Some("(")
                && t != f_name
                && (j == 0 || pf.toks[j - 1].text != "fn")
                && (j == 0 || pf.toks[j - 1].text != ".")
                && effects.get(t).is_some_and(|s| s.contains(&OpKind::Barrier))
                && fn_files.contains_key(t)
            {
                hits.push(j);
            }
        }
        hits
    };

    for pf in &scoped {
        for f in &pf.functions {
            let (bs, be) = f.body;
            let mut i = bs;
            while i < be {
                let t = pf.toks[i].text.as_str();
                if t == "if" {
                    // Skip `else if`: handled as part of its chain head.
                    if i > bs && pf.toks[i - 1].text == "else" {
                        i += 1;
                        continue;
                    }
                    let Some(first_open) = body_open(pf, i + 1, be) else {
                        i += 1;
                        continue;
                    };
                    if uniform_condition(&pf.toks, (i + 1, first_open)) {
                        i = first_open + 1;
                        continue;
                    }
                    // Collect the arm chain.
                    let mut arms: Vec<(usize, usize)> = Vec::new();
                    let mut open = first_open;
                    let mut explicit_else = false;
                    loop {
                        let close = block_close(pf, open + 1, pf.depth[open] + 1, be);
                        arms.push((open + 1, close));
                        match pf.toks.get(close + 1).map(|t| t.text.as_str()) {
                            Some("else") => match pf.toks.get(close + 2).map(|t| t.text.as_str()) {
                                Some("if") => {
                                    let Some(next_open) = body_open(pf, close + 3, be) else {
                                        break;
                                    };
                                    open = next_open;
                                }
                                Some("{") => {
                                    let o = close + 2;
                                    let c = block_close(pf, o + 1, pf.depth[o] + 1, be);
                                    arms.push((o + 1, c));
                                    explicit_else = true;
                                    break;
                                }
                                _ => break,
                            },
                            _ => break,
                        }
                    }
                    let counts: Vec<(usize, Option<usize>, usize, usize)> = arms
                        .iter()
                        .map(|&(s, e)| {
                            let hits = barrier_weight(pf, &f.name, (s, e));
                            (hits.len(), hits.first().copied(), s, e)
                        })
                        .collect();
                    if counts.iter().any(|c| c.0 > 0) {
                        let mut live: Vec<usize> = counts
                            .iter()
                            .filter(|&&(_, _, s, e)| !diverging(&pf.toks, (s, e)))
                            .map(|c| c.0)
                            .collect();
                        if !explicit_else {
                            live.push(0); // the implicit empty else arm
                        }
                        if live.len() > 1 && live.iter().any(|&c| c != live[0]) {
                            let site = counts
                                .iter()
                                .find_map(|c| c.1)
                                .unwrap_or(first_open);
                            findings.push(Finding {
                                rule: "wait-graph".into(),
                                file: pf.rel.clone(),
                                line: pf.toks[site].line,
                                function: f.name.clone(),
                                held: None,
                                operation: "asymmetric-barrier".into(),
                                chain: vec![format!(
                                    "branch at {}:{}",
                                    pf.rel,
                                    pf.toks[i].line
                                )],
                                message: format!(
                                    "barrier entered on one arm of the branch at {}:{} but not the other(s) — a machine taking the other path deadlocks the cluster",
                                    pf.rel,
                                    pf.toks[i].line
                                ),
                            });
                        }
                    }
                    i = first_open + 1;
                    continue;
                }
                if t == "match" {
                    let Some(open) = body_open(pf, i + 1, be) else {
                        i += 1;
                        continue;
                    };
                    if uniform_condition(&pf.toks, (i + 1, open)) {
                        i = open + 1;
                        continue;
                    }
                    let close = block_close(pf, open + 1, pf.depth[open] + 1, be);
                    let arm_depth = pf.depth[open] + 1;
                    let mut arrows: Vec<usize> = Vec::new();
                    for j in open + 1..close {
                        if pf.toks[j].text == "="
                            && pf.toks.get(j + 1).map(|t| t.text.as_str()) == Some(">")
                            && pf.depth[j] == arm_depth
                        {
                            arrows.push(j);
                        }
                    }
                    let mut live: Vec<(usize, Option<usize>)> = Vec::new();
                    for (ai, &a) in arrows.iter().enumerate() {
                        let end = arrows.get(ai + 1).copied().unwrap_or(close);
                        if diverging(&pf.toks, (a + 2, end)) {
                            continue;
                        }
                        let hits = barrier_weight(pf, &f.name, (a + 2, end));
                        live.push((hits.len(), hits.first().copied()));
                    }
                    if live.iter().any(|c| c.0 > 0) && live.iter().any(|&(c, _)| c != live[0].0) {
                        let site = live.iter().find_map(|c| c.1).unwrap_or(open);
                        findings.push(Finding {
                            rule: "wait-graph".into(),
                            file: pf.rel.clone(),
                            line: pf.toks[site].line,
                            function: f.name.clone(),
                            held: None,
                            operation: "asymmetric-barrier".into(),
                            chain: vec![format!("match at {}:{}", pf.rel, pf.toks[i].line)],
                            message: format!(
                                "barrier entered in some arms of the match at {}:{} but not all — a machine taking another arm deadlocks the cluster",
                                pf.rel,
                                pf.toks[i].line
                            ),
                        });
                    }
                    i = open + 1;
                    continue;
                }
                i += 1;
            }
        }
    }

    let mut senders: Vec<String> = effects
        .iter()
        .filter(|(k, v)| k.contains("::") && v.contains(&OpKind::Send))
        .map(|(k, _)| k.clone())
        .collect();
    for (k, v) in &effects {
        if !k.contains("::")
            && v.contains(&OpKind::Send)
            && fn_files.contains_key(k)
            && !effects
                .keys()
                .any(|q| q.contains("::") && q.ends_with(&format!("::{k}")))
        {
            senders.push(k.clone());
        }
    }
    senders.sort();
    senders.dedup();

    ops.sort_by(|a, b| (a.file.as_str(), a.line, a.kind).cmp(&(b.file.as_str(), b.line, b.kind)));

    WaitGraph { findings, ops, edges, senders }
}

/// Aggregated per-step counts for the report: `(step, barriers, sends,
/// recvs)`, alphabetical, for steps that appear at all.
pub fn step_counts(ops: &[WaitOp]) -> Vec<(String, usize, usize, usize)> {
    let mut agg: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new();
    for op in ops {
        let Some(step) = &op.step else { continue };
        let e = agg.entry(step.clone()).or_default();
        match op.kind {
            OpKind::Barrier => e.0 += 1,
            OpKind::Send => e.1 += 1,
            OpKind::Recv => e.2 += 1,
        }
    }
    agg.into_iter().map(|(s, (b, sd, r))| (s, b, sd, r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;

    fn run(src: &str) -> WaitGraph {
        // The scope marker rides in a comment so plain test sources land
        // in scope without a magic path.
        let marked = format!("// analyze: scope(wait-graph)\n{src}");
        analyze_waitgraph(&[parse_file("t.rs", &marked)])
    }

    #[test]
    fn paired_send_recv_is_clean() {
        let r = run(
            "impl M { fn gather(&self) { self.comm.send_vec(0, &v); let x = self.comm.recv_vec(1); } }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.ops.len(), 2);
    }

    #[test]
    fn recv_without_send_is_flagged() {
        let r = run("impl M { fn sink(&self) { let x = self.comm.recv_packet(3); } }");
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "recv-without-send(recv_packet)");
    }

    #[test]
    fn transitive_send_through_helper_counts() {
        let r = run(
            "impl B { fn flush(&mut self) { self.sender.send_offset_chunk(0, &d); } }\nimpl M { fn exchange(&self, buf: &mut B) { buf.flush(); let p = self.comm.recv_packet(2); } }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn asymmetric_barrier_in_if_is_flagged() {
        let r = run(
            "impl M {\n    fn step(&self, odd: bool) {\n        if odd {\n            self.barrier();\n        }\n        self.work();\n    }\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "asymmetric-barrier");
        // The marker comment prepended by `run` shifts everything down a
        // line: the barrier site is line 5, the branch line 4.
        assert_eq!(r.findings[0].line, 5);
        assert!(r.findings[0].chain.iter().any(|c| c.ends_with(":4")), "{:?}", r.findings[0].chain);
    }

    #[test]
    fn uniform_const_condition_is_exempt() {
        let r = run(
            "impl M { fn barrier(&self) { self.wait_or_unwind(); if checker::ENABLED { self.check(); self.wait_or_unwind(); } } }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn diverging_arm_is_exempt() {
        let r = run(
            "impl M { fn guarded(&self, ok: bool) { if ok { self.barrier(); } else { panic!(\"abort\"); } } }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn symmetric_arms_are_clean() {
        let r = run(
            "impl M { fn both(&self, odd: bool) { if odd { self.a(); self.barrier(); } else { self.b(); self.barrier(); } } }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn match_arm_asymmetry_is_flagged() {
        let r = run(
            "impl M {\n    fn pick(&self, k: Kind) {\n        match k {\n            Kind::A => self.barrier(),\n            Kind::B => self.work(),\n        }\n    }\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "asymmetric-barrier");
    }

    #[test]
    fn barrier_wait_match_on_scrutinee_is_symmetric() {
        let r = run(
            "impl M { fn wait_or_unwind(&self) { match self.barrier.wait() { R::Released => {} R::Aborted => panic_any(1), } } }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.ops.iter().filter(|o| o.kind == OpKind::Barrier).count(), 1);
    }

    #[test]
    fn step_regions_tag_ops_and_make_edges() {
        let r = run(
            "impl M { fn run(&self, ctx: &C) { ctx.step(steps::SAMPLING, |c| { c.comm.send_vec(0, &v); c.comm.recv_vec(1); }); ctx.step(steps::EXCHANGE, |c| { c.comm.send_vec(0, &v); c.comm.recv_vec(1); }); } }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(
            r.ops.iter().filter(|o| o.step.as_deref() == Some("sampling")).count(),
            2
        );
        assert_eq!(r.edges.len(), 1);
        assert_eq!((r.edges[0].from.as_str(), r.edges[0].to.as_str()), ("sampling", "exchange"));
        let sc = step_counts(&r.ops);
        assert_eq!(sc.len(), 2);
    }

    #[test]
    fn turbofish_recv_is_classified_and_pairs_with_send() {
        let r = run(
            "impl M {\n    fn gather(&self) {\n        self.comm.send_vec(0, &v);\n        let x = self.comm.recv_vec::<u64>(1);\n    }\n}\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        let recvs: Vec<_> = r.ops.iter().filter(|o| o.kind == OpKind::Recv).collect();
        assert_eq!(recvs.len(), 1, "{:?}", r.ops);
        assert_eq!(recvs[0].callee, "recv_vec");
        assert_eq!(recvs[0].line, 5);
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let pf = parse_file("crates/pgxd/src/comm.rs", "impl C { fn pump(&self) { let x = self.rx.recv_packet(0); } }");
        let r = analyze_waitgraph(&[pf]);
        assert!(r.findings.is_empty());
        assert!(r.ops.is_empty());
    }
}
