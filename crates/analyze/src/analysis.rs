//! The three analyses: lock-order, blocking-under-lock, panic-surface.
//!
//! Guard live ranges are interval sets over the token stream: a `let`-bound
//! guard lives from its acquisition to the end of the enclosing block,
//! truncated by a same-depth `drop(g)` and punched by deeper-depth
//! `drop(g)` branches (so a `drop(ledger); …; panic!()` arm does not count
//! as lock-held). Statement temporaries (`x.lock().insert(..)`) live to the
//! next same-depth `;`. Effects (what a function may acquire or block on,
//! transitively) are computed over a name-resolved call graph and replayed
//! at every call site that executes under a live guard.

use std::collections::{BTreeSet, HashMap};

use crate::items::{Function, ParsedFile, KEYWORDS};
use crate::lexer::Tok;
use crate::report::Finding;

/// Guard-producing method names (empty-paren calls through `pgxd::sync`).
const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// Method names treated as blocking primitives wherever they are called.
const BLOCKING_METHODS: &[&str] = &[
    "wait",
    "wait_timeout",
    "recv",
    "recv_timeout",
    "send",
    "join",
    "acquire",
    "park",
];

/// Std-library method names excluded from last-segment call resolution, so
/// `map.get(..)` never resolves to a workspace fn that happens to be named
/// `get`. A `self.name(..)` call on a type that defines `name` resolves
/// before this list is consulted.
const METHOD_DENYLIST: &[&str] = &[
    "get", "get_mut", "insert", "remove", "push", "pop", "len", "is_empty", "iter", "iter_mut",
    "into_iter", "map", "map_err", "filter", "filter_map", "flat_map", "flatten", "take",
    "replace", "clone", "cloned", "copied", "collect", "sum", "min", "max", "min_by_key",
    "max_by_key", "position", "find", "any", "all", "fold", "for_each", "zip", "rev", "chain",
    "enumerate", "values", "keys", "entry", "contains", "contains_key", "extend", "drain",
    "clear", "retain", "next", "last", "first", "count", "nth", "skip", "take_while",
    "skip_while", "step_by", "chunks", "windows", "split_at", "split_at_mut", "to_vec",
    "to_string", "as_str", "as_slice", "as_ref", "as_mut", "as_bytes", "unwrap", "expect",
    "unwrap_or", "unwrap_or_else", "unwrap_or_default", "ok", "err", "and_then", "or_else",
    "is_some", "is_none", "is_ok", "is_err", "load", "store", "swap", "fetch_add", "fetch_sub",
    "fetch_or", "fetch_and", "compare_exchange", "saturating_add", "saturating_sub",
    "checked_add", "checked_sub", "wrapping_add", "elapsed", "duration_since", "as_secs_f64",
    "as_nanos", "as_micros", "sort", "sort_by", "sort_by_key", "sort_unstable", "binary_search",
    "resize", "reserve", "with_capacity", "copy_from_slice", "clone_from_slice", "fill",
    "starts_with", "ends_with", "trim", "split", "lines", "abs", "powi", "sqrt", "floor",
    "ceil", "round", "to_le_bytes", "to_ne_bytes", "eq", "ne", "cmp", "partial_cmp", "hash",
    "fmt", "borrow", "borrow_mut", "deref", "truncate", "append", "as_ptr", "as_mut_ptr",
    "cast", "offset", "add", "sub", "read_volatile", "write_volatile", "then", "then_some",
];

/// One guard acquisition with its live range.
#[derive(Debug, Clone)]
pub struct Guard {
    /// Token index of the `.` before lock/read/write.
    pub idx: usize,
    /// 1-based source line.
    pub line: usize,
    /// Resolved lock name, e.g. `ChunkPool::shards`.
    pub lock: String,
    /// Binding name for `let`-bound guards.
    pub binding: Option<String>,
    /// Live token-index intervals `[start, end)`.
    pub intervals: Vec<(usize, usize)>,
}

#[derive(Debug, Clone)]
enum RawOp {
    /// A blocking primitive (`.wait(`, `.recv(`, …). `exclude_arg` is the
    /// guard variable a condvar wait releases for its duration.
    Blocking { name: String, exclude_arg: Option<String> },
    /// A call resolved to one or more workspace functions.
    Call { targets: Vec<String> },
}

#[derive(Debug, Clone)]
struct Site {
    idx: usize,
    line: usize,
    op: RawOp,
}

/// Everything extracted from one function body.
pub struct FnSites {
    /// Qualified function name.
    pub name: String,
    /// File the function lives in.
    pub file: String,
    pub guards: Vec<Guard>,
    sites: Vec<Site>,
}

impl FnSites {
    /// Resolved workspace call sites (token index, line, targets) — the
    /// call half of the extracted sites, shared with the v3 passes so
    /// hot-path reachability walks the same graph the effect fixpoint
    /// does.
    pub(crate) fn calls(&self) -> impl Iterator<Item = (usize, usize, &[String])> + '_ {
        self.sites.iter().filter_map(|s| match &s.op {
            RawOp::Call { targets } => Some((s.idx, s.line, targets.as_slice())),
            RawOp::Blocking { .. } => None,
        })
    }
}

/// An effect a function may have, with the call chain that reaches it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    Acquire { lock: String, chain: Vec<String> },
    Block { op: String, chain: Vec<String> },
}

/// One edge of the held-lock graph: `to` acquired while `from` is held.
#[derive(Debug, Clone)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub function: String,
    pub line: usize,
    pub via: Vec<String>,
}

/// The held-lock graph.
#[derive(Default)]
pub struct LockGraph {
    pub nodes: Vec<String>,
    pub edges: Vec<Edge>,
}

/// Full analysis output before allowlist filtering.
pub struct AnalysisResult {
    pub findings: Vec<Finding>,
    pub graph: LockGraph,
    /// Lock-order cycles as node sequences (first node repeated at end).
    pub cycles: Vec<Vec<String>>,
}

pub(crate) fn is_ident(t: &str) -> bool {
    t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
        && !KEYWORDS.contains(&t)
}

/// Token index of the `(` opening the argument list of the call whose
/// name sits at `name_idx`, looking through a `::<…>` turbofish between
/// the name and the parens (`.collect::<Vec<_>>(`, `recv_vec::<T>(`).
/// `None` when the name is not followed by a call.
pub(crate) fn call_open_paren(toks: &[Tok], name_idx: usize) -> Option<usize> {
    let next = toks.get(name_idx + 1)?;
    if next.text == "(" {
        return Some(name_idx + 1);
    }
    if next.text != ":"
        || toks.get(name_idx + 2).map(|t| t.text.as_str()) != Some(":")
        || toks.get(name_idx + 3).map(|t| t.text.as_str()) != Some("<")
    {
        return None;
    }
    let mut depth = 1usize;
    let mut j = name_idx + 4;
    while j < toks.len() && depth > 0 {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            // Ran off the expression: this was `a::b < c`, not a turbofish.
            ";" | "{" | "}" => return None,
            _ => {}
        }
        j += 1;
    }
    if depth != 0 {
        return None;
    }
    (toks.get(j).map(|t| t.text.as_str()) == Some("(")).then_some(j)
}

/// Walks the `.`-chain that ends at the method call whose `.` is at
/// `dot`, backwards, and returns `(root, segments)`: the chain root
/// (`self`, an identifier, or `<expr>` for grouped/literal receivers)
/// and the member/call segment names from the root outwards. Index
/// expressions are skipped (`a.b[i].lock()` → `("a", ["b"])`), call
/// segments keep their name (`self.held.lock().iter()` at the `.iter`
/// dot → `("self", ["held", "lock"])`), and turbofish on intermediate
/// calls is looked through.
pub(crate) fn receiver_chain(pf: &ParsedFile, dot: usize, start: usize) -> (String, Vec<String>) {
    let (root, segs, _) = receiver_chain_span(pf, dot, start);
    (root, segs)
}

/// [`receiver_chain`] plus the token index where the receiver expression
/// begins. The chain skips index brackets and call arguments by design;
/// callers that need everything the receiver *mentions* (e.g. loop
/// variables inside `a[(start + i) % N].lock()`) scan
/// `toks[span_start..dot]` themselves.
pub(crate) fn receiver_chain_span(
    pf: &ParsedFile,
    dot: usize,
    start: usize,
) -> (String, Vec<String>, usize) {
    let toks = &pf.toks;
    // Innermost-first while walking backwards; reversed at the end.
    let mut names: Vec<String> = Vec::new();
    let mut k = dot;
    loop {
        if k <= start {
            break;
        }
        match toks[k - 1].text.as_str() {
            "]" => {
                let mut b = 1usize;
                let mut j = k - 1;
                while j > start && b > 0 {
                    j -= 1;
                    match toks[j].text.as_str() {
                        "]" => b += 1,
                        "[" => b -= 1,
                        _ => {}
                    }
                }
                k = j;
            }
            ")" => {
                let mut b = 1usize;
                let mut j = k - 1;
                while j > start && b > 0 {
                    j -= 1;
                    match toks[j].text.as_str() {
                        ")" => b += 1,
                        "(" => b -= 1,
                        _ => {}
                    }
                }
                // `j` is at `(`; look through a `::<…>` turbofish.
                let mut m = j;
                if m > start && toks[m - 1].text == ">" {
                    let mut ab = 1usize;
                    let mut n = m - 1;
                    while n > start && ab > 0 {
                        n -= 1;
                        match toks[n].text.as_str() {
                            ">" => ab += 1,
                            "<" => ab -= 1,
                            _ => {}
                        }
                    }
                    if ab == 0
                        && n >= start + 2
                        && toks[n - 1].text == ":"
                        && toks[n - 2].text == ":"
                    {
                        m = n - 2;
                    }
                }
                if m > start && is_ident(&toks[m - 1].text) {
                    names.push(toks[m - 1].text.clone());
                    k = m - 1;
                    if k > start && toks[k - 1].text == "." {
                        k -= 1;
                        continue;
                    }
                    break;
                }
                k = j;
                names.push("<expr>".into());
                break;
            }
            t if t == "self" || is_ident(t) => {
                names.push(toks[k - 1].text.clone());
                k -= 1;
                if k > start && toks[k - 1].text == "." {
                    k -= 1;
                    continue;
                }
                break;
            }
            _ => {
                names.push("<expr>".into());
                break;
            }
        }
    }
    if names.is_empty() {
        return ("<expr>".into(), Vec::new(), k);
    }
    names.reverse();
    let root = names.remove(0);
    (root, names, k)
}

/// First `}` after `from` closing the block whose *contents* sit at
/// `inner_depth`, clipped to `end`.
pub(crate) fn block_close(pf: &ParsedFile, from: usize, inner_depth: usize, end: usize) -> usize {
    if inner_depth == 0 {
        return end;
    }
    for j in from..end {
        if pf.toks[j].text == "}" && pf.depth[j] == inner_depth - 1 {
            return j;
        }
    }
    end
}

fn subtract(intervals: &mut Vec<(usize, usize)>, cut: (usize, usize)) {
    let mut out = Vec::new();
    for &(s, e) in intervals.iter() {
        if cut.1 <= s || cut.0 >= e {
            out.push((s, e));
            continue;
        }
        if s < cut.0 {
            out.push((s, cut.0));
        }
        if cut.1 < e {
            out.push((cut.1, e));
        }
    }
    *intervals = out;
}

/// `for <alias> in … self.<field> …` aliases in a function body, mapping
/// the loop variable to the field's lock name.
fn for_aliases(pf: &ParsedFile, f: &Function, self_name: &str) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let (s, e) = f.body;
    let mut i = s;
    while i + 2 < e {
        if pf.toks[i].text == "for" && is_ident(&pf.toks[i + 1].text) && pf.toks[i + 2].text == "in"
        {
            let alias = pf.toks[i + 1].text.clone();
            let mut j = i + 3;
            while j < e && pf.toks[j].text != "{" {
                if pf.toks[j].text == "self"
                    && pf.toks.get(j + 1).map(|t| t.text.as_str()) == Some(".")
                    && pf.toks.get(j + 2).is_some_and(|t| is_ident(&t.text))
                {
                    out.insert(alias.clone(), format!("{self_name}::{}", pf.toks[j + 2].text));
                }
                j += 1;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Names the lock behind the receiver of a guard call whose `.` is at `dot`.
fn resolve_receiver(
    pf: &ParsedFile,
    dot: usize,
    body_start: usize,
    f: &Function,
    aliases: &HashMap<String, String>,
) -> String {
    let self_name = f.self_type.clone().unwrap_or_else(|| f.name.clone());
    let mut k = dot;
    // Skip an index expression: `… [ … ] . lock`.
    if k > body_start && pf.toks[k - 1].text == "]" {
        let mut b = 1usize;
        let mut j = k - 1;
        while j > body_start && b > 0 {
            j -= 1;
            match pf.toks[j].text.as_str() {
                "]" => b += 1,
                "[" => b -= 1,
                _ => {}
            }
        }
        k = j;
    }
    if k == body_start || !is_ident(&pf.toks[k - 1].text) && pf.toks[k - 1].text != "self" {
        return format!("{}::<expr>", f.name);
    }
    let field = pf.toks[k - 1].text.clone();
    if field == "self" {
        return format!("{self_name}::<self>");
    }
    if k >= body_start + 3 && pf.toks[k - 2].text == "." && pf.toks[k - 3].text == "self" {
        return format!("{self_name}::{field}");
    }
    if k >= body_start + 3 && pf.toks[k - 2].text == "." {
        // Deeper chain (`a.b.lock()` with a != self): name by the last
        // field, scoped to the function.
        return format!("{}::{field}", f.name);
    }
    if let Some(aliased) = aliases.get(&field) {
        return aliased.clone();
    }
    format!("{}::{field}", f.name)
}

/// Workspace function index for call resolution.
pub struct FnIndex {
    /// Qualified name -> exists.
    qualified: BTreeSet<String>,
    /// Unqualified last segment -> qualified method names.
    methods_by_name: HashMap<String, Vec<String>>,
    /// Free-function name -> qualified (same) names.
    free_by_name: HashMap<String, Vec<String>>,
    /// Type name -> method last segments.
    type_methods: HashMap<String, BTreeSet<String>>,
}

impl FnIndex {
    pub fn build(files: &[ParsedFile]) -> FnIndex {
        let mut ix = FnIndex {
            qualified: BTreeSet::new(),
            methods_by_name: HashMap::new(),
            free_by_name: HashMap::new(),
            type_methods: HashMap::new(),
        };
        for pf in files {
            for f in &pf.functions {
                ix.qualified.insert(f.name.clone());
                match &f.self_type {
                    Some(ty) => {
                        let short = f.name.rsplit("::").next().unwrap_or(&f.name).to_string();
                        let e = ix.methods_by_name.entry(short.clone()).or_default();
                        if !e.contains(&f.name) {
                            e.push(f.name.clone());
                        }
                        ix.type_methods.entry(ty.clone()).or_default().insert(short);
                    }
                    None => {
                        let e = ix.free_by_name.entry(f.name.clone()).or_default();
                        if !e.contains(&f.name) {
                            e.push(f.name.clone());
                        }
                    }
                }
            }
        }
        ix
    }

    fn resolve_method(&self, name: &str, receiver_is_self: bool, self_type: Option<&str>) -> Vec<String> {
        if GUARD_METHODS.contains(&name) {
            return Vec::new();
        }
        if receiver_is_self {
            if let Some(ty) = self_type {
                if self.type_methods.get(ty).is_some_and(|m| m.contains(name)) {
                    return vec![format!("{ty}::{name}")];
                }
            }
        }
        if METHOD_DENYLIST.contains(&name) {
            return Vec::new();
        }
        self.methods_by_name.get(name).cloned().unwrap_or_default()
    }

    fn resolve_path(&self, qualifier: &str, name: &str, self_type: Option<&str>) -> Vec<String> {
        let qual = if qualifier == "Self" {
            match self_type {
                Some(ty) => ty,
                None => return Vec::new(),
            }
        } else {
            qualifier
        };
        if qual.chars().next().is_some_and(|c| c.is_uppercase()) {
            let q = format!("{qual}::{name}");
            if self.qualified.contains(&q) {
                return vec![q];
            }
            return Vec::new();
        }
        // Module-qualified: fall back to any workspace fn by last segment.
        let mut out = self.free_by_name.get(name).cloned().unwrap_or_default();
        out.extend(self.methods_by_name.get(name).cloned().unwrap_or_default());
        out
    }

    fn resolve_free(&self, name: &str) -> Vec<String> {
        if name == "drop" || METHOD_DENYLIST.contains(&name) {
            return Vec::new();
        }
        self.free_by_name.get(name).cloned().unwrap_or_default()
    }
}

/// Extracts guards and operation sites from one function body.
pub fn extract_fn(pf: &ParsedFile, f: &Function, ix: &FnIndex) -> FnSites {
    let (s, e) = f.body;
    let aliases = {
        let self_name = f.self_type.clone().unwrap_or_else(|| f.name.clone());
        for_aliases(pf, f, &self_name)
    };
    let mut guards = Vec::new();
    let mut sites = Vec::new();
    let mut i = s;
    while i < e {
        let t = &pf.toks[i].text;
        // Method call: `. name (`, with `. name ::<…> (` turbofish.
        if t == "." && i + 2 < e && is_ident(&pf.toks[i + 1].text) {
            let Some(open) = call_open_paren(&pf.toks, i + 1).filter(|&o| o < e) else {
                i += 1;
                continue;
            };
            let name = pf.toks[i + 1].text.clone();
            let empty = pf.toks.get(open + 1).map(|t| t.text.as_str()) == Some(")");
            if GUARD_METHODS.contains(&name.as_str()) && empty {
                guards.push(guard_site(pf, i, s, e, f, &aliases));
                i = open + 2;
                continue;
            }
            if BLOCKING_METHODS.contains(&name.as_str()) {
                let exclude_arg = if name.starts_with("wait") {
                    first_arg_ident(pf, open, e)
                } else {
                    None
                };
                sites.push(Site {
                    idx: i,
                    line: pf.toks[i].line,
                    op: RawOp::Blocking { name: name.clone(), exclude_arg },
                });
            }
            let receiver_is_self = i > s && pf.toks[i - 1].text == "self";
            let targets = ix.resolve_method(&name, receiver_is_self, f.self_type.as_deref());
            if !targets.is_empty() {
                sites.push(Site {
                    idx: i,
                    line: pf.toks[i].line,
                    op: RawOp::Call { targets },
                });
            }
            i = open + 1;
            continue;
        }
        // Path or free call: `name (` (or `name ::<…> (`) not preceded
        // by `.`
        if is_ident(t) && i + 1 < e && (i == s || pf.toks[i - 1].text != ".") {
            let Some(open) = call_open_paren(&pf.toks, i).filter(|&o| o < e) else {
                i += 1;
                continue;
            };
            let name = t.clone();
            let targets = if i >= s + 3
                && pf.toks[i - 1].text == ":"
                && pf.toks[i - 2].text == ":"
                && is_ident_or_kw(&pf.toks[i - 3].text)
            {
                ix.resolve_path(&pf.toks[i - 3].text, &name, f.self_type.as_deref())
            } else {
                ix.resolve_free(&name)
            };
            if !targets.is_empty() {
                sites.push(Site {
                    idx: i,
                    line: pf.toks[i].line,
                    op: RawOp::Call { targets },
                });
            }
            i = open + 1;
            continue;
        }
        i += 1;
    }
    FnSites {
        name: f.name.clone(),
        file: pf.rel.clone(),
        guards,
        sites,
    }
}

fn is_ident_or_kw(t: &str) -> bool {
    t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// First identifier inside a paren group opening at `open`, skipping `&`
/// and `mut`.
fn first_arg_ident(pf: &ParsedFile, open: usize, end: usize) -> Option<String> {
    let mut j = open + 1;
    while j < end && (pf.toks[j].text == "&" || pf.toks[j].text == "mut") {
        j += 1;
    }
    if j < end && is_ident(&pf.toks[j].text) {
        Some(pf.toks[j].text.clone())
    } else {
        None
    }
}

/// Builds a Guard for the `.lock()` whose `.` is at `dot`.
fn guard_site(
    pf: &ParsedFile,
    dot: usize,
    body_start: usize,
    body_end: usize,
    f: &Function,
    aliases: &HashMap<String, String>,
) -> Guard {
    let lock = resolve_receiver(pf, dot, body_start, f, aliases);
    // Statement start: token after the previous `;`, `{` or `}`.
    let mut st = dot;
    while st > body_start && !matches!(pf.toks[st - 1].text.as_str(), ";" | "{" | "}") {
        st -= 1;
    }
    let binding = if pf.toks[st].text == "let" {
        let mut b = st + 1;
        if b < body_end && pf.toks[b].text == "mut" {
            b += 1;
        }
        if b < body_end && is_ident(&pf.toks[b].text) {
            Some((pf.toks[b].text.clone(), pf.depth[st]))
        } else {
            None
        }
    } else {
        None
    };
    let mut intervals;
    match binding {
        Some((name, let_depth)) => {
            let base_end = block_close(pf, dot, let_depth, body_end);
            intervals = vec![(dot, base_end)];
            // Process drop(name) sites in order.
            let mut d = dot;
            while d + 3 < base_end {
                if pf.toks[d].text == "drop"
                    && pf.toks[d + 1].text == "("
                    && pf.toks[d + 2].text == name
                    && pf.toks[d + 3].text == ")"
                {
                    let dd = pf.depth[d];
                    if dd == let_depth {
                        subtract(&mut intervals, (d, base_end));
                        break;
                    }
                    if dd > let_depth {
                        subtract(&mut intervals, (d, block_close(pf, d, dd, base_end)));
                    }
                }
                d += 1;
            }
            return Guard {
                idx: dot,
                line: pf.toks[dot].line,
                lock,
                binding: Some(name),
                intervals,
            };
        }
        None => {
            // Temporary: live to the next same-depth `;`, else block end.
            let d = pf.depth[dot];
            let mut end = block_close(pf, dot, d, body_end);
            for j in dot..end {
                if pf.toks[j].text == ";" && pf.depth[j] == d {
                    end = j;
                    break;
                }
            }
            intervals = vec![(dot, end)];
        }
    }
    Guard {
        idx: dot,
        line: pf.toks[dot].line,
        lock,
        binding: None,
        intervals,
    }
}

/// Memoized transitive effects of every function.
fn compute_effects(all: &HashMap<String, FnSites>) -> HashMap<String, Vec<Effect>> {
    let mut memo: HashMap<String, Vec<Effect>> = HashMap::new();
    let mut names: Vec<&String> = all.keys().collect();
    names.sort();
    for name in names {
        let mut visiting = BTreeSet::new();
        effects_of(name, all, &mut memo, &mut visiting);
    }
    memo
}

fn effects_of(
    name: &str,
    all: &HashMap<String, FnSites>,
    memo: &mut HashMap<String, Vec<Effect>>,
    visiting: &mut BTreeSet<String>,
) -> Vec<Effect> {
    if let Some(e) = memo.get(name) {
        return e.clone();
    }
    if visiting.contains(name) {
        // Recursion: the cycle contributes no additional effects.
        return Vec::new();
    }
    let Some(fs) = all.get(name) else {
        return Vec::new();
    };
    visiting.insert(name.to_string());
    let mut out: BTreeSet<Effect> = BTreeSet::new();
    for g in &fs.guards {
        out.insert(Effect::Acquire { lock: g.lock.clone(), chain: Vec::new() });
    }
    for s in &fs.sites {
        match &s.op {
            RawOp::Blocking { name: op, .. } => {
                out.insert(Effect::Block { op: op.clone(), chain: Vec::new() });
            }
            RawOp::Call { targets } => {
                for t in targets {
                    for eff in effects_of(t, all, memo, visiting) {
                        let with_chain = match eff {
                            Effect::Acquire { lock, mut chain } => {
                                chain.insert(0, t.clone());
                                Effect::Acquire { lock, chain }
                            }
                            Effect::Block { op, mut chain } => {
                                chain.insert(0, t.clone());
                                Effect::Block { op, chain }
                            }
                        };
                        out.insert(with_chain);
                    }
                }
            }
        }
    }
    visiting.remove(name);
    let v: Vec<Effect> = out.into_iter().collect();
    memo.insert(name.to_string(), v.clone());
    v
}

/// Runs lock-order and blocking-under-lock over the extracted functions.
pub fn analyze_locks(files: &[ParsedFile]) -> AnalysisResult {
    let ix = FnIndex::build(files);
    let mut all: HashMap<String, FnSites> = HashMap::new();
    for pf in files {
        for f in &pf.functions {
            let fs = extract_fn(pf, f, &ix);
            // Two impls of one type may collide on a helper name; merge.
            match all.remove(&f.name) {
                Some(mut prev) => {
                    prev.guards.extend(fs.guards);
                    prev.sites.extend(fs.sites);
                    all.insert(f.name.clone(), prev);
                }
                None => {
                    all.insert(f.name.clone(), fs);
                }
            }
        }
    }
    let effects = compute_effects(&all);

    let mut findings = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    let mut nodes: BTreeSet<String> = BTreeSet::new();

    let mut fn_names: Vec<&String> = all.keys().collect();
    fn_names.sort();
    for name in fn_names {
        let fs = &all[name];
        for g in &fs.guards {
            nodes.insert(g.lock.clone());
        }
        // Guard-under-guard within the same function.
        for (gi, g) in fs.guards.iter().enumerate() {
            let held = held_at(fs, g.idx, gi, None);
            for h in held {
                push_edge(&mut edges, &h, &g.lock, fs, g.line, &[]);
                findings.push(lock_finding(fs, g.line, &h, &g.lock, &[]));
            }
        }
        for s in &fs.sites {
            match &s.op {
                RawOp::Blocking { name: op, exclude_arg } => {
                    let held = held_at(fs, s.idx, usize::MAX, exclude_arg.as_deref());
                    for h in held {
                        findings.push(Finding {
                            rule: "blocking-under-lock".into(),
                            file: fs.file.clone(),
                            line: s.line,
                            function: fs.name.clone(),
                            held: Some(h.clone()),
                            operation: op.clone(),
                            chain: Vec::new(),
                            message: format!(
                                "blocking call `{op}` while holding `{h}` in `{}`",
                                fs.name
                            ),
                        });
                    }
                }
                RawOp::Call { targets } => {
                    let held = held_at(fs, s.idx, usize::MAX, None);
                    if held.is_empty() {
                        continue;
                    }
                    for t in targets {
                        for eff in effects.get(t).cloned().unwrap_or_default() {
                            let (chain, is_acquire, what) = match &eff {
                                Effect::Acquire { lock, chain } => {
                                    let mut c = vec![t.clone()];
                                    c.extend(chain.iter().cloned());
                                    (c, true, lock.clone())
                                }
                                Effect::Block { op, chain } => {
                                    let mut c = vec![t.clone()];
                                    c.extend(chain.iter().cloned());
                                    (c, false, op.clone())
                                }
                            };
                            for h in &held {
                                if is_acquire {
                                    if *h == what {
                                        continue; // reentrant self-edge is a cycle's job
                                    }
                                    push_edge(&mut edges, h, &what, fs, s.line, &chain);
                                    findings.push(lock_finding(fs, s.line, h, &what, &chain));
                                    nodes.insert(what.clone());
                                } else {
                                    findings.push(Finding {
                                        rule: "blocking-under-lock".into(),
                                        file: fs.file.clone(),
                                        line: s.line,
                                        function: fs.name.clone(),
                                        held: Some(h.clone()),
                                        operation: what.clone(),
                                        chain: chain.clone(),
                                        message: format!(
                                            "blocking call `{what}` (via {}) while holding `{h}` in `{}`",
                                            chain.join(" -> "),
                                            fs.name
                                        ),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Dedup findings by (rule, file, function, held, operation, line).
    findings.sort_by_key(|f| f.sort_key());
    findings.dedup_by(|a, b| a.sort_key() == b.sort_key());

    let cycles = find_cycles(&nodes, &edges);
    for cyc in &cycles {
        let path = cyc.join(" -> ");
        // Anchor the finding at the first edge of the cycle.
        let anchor = edges
            .iter()
            .find(|e| e.from == cyc[0] && e.to == cyc[1]);
        let (file, line, function) = anchor
            .map(|e| (e.file.clone(), e.line, e.function.clone()))
            .unwrap_or_default();
        let provenance: Vec<String> = cyc
            .windows(2)
            .filter_map(|w| {
                edges.iter().find(|e| e.from == w[0] && e.to == w[1]).map(|e| {
                    if e.via.is_empty() {
                        format!("{} -> {} at {}:{} in {}", e.from, e.to, e.file, e.line, e.function)
                    } else {
                        format!(
                            "{} -> {} at {}:{} in {} via {}",
                            e.from,
                            e.to,
                            e.file,
                            e.line,
                            e.function,
                            e.via.join(" -> ")
                        )
                    }
                })
            })
            .collect();
        findings.push(Finding {
            rule: "lock-order".into(),
            file,
            line,
            function,
            held: None,
            operation: format!("cycle({path})"),
            chain: provenance,
            message: format!("lock-order cycle: {path}"),
        });
    }

    AnalysisResult {
        findings,
        graph: LockGraph {
            nodes: nodes.into_iter().collect(),
            edges,
        },
        cycles,
    }
}

fn lock_finding(fs: &FnSites, line: usize, held: &str, acquired: &str, chain: &[String]) -> Finding {
    let via = if chain.is_empty() {
        String::new()
    } else {
        format!(" (via {})", chain.join(" -> "))
    };
    Finding {
        rule: "blocking-under-lock".into(),
        file: fs.file.clone(),
        line,
        function: fs.name.clone(),
        held: Some(held.to_string()),
        operation: format!("lock({acquired})"),
        chain: chain.to_vec(),
        message: format!(
            "acquires `{acquired}`{via} while holding `{held}` in `{}`",
            fs.name
        ),
    }
}

/// Locks held at token index `idx` (excluding guard number `skip` and any
/// binding named `exclude`).
fn held_at(fs: &FnSites, idx: usize, skip: usize, exclude: Option<&str>) -> Vec<String> {
    let mut out = Vec::new();
    for (gi, g) in fs.guards.iter().enumerate() {
        if gi == skip {
            continue;
        }
        if let (Some(b), Some(x)) = (&g.binding, exclude) {
            if b == x {
                continue;
            }
        }
        if g.idx < idx
            && g.intervals.iter().any(|&(s, e)| idx >= s && idx < e)
            && !out.contains(&g.lock)
        {
            out.push(g.lock.clone());
        }
    }
    out
}

fn push_edge(edges: &mut Vec<Edge>, from: &str, to: &str, fs: &FnSites, line: usize, via: &[String]) {
    if edges
        .iter()
        .any(|e| e.from == from && e.to == to && e.file == fs.file && e.line == line)
    {
        return;
    }
    edges.push(Edge {
        from: from.to_string(),
        to: to.to_string(),
        file: fs.file.clone(),
        function: fs.name.clone(),
        line,
        via: via.to_vec(),
    });
}

/// Elementary cycles by DFS with an on-stack check; canonicalized by
/// rotating to the smallest node and deduplicated.
fn find_cycles(nodes: &BTreeSet<String>, edges: &[Edge]) -> Vec<Vec<String>> {
    let mut adj: HashMap<&str, BTreeSet<&str>> = HashMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().insert(e.to.as_str());
    }
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in nodes {
        let mut path: Vec<&str> = Vec::new();
        dfs_cycles(start.as_str(), &adj, &mut path, &mut seen);
    }
    seen.into_iter().collect()
}

fn dfs_cycles<'a>(
    node: &'a str,
    adj: &HashMap<&'a str, BTreeSet<&'a str>>,
    path: &mut Vec<&'a str>,
    seen: &mut BTreeSet<Vec<String>>,
) {
    if let Some(pos) = path.iter().position(|&n| n == node) {
        // Canonical rotation: start at the smallest node in the cycle.
        let cyc: Vec<&str> = path[pos..].to_vec();
        let min = cyc.iter().enumerate().min_by_key(|(_, n)| **n).map(|(i, _)| i).unwrap_or(0);
        let mut rot: Vec<String> = cyc[min..].iter().chain(cyc[..min].iter()).map(|s| s.to_string()).collect();
        rot.push(rot[0].clone());
        seen.insert(rot);
        return;
    }
    if path.len() > 32 {
        return;
    }
    path.push(node);
    if let Some(next) = adj.get(node) {
        for n in next {
            dfs_cycles(n, adj, path, seen);
        }
    }
    path.pop();
}

/// Panic-surface pass over one file: `unwrap`/`expect` calls and direct
/// indexing in non-test functions, unless annotated with
/// `analyze: allow(panic-surface): <reason>` on the line, directly above
/// it, or directly above the enclosing `fn`.
pub fn panic_surface(pf: &ParsedFile) -> Vec<Finding> {
    let allowed = allowed_lines(pf);
    let mut findings = Vec::new();
    let mut seen: BTreeSet<(usize, &'static str)> = BTreeSet::new();
    for f in &pf.functions {
        let (s, e) = f.body;
        let mut i = s;
        while i < e {
            let t = &pf.toks[i].text;
            if t == "."
                && i + 2 < e
                && matches!(pf.toks[i + 1].text.as_str(), "unwrap" | "expect")
                && pf.toks[i + 2].text == "("
            {
                let line = pf.toks[i + 1].line;
                let kind: &'static str = if pf.toks[i + 1].text == "unwrap" { "unwrap" } else { "expect" };
                if !allowed.contains(&line) && seen.insert((line, kind)) {
                    findings.push(panic_finding(pf, f, line, kind));
                }
                i += 3;
                continue;
            }
            if t == "[" && i > s {
                let prev = &pf.toks[i - 1].text;
                let flag = prev == ")" || prev == "]" || is_ident(prev);
                let line = pf.toks[i].line;
                if flag && !allowed.contains(&line) && seen.insert((line, "indexing")) {
                    findings.push(panic_finding(pf, f, line, "indexing"));
                }
            }
            i += 1;
        }
    }
    findings
}

fn panic_finding(pf: &ParsedFile, f: &Function, line: usize, kind: &'static str) -> Finding {
    Finding {
        rule: "panic-surface".into(),
        file: pf.rel.clone(),
        line,
        function: f.name.clone(),
        held: None,
        operation: kind.to_string(),
        chain: Vec::new(),
        message: format!(
            "`{kind}` on the hot path in `{}` — annotate with `analyze: allow(panic-surface): <reason>` or handle the error",
            f.name
        ),
    }
}

const PANIC_MARKER: &str = "analyze: allow(panic-surface)";

/// Lines covered by panic-surface annotations. A marker comment covers its
/// own line; a marker on its own line covers the next code line, or — when
/// that line starts a `fn` — the whole function body. The marker must carry
/// a non-empty reason after the colon.
fn allowed_lines(pf: &ParsedFile) -> BTreeSet<usize> {
    marker_allowed_lines(pf, PANIC_MARKER)
}

/// Same coverage rules as panic-surface annotations, for any inline
/// marker (`analyze: allow(<rule>)`): own line, next code line, or the
/// whole function body when the next code line starts a `fn`. The reason
/// after the colon is mandatory everywhere.
pub(crate) fn marker_allowed_lines(pf: &ParsedFile, marker: &str) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    for (li, comment) in pf.stripped.comments.iter().enumerate() {
        let Some(pos) = comment.find(marker) else {
            continue;
        };
        let rest = &comment[pos + marker.len()..];
        let reason = rest.trim_start_matches(':').trim();
        if reason.is_empty() {
            continue; // a reason is mandatory; bare markers cover nothing
        }
        let line = li + 1;
        out.insert(line);
        // Scan down past blank / comment-only / attribute lines.
        let mut n = line + 1;
        while n <= pf.stripped.code.len() {
            let code = pf.stripped.code[n - 1].trim();
            if code.is_empty() || code.starts_with('#') || code.starts_with('[') || code == "]" {
                n += 1;
                continue;
            }
            break;
        }
        if n > pf.stripped.code.len() {
            continue;
        }
        if let Some(f) = pf.functions.iter().find(|f| f.line == n) {
            // Cover every line of the function body.
            let (_, e) = f.body;
            let last = pf.toks.get(e).map(|t| t.line).unwrap_or_else(|| {
                pf.toks.get(e.saturating_sub(1)).map(|t| t.line).unwrap_or(n)
            });
            for l in n..=last {
                out.insert(l);
            }
        } else {
            out.insert(n);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;

    fn run(src: &str) -> AnalysisResult {
        analyze_locks(&[parse_file("t.rs", src)])
    }

    #[test]
    fn nested_guard_makes_edge_and_finding() {
        let r = run(
            "impl A { fn f(&self) { let g = self.x.lock(); let h = self.y.lock(); } }",
        );
        assert_eq!(r.graph.edges.len(), 1);
        assert_eq!(r.graph.edges[0].from, "A::x");
        assert_eq!(r.graph.edges[0].to, "A::y");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].operation, "lock(A::y)");
        assert!(r.cycles.is_empty());
    }

    #[test]
    fn same_depth_drop_truncates() {
        let r = run(
            "impl A { fn f(&self) { let g = self.x.lock(); drop(g); let h = self.y.lock(); } }",
        );
        assert!(r.graph.edges.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn deeper_drop_punches_branch_but_keeps_tail() {
        let r = run(
            "impl A { fn f(&self) { let g = self.x.lock(); if c { drop(g); self.y.lock().get(); } let h = self.z.lock(); } }",
        );
        // The y acquire inside the dropped branch is not under x; the z
        // acquire after the branch is.
        assert_eq!(r.graph.edges.len(), 1, "{:?}", r.graph.edges);
        assert_eq!(r.graph.edges[0].to, "A::z");
    }

    #[test]
    fn temp_guard_ends_at_semicolon() {
        let r = run(
            "impl A { fn f(&self) { self.x.lock().insert(1); let h = self.y.lock(); } }",
        );
        assert!(r.graph.edges.is_empty(), "{:?}", r.graph.edges);
    }

    #[test]
    fn blocking_through_helper_is_reported_with_chain() {
        let r = run(
            "impl A { fn f(&self) { let g = self.x.lock(); self.h(); } fn h(&self) { self.rx.recv(); } }",
        );
        let f = r
            .findings
            .iter()
            .find(|f| f.operation == "recv")
            .expect("recv finding");
        assert_eq!(f.held.as_deref(), Some("A::x"));
        assert_eq!(f.chain, ["A::h"]);
    }

    #[test]
    fn cycle_across_two_functions_detected() {
        let r = run(
            "impl A { fn f(&self) { let g = self.x.lock(); self.h(); } fn h(&self) { let g = self.y.lock(); self.k(); } fn k(&self) { let g = self.x.lock(); } }",
        );
        assert!(!r.cycles.is_empty(), "edges: {:?}", r.graph.edges);
        assert!(r.findings.iter().any(|f| f.rule == "lock-order"));
    }

    #[test]
    fn for_alias_resolves_to_field() {
        let r = run(
            "impl A { fn f(&self) { for s in &self.shards { let g = s.lock(); let h = self.y.lock(); } } }",
        );
        assert_eq!(r.graph.edges.len(), 1);
        assert_eq!(r.graph.edges[0].from, "A::shards");
    }

    #[test]
    fn condvar_wait_excludes_its_guard() {
        let r = run(
            "impl A { fn f(&self) { let g = self.x.lock(); self.cv.wait(g); } }",
        );
        assert!(
            !r.findings.iter().any(|f| f.operation == "wait"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn denylisted_methods_do_not_resolve() {
        let r = run(
            "impl A { fn get(&self) { self.rx.recv(); } fn f(&self) { let g = self.x.lock(); self.map.get(0); } }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn panic_surface_flags_and_annotations_cover() {
        let pf = parse_file(
            "t.rs",
            "impl A {\n fn f(&self, v: &[u8]) {\n  let a = v[0];\n  let b = v.first().unwrap();\n }\n \
             // analyze: allow(panic-surface): bounds proven by caller\n fn g(&self, v: &[u8]) { let a = v[1]; v.get(0).expect(\"x\"); }\n}\n",
        );
        let f = panic_surface(&pf);
        let kinds: Vec<&str> = f.iter().map(|x| x.operation.as_str()).collect();
        assert!(kinds.contains(&"indexing"));
        assert!(kinds.contains(&"unwrap"));
        assert!(f.iter().all(|x| x.function == "A::f"), "{f:?}");
    }

    #[test]
    fn unwrap_or_else_not_flagged() {
        let pf = parse_file("t.rs", "fn f(v: Option<u8>) { v.unwrap_or_else(|| 0); }");
        assert!(panic_surface(&pf).is_empty());
    }
}
