//! Item extraction over the token stream: functions (with their impl-type
//! qualification and body token ranges), `use` declarations (with `as`
//! renames expanded, for the alias-aware sync-shim lint), and test-region
//! detection so `#[cfg(test)]` code is excluded from the analyses.

use crate::lexer::{strip, tokens, StrippedFile, Tok};

/// One binding introduced by a `use` declaration, with its full path.
///
/// `use std::sync::Mutex as M;` yields `{ path: "std::sync::Mutex",
/// name: "M" }`; brace groups yield one entry per leaf; globs yield a
/// `name` of `"*"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// 1-based line of the binding (the leaf segment or rename).
    pub line: usize,
    /// The full path the binding refers to, `::`-joined.
    pub path: String,
    /// The in-scope identifier the path is bound to.
    pub name: String,
    /// Token index range `[start, end)` of the whole `use` item, so lints
    /// can tell a declaration site from a usage site.
    pub decl_tokens: (usize, usize),
}

/// One extracted function item.
#[derive(Debug, Clone)]
pub struct Function {
    /// Qualified name: `Type::name` inside an `impl Type`, plain `name`
    /// for free functions.
    pub name: String,
    /// The `impl` type this is a method of, if any.
    pub self_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index range `[start, end)` of the body (inside the braces).
    pub body: (usize, usize),
}

/// A parsed source file: stripped text, tokens, and extracted items.
pub struct ParsedFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Per-line code/comment channels.
    pub stripped: StrippedFile,
    /// Code tokens.
    pub toks: Vec<Tok>,
    /// Brace depth (count of enclosing `{`) per token index.
    pub depth: Vec<usize>,
    /// Non-test functions, in source order.
    pub functions: Vec<Function>,
    /// All `use` bindings (test regions included — an aliased import is a
    /// policy violation wherever it appears).
    pub uses: Vec<UseDecl>,
}

/// Rust keywords that can precede `(` without being a call.
pub const KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "yield", "async", "await", "union",
];

/// Index of the `}` matching the `{` at `open` (token indices), or the
/// last token if unbalanced.
pub fn matching_brace(toks: &[Tok], open: usize) -> usize {
    debug_assert_eq!(toks[open].text, "{");
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len() - 1
}

/// Index of the `)` matching the `(` at `open` (token indices), or the
/// last token if unbalanced.
pub fn matching_paren(toks: &[Tok], open: usize) -> usize {
    debug_assert_eq!(toks[open].text, "(");
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len() - 1
}

/// Parses one source file into tokens and items.
pub fn parse_file(rel: &str, source: &str) -> ParsedFile {
    let stripped = strip(source);
    let toks = tokens(&stripped.code);

    // Brace depth per token (depth of the token itself; a `{` is at the
    // depth outside it, its contents one deeper).
    let mut depth = Vec::with_capacity(toks.len());
    let mut d = 0usize;
    for t in &toks {
        match t.text.as_str() {
            "{" => {
                depth.push(d);
                d += 1;
            }
            "}" => {
                d = d.saturating_sub(1);
                depth.push(d);
            }
            _ => depth.push(d),
        }
    }

    let uses = parse_uses(&toks);
    let test_regions = find_test_regions(&toks);
    let impl_regions = find_impl_regions(&toks);
    let functions = extract_functions(&toks, &test_regions, &impl_regions);

    ParsedFile {
        rel: rel.to_string(),
        stripped,
        toks,
        depth,
        functions,
        uses,
    }
}

/// Extracts every `use` binding in the token stream.
pub fn parse_uses(toks: &[Tok]) -> Vec<UseDecl> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "use" {
            let start = i;
            // Find the terminating `;` (use items cannot contain braces
            // other than group braces, which never nest `;`).
            let mut end = i + 1;
            while end < toks.len() && toks[end].text != ";" {
                end += 1;
            }
            let decl = (start, (end + 1).min(toks.len()));
            let mut j = i + 1;
            parse_use_tree(toks, &mut j, end, &mut Vec::new(), decl, &mut out);
            i = end + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Recursive descent over one use tree between `*j` and `end` (exclusive).
fn parse_use_tree(
    toks: &[Tok],
    j: &mut usize,
    end: usize,
    prefix: &mut Vec<String>,
    decl: (usize, usize),
    out: &mut Vec<UseDecl>,
) {
    let depth_at_entry = prefix.len();
    let mut last_line = toks.get(*j).map(|t| t.line).unwrap_or(0);
    while *j < end {
        let t = &toks[*j];
        last_line = t.line;
        match t.text.as_str() {
            ":" => {
                *j += 1; // `::` is two tokens; skip both
                if *j < end && toks[*j].text == ":" {
                    *j += 1;
                }
            }
            "{" => {
                *j += 1;
                loop {
                    parse_use_tree(toks, j, end, prefix, decl, out);
                    if *j < end && toks[*j].text == "," {
                        *j += 1;
                        continue;
                    }
                    break;
                }
                if *j < end && toks[*j].text == "}" {
                    *j += 1;
                }
                // A brace group ends this tree; emit nothing for the prefix.
                prefix.truncate(depth_at_entry);
                return;
            }
            "}" | "," => {
                // End of this subtree: emit the accumulated path, if any.
                break;
            }
            "as" => {
                *j += 1;
                if *j < end {
                    let alias = toks[*j].text.clone();
                    let line = toks[*j].line;
                    *j += 1;
                    if prefix.len() > depth_at_entry {
                        out.push(UseDecl {
                            line,
                            path: prefix.join("::"),
                            name: alias,
                            decl_tokens: decl,
                        });
                    }
                    prefix.truncate(depth_at_entry);
                    return;
                }
            }
            "*" => {
                *j += 1;
                out.push(UseDecl {
                    line: t.line,
                    path: prefix.join("::"),
                    name: "*".to_string(),
                    decl_tokens: decl,
                });
                prefix.truncate(depth_at_entry);
                return;
            }
            _ => {
                prefix.push(t.text.clone());
                *j += 1;
            }
        }
    }
    if prefix.len() > depth_at_entry {
        out.push(UseDecl {
            line: last_line,
            path: prefix.join("::"),
            name: prefix.last().cloned().unwrap_or_default(),
            decl_tokens: decl,
        });
    }
    prefix.truncate(depth_at_entry);
}

/// Token ranges of `#[cfg(test)] mod … { … }` bodies (also matches
/// `#[cfg(all(test, …))]`).
fn find_test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].text == "#" && toks[i + 1].text == "[" {
            // Scan the attribute for a bare `test` token.
            let mut j = i + 2;
            let mut bracket = 1usize;
            let mut has_test = false;
            let mut is_cfg = false;
            while j < toks.len() && bracket > 0 {
                match toks[j].text.as_str() {
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "cfg" => is_cfg = true,
                    "test" => has_test = true,
                    _ => {}
                }
                j += 1;
            }
            if is_cfg && has_test {
                // Skip further attributes, then expect `mod name {`.
                let mut k = j;
                while k + 1 < toks.len() && toks[k].text == "#" && toks[k + 1].text == "[" {
                    let mut b = 0usize;
                    k += 1;
                    while k < toks.len() {
                        match toks[k].text.as_str() {
                            "[" => b += 1,
                            "]" => {
                                b -= 1;
                                if b == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                if toks.get(k).map(|t| t.text.as_str()) == Some("mod") {
                    let mut m = k;
                    while m < toks.len() && toks[m].text != "{" && toks[m].text != ";" {
                        m += 1;
                    }
                    if m < toks.len() && toks[m].text == "{" {
                        regions.push((m, matching_brace(toks, m)));
                    }
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    regions
}

/// Token ranges of `impl … { … }` bodies with the implemented type name
/// (`impl Trait for Type` resolves to `Type`).
fn find_impl_regions(toks: &[Tok]) -> Vec<(usize, usize, String)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "impl" {
            let mut j = i + 1;
            let mut angle = 0usize;
            let mut first_ident: Option<String> = None;
            let mut after_for: Option<String> = None;
            let mut saw_for = false;
            while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle = angle.saturating_sub(1),
                    "for" if angle == 0 => saw_for = true,
                    w if angle == 0
                        && w.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
                        && !KEYWORDS.contains(&w) =>
                    {
                        if saw_for {
                            if after_for.is_none() {
                                after_for = Some(w.to_string());
                            }
                        } else if first_ident.is_none() {
                            first_ident = Some(w.to_string());
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if j < toks.len() && toks[j].text == "{" {
                let ty = after_for.or(first_ident).unwrap_or_else(|| "<impl>".to_string());
                regions.push((j, matching_brace(toks, j), ty));
                // Continue scanning *inside* the impl for nothing — fns are
                // found by the flat fn scan; just move past the header.
                i = j + 1;
                continue;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// True if any attribute group directly before token `i` contains a bare
/// `test` ident (`#[test]`, `#[tokio::test]`, …).
fn has_test_attr(toks: &[Tok], mut i: usize) -> bool {
    // Walk backwards over `pub`, visibility parens, `async`, `unsafe`,
    // `const`, `extern` to the start of the item, then over attributes.
    while i > 0 {
        let t = toks[i - 1].text.as_str();
        if matches!(t, "pub" | "async" | "unsafe" | "const" | "extern") {
            i -= 1;
        } else if t == ")" {
            // possible `pub(crate)`
            let mut j = i - 1;
            let mut p = 1usize;
            while j > 0 && p > 0 {
                j -= 1;
                match toks[j].text.as_str() {
                    ")" => p += 1,
                    "(" => p -= 1,
                    _ => {}
                }
            }
            i = j;
        } else {
            break;
        }
    }
    // Now consume attribute groups ending right before i: `# [ … ]`.
    while i > 0 && toks[i - 1].text == "]" {
        let mut j = i - 1;
        let mut b = 1usize;
        while j > 0 && b > 0 {
            j -= 1;
            match toks[j].text.as_str() {
                "]" => b += 1,
                "[" => b -= 1,
                _ => {}
            }
        }
        if j == 0 || toks[j - 1].text != "#" {
            return false;
        }
        if toks[j..i].iter().any(|t| t.text == "test") {
            return true;
        }
        i = j - 1;
    }
    false
}

fn extract_functions(
    toks: &[Tok],
    test_regions: &[(usize, usize)],
    impl_regions: &[(usize, usize, String)],
) -> Vec<Function> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "fn" {
            i += 1;
            continue;
        }
        // `fn(` is a fn-pointer type, not an item.
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if !name_tok.text.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') {
            i += 1;
            continue;
        }
        if test_regions.iter().any(|&(s, e)| i > s && i < e) || has_test_attr(toks, i) {
            i += 2;
            continue;
        }
        // Find the body `{`, or `;` for a bodyless trait method. Angle
        // brackets in generics/return types cannot contain `{`/`;` in this
        // codebase's style, so a flat scan suffices.
        let mut j = i + 2;
        while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
            j += 1;
        }
        if j >= toks.len() || toks[j].text == ";" {
            i = j + 1;
            continue;
        }
        let close = matching_brace(toks, j);
        let self_type = impl_regions
            .iter()
            .filter(|&&(s, e, _)| i > s && i < e)
            .map(|(_, _, ty)| ty.clone())
            .next_back();
        let name = match &self_type {
            Some(ty) => format!("{ty}::{}", name_tok.text),
            None => name_tok.text.clone(),
        };
        out.push(Function {
            name,
            self_type,
            line: toks[i].line,
            body: (j + 1, close),
        });
        i = j + 1; // nested fns inside the body are still found
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uses(src: &str) -> Vec<(String, String)> {
        parse_uses(&tokens(&strip(src).code))
            .into_iter()
            .map(|u| (u.path, u.name))
            .collect()
    }

    #[test]
    fn plain_use_and_rename() {
        assert_eq!(
            uses("use std::sync::Mutex;\nuse std::sync::Mutex as M;\n"),
            [
                ("std::sync::Mutex".to_string(), "Mutex".to_string()),
                ("std::sync::Mutex".to_string(), "M".to_string()),
            ]
        );
    }

    #[test]
    fn brace_groups_nested_and_renamed() {
        assert_eq!(
            uses("use std::sync::{Arc, Mutex as M, atomic::{AtomicUsize, Ordering}};\n"),
            [
                ("std::sync::Arc".to_string(), "Arc".to_string()),
                ("std::sync::Mutex".to_string(), "M".to_string()),
                ("std::sync::atomic::AtomicUsize".to_string(), "AtomicUsize".to_string()),
                ("std::sync::atomic::Ordering".to_string(), "Ordering".to_string()),
            ]
        );
    }

    #[test]
    fn glob_import() {
        assert_eq!(uses("use super::*;\n"), [("super".to_string(), "*".to_string())]);
    }

    #[test]
    fn functions_get_impl_qualification() {
        let pf = parse_file(
            "a.rs",
            "struct P;\nimpl P { fn get(&self) {} }\nimpl Drop for P { fn drop(&mut self) {} }\nfn free() {}\n",
        );
        let names: Vec<&str> = pf.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["P::get", "P::drop", "free"]);
        assert_eq!(pf.functions[1].self_type.as_deref(), Some("P"));
    }

    #[test]
    fn test_code_is_skipped() {
        let pf = parse_file(
            "a.rs",
            "fn real() {}\n#[cfg(test)]\nmod tests {\n fn helper() {}\n #[test]\n fn t() {}\n}\n\
             #[cfg(all(test, not(loom)))]\nmod more {\n fn h2() {}\n}\n#[test]\nfn stray() {}\n",
        );
        let names: Vec<&str> = pf.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["real"]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let pf = parse_file("a.rs", "struct R { g: unsafe fn(*mut u8) }\nfn f() {}\n");
        let names: Vec<&str> = pf.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["f"]);
    }

    #[test]
    fn generic_impl_and_trait_impl_types() {
        let pf = parse_file(
            "a.rs",
            "impl<T: Send + 'static> Buf<T> { fn push(&mut self) {} }\n\
             impl<T> Drop for Buf<T> { fn drop(&mut self) {} }\n",
        );
        let names: Vec<&str> = pf.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["Buf::push", "Buf::drop"]);
    }
}
