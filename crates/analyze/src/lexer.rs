//! Comment/string-stripping scanner and tokenizer.
//!
//! This is the scanner `cargo xtask lint` grew in PR 3, promoted to a
//! shared module so the lint and the analyzer agree exactly on what is
//! code and what is prose. It handles line comments, nested block
//! comments, string literals (plain, byte, raw with any `#` count), char
//! literals, and lifetimes; everything the analyses look at afterwards is
//! plain tokens with line numbers, so prose mentioning `unsafe` or
//! `.lock()` can never produce a finding.

/// A source file split into per-line code and comment text, with string
/// and char literals removed from the code.
pub struct StrippedFile {
    /// Code text of each line (string/char literal contents removed).
    pub code: Vec<String>,
    /// Comment text of each line (`//`, `///`, `//!`, and block comments).
    pub comments: Vec<String>,
}

/// One code token: an identifier/keyword/number word, or a single
/// punctuation char, with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line.
    pub line: usize,
    /// Token text.
    pub text: String,
}

/// Strips `source` into code and comment channels. Handles line comments,
/// nested block comments, string literals (plain, byte, raw with any `#`
/// count), char literals, and lifetimes.
pub fn strip(source: &str) -> StrippedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];
    let mut i = 0;
    // Whether the previous code char continues an identifier (so an `r` or
    // `b` here is part of a name like `ptr`, not a raw-string prefix).
    let mut prev_ident = false;

    macro_rules! newline {
        () => {{
            code.push(String::new());
            comments.push(String::new());
        }};
    }
    macro_rules! push_code {
        ($c:expr) => {{
            let c: char = $c;
            if c == '\n' {
                newline!();
            } else {
                code.last_mut().unwrap().push(c);
            }
            prev_ident = c.is_alphanumeric() || c == '_';
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment (covers `///` and `//!` too).
        if c == '/' && next == Some('/') {
            i += 2;
            while i < chars.len() && chars[i] != '\n' {
                comments.last_mut().unwrap().push(chars[i]);
                i += 1;
            }
            continue;
        }

        // Block comment, nested.
        if c == '/' && next == Some('*') {
            i += 2;
            let mut depth = 1usize;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        newline!();
                    } else {
                        comments.last_mut().unwrap().push(chars[i]);
                    }
                    i += 1;
                }
            }
            continue;
        }

        // Raw string r"..." / r#"..."# (and br variants via the `b` case
        // falling through to here on its second char).
        if c == 'r' && !prev_ident && matches!(next, Some('"') | Some('#')) {
            let mut j = i + 1;
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                // Consume until `"` followed by `hashes` hashes.
                j += 1;
                loop {
                    match chars.get(j) {
                        None => break,
                        Some('"') => {
                            let mut k = 0;
                            while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break;
                            }
                            j += 1;
                        }
                        Some('\n') => {
                            newline!();
                            j += 1;
                        }
                        Some(_) => j += 1,
                    }
                }
                i = j;
                prev_ident = true; // a literal ends like an expression
                continue;
            }
            // `r#ident` raw identifier: drop the `#` so the whole thing
            // lexes as ONE non-keyword word (`r#fn` must come out as the
            // identifier `rfn`, never as a stray `#` plus the keyword
            // `fn`, which would token-spoof the item scanner).
            if chars.get(i + 1) == Some(&'#')
                && chars
                    .get(i + 2)
                    .is_some_and(|ch| ch.is_alphanumeric() || *ch == '_')
            {
                push_code!(c);
                i += 2;
                continue;
            }
            push_code!(c);
            i += 1;
            continue;
        }

        // Byte-string prefix: skip the `b` and let the literal opener that
        // follows be handled on the next iteration. Only a real opener
        // counts — `br` must be followed by `"`/`#`, or words such as
        // `broadcast` would lose their leading `b`.
        if c == 'b' && !prev_ident {
            let opens_literal = match next {
                Some('"') | Some('\'') => true,
                Some('r') => matches!(chars.get(i + 2), Some('"') | Some('#')),
                _ => false,
            };
            if opens_literal {
                // `prev_ident` must stay false so the next char is seen as
                // a literal opener.
                prev_ident = false;
                i += 1;
                continue;
            }
        }

        // String literal.
        if c == '"' {
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    // An escape consumes the next char too — which may be a
                    // literal newline (backslash line continuation); it must
                    // still advance the line counter or every reported line
                    // number after it drifts by one.
                    '\\' => {
                        if chars.get(i + 1) == Some(&'\n') {
                            newline!();
                        }
                        i += 2;
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        newline!();
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            prev_ident = true;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if next == Some('\\') {
                // Escaped char: consume the backslash AND the escaped
                // character itself before scanning for the closing quote
                // (otherwise `'\''` would stop at the escaped quote and
                // leave the real closing quote behind as a stray token),
                // counting any newline crossed on malformed input.
                i += 2;
                if i < chars.len() {
                    if chars[i] == '\n' {
                        newline!();
                    }
                    i += 1;
                }
                while i < chars.len() && chars[i] != '\'' {
                    if chars[i] == '\n' {
                        newline!();
                    }
                    i += 1;
                }
                i += 1;
                prev_ident = true;
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') && next.is_some() {
                // 'x' — including '"', which must not open a string.
                i += 3;
                prev_ident = true;
                continue;
            }
            // Lifetime or label: emit the quote as code and continue.
            push_code!(c);
            i += 1;
            continue;
        }

        push_code!(c);
        i += 1;
    }

    StrippedFile { code, comments }
}

/// Code tokens with their 1-based line numbers: identifiers (including
/// keywords and numbers) as words, everything else as single chars.
pub fn tokens(code: &[String]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (idx, line) in code.iter().enumerate() {
        let mut word = String::new();
        for ch in line.chars() {
            if ch.is_alphanumeric() || ch == '_' {
                word.push(ch);
            } else {
                if !word.is_empty() {
                    out.push(Tok {
                        line: idx + 1,
                        text: std::mem::take(&mut word),
                    });
                }
                if !ch.is_whitespace() {
                    out.push(Tok {
                        line: idx + 1,
                        text: ch.to_string(),
                    });
                }
            }
        }
        if !word.is_empty() {
            out.push(Tok {
                line: idx + 1,
                text: word,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<String> {
        tokens(&strip(src).code).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_removed() {
        let s = strip("let a = \"x.lock()\"; // b.lock()\n/* c.lock() */ let d = 1;\n");
        assert!(!s.code.join("\n").contains("lock"));
        assert!(s.comments[0].contains("b.lock()"));
        assert!(s.comments[1].contains("c.lock()"));
    }

    #[test]
    fn raw_strings_and_chars_skipped() {
        assert_eq!(
            toks("let x = r#\"a \"quoted\" lock()\"#; let c = '\"';"),
            ["let", "x", "=", ";", "let", "c", "=", ";"]
        );
    }

    #[test]
    fn lifetimes_survive() {
        assert_eq!(
            toks("fn f<'a>(x: &'a str) {}"),
            ["fn", "f", "<", "'", "a", ">", "(", "x", ":", "&", "'", "a", "str", ")", "{", "}"]
        );
    }

    #[test]
    fn b_prefix_only_swallowed_before_literals() {
        assert_eq!(
            toks("fn broadcast(b: u8) { let x = b\"z\"; let y = br#\"w\"#; }"),
            ["fn", "broadcast", "(", "b", ":", "u8", ")", "{", "let", "x", "=", ";", "let", "y",
             "=", ";", "}"]
        );
    }

    #[test]
    fn multiline_raw_string_keeps_line_numbers_exact() {
        // Three lines inside the raw literal; the token after it must
        // land on the real source line, hash-count variants included.
        let src = "let a = r#\"one\ntwo \"quoted\"\nthree\"#;\nlet b = r##\"x\"#\ny\"##;\nfn tail() {}\n";
        let t = tokens(&strip(src).code);
        let fn_tok = t.iter().find(|t| t.text == "fn").expect("fn token");
        assert_eq!(fn_tok.line, 6);
        let b_tok = t.iter().find(|t| t.text == "b").expect("b token");
        assert_eq!(b_tok.line, 4);
    }

    #[test]
    fn nested_block_comment_keeps_line_numbers_exact() {
        let src = "/* outer\n /* inner\n  spanning */\n still outer */\nfn after() {}\n";
        let s = strip(src);
        assert_eq!(s.code.len(), 6, "one entry per source line plus trailing");
        let t = tokens(&s.code);
        assert_eq!(t.iter().find(|t| t.text == "fn").map(|t| t.line), Some(5));
        assert!(s.comments[1].contains("inner"));
    }

    #[test]
    fn string_escaped_newline_counts_the_line() {
        // A backslash line continuation inside a string literal spans two
        // source lines; code after the literal must not drift.
        let src = "let a = \"one \\\ntwo\";\nfn after() {}\n";
        let t = tokens(&strip(src).code);
        assert_eq!(t.iter().find(|t| t.text == "fn").map(|t| t.line), Some(3));
    }

    #[test]
    fn escaped_quote_char_literal_fully_consumed() {
        // `'\''` must not leave the closing quote behind as a stray
        // lifetime token.
        assert_eq!(toks("let q = '\\''; let n = '\\n';"), ["let", "q", "=", ";", "let", "n", "=", ";"]);
    }

    #[test]
    fn raw_identifiers_do_not_spoof_keywords() {
        // `r#fn` is an identifier, not the `fn` keyword: the item scanner
        // must never see a bare `fn` token from it.
        assert_eq!(toks("let x = r#fn; call(r#match)"), ["let", "x", "=", "rfn", ";", "call", "(", "rmatch", ")"]);
    }

    #[test]
    fn line_numbers_are_one_based() {
        let t = tokens(&strip("a\nb\n\nc\n").code);
        let lines: Vec<(usize, &str)> = t.iter().map(|t| (t.line, t.text.as_str())).collect();
        assert_eq!(lines, [(1, "a"), (2, "b"), (4, "c")]);
    }
}
