//! Findings, the `analyze.allow` allowlist, and report rendering (human
//! text and hand-rolled JSON — no serde, the crate stays dependency-free).

use std::collections::BTreeSet;

use crate::analysis::{AnalysisResult, Edge};
use crate::determinism::NondetSource;
use crate::hotpath::HotRegion;
use crate::loopdisc::LoopSite;
use crate::waitgraph::{step_counts, StepEdge, WaitOp};

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// `lock-order`, `blocking-under-lock`, `panic-surface`,
    /// `chunk-custody`, `wait-graph`, `atomics-ordering`,
    /// `hot-path-alloc`, `loop-discipline`, `determinism`, or
    /// `stale-allow` / `allow-format` for allowlist hygiene.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Qualified function name, empty when not applicable.
    pub function: String,
    /// The lock held when the operation happened, if any.
    pub held: Option<String>,
    /// What happened: `lock(Name)`, a blocking op name, a panic kind, or
    /// `cycle(..)`.
    pub operation: String,
    /// Call chain from the function to the operation (empty if direct).
    pub chain: Vec<String>,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Allowlist key: stable across line-number churn so one entry covers
    /// every call site of the same shape.
    pub fn key(&self) -> String {
        format!(
            "{} | {} | {} | {} | {}",
            self.rule,
            self.file,
            self.function,
            self.held.as_deref().unwrap_or("-"),
            self.operation
        )
    }

    /// Sort/dedup key including the line.
    pub fn sort_key(&self) -> (String, String, usize, String, String, String) {
        (
            self.file.clone(),
            self.function.clone(),
            self.line,
            self.rule.clone(),
            self.held.clone().unwrap_or_default(),
            self.operation.clone(),
        )
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// One parsed `analyze.allow` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// 1-based line in the allow file.
    pub line: usize,
    /// Normalized key (same shape as [`Finding::key`]).
    pub key: String,
    /// Whether a `#` justification comment directly precedes the entry.
    pub justified: bool,
}

/// Parses `analyze.allow` text: `#` comments, blank lines, and one
/// finding key per line (`rule | file | function | held | operation`,
/// whitespace-insensitive around `|`). Every entry must be preceded by at
/// least one `#` comment explaining it.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut out = Vec::new();
    let mut prev_was_comment = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            prev_was_comment = false;
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            prev_was_comment = !rest.trim().is_empty();
            continue;
        }
        let fields: Vec<String> = line.split('|').map(|f| f.trim().to_string()).collect();
        let key = fields.join(" | ");
        out.push(AllowEntry {
            line: i + 1,
            key,
            justified: prev_was_comment,
        });
        // Consecutive entries may share one comment block.
    }
    out
}

/// Chunk-custody summary data for the report (the findings themselves
/// ride in the shared findings list).
#[derive(Debug, Clone, Default)]
pub struct CustodySummary {
    /// Total `ChunkPool::acquire` call sites seen.
    pub acquire_sites: usize,
    /// Pooled bindings tracked through a dataflow scan.
    pub tracked_bindings: usize,
    /// Functions that hand pooled custody to their caller.
    pub custody_fns: Vec<String>,
}

/// Final report after allowlist filtering.
pub struct Report {
    /// Findings that remain (not allowlisted) — non-empty means failure.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an allow entry.
    pub allowlisted: Vec<Finding>,
    pub graph_nodes: Vec<String>,
    pub graph_edges: Vec<Edge>,
    pub cycles: Vec<Vec<String>>,
    /// Wait-graph model: every barrier/send/recv site (v2).
    pub wait_ops: Vec<WaitOp>,
    /// §IV step transitions observed inside one function (v2).
    pub step_edges: Vec<StepEdge>,
    /// Chunk-custody summary (v2).
    pub custody: CustodySummary,
    /// Hot-region roots the hot-path-alloc pass walked from (v3).
    pub hot_regions: Vec<HotRegion>,
    /// Recv/acquire loops the loop-discipline pass judged (v3).
    pub loop_sites: Vec<LoopSite>,
    /// Non-determinism sources in replay-critical files, including
    /// annotated ones (v3) — the audit surface stays visible.
    pub nondet_sources: Vec<NondetSource>,
    /// Per-pass wall time, `(pass, ms)`. Emitted only on the `--json`
    /// stdout path; the committed report file carries `null` so timing
    /// jitter never shows up as report drift.
    pub timings_ms: Vec<(String, u64)>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.cycles.is_empty()
    }
}

/// Applies the allowlist: suppresses matching findings, errors on stale or
/// unjustified entries. Lock-order cycles, chunk-custody leaks, and
/// loop-discipline unbounded growth cannot be allowlisted: a cycle is a
/// deadlock, a leak is a correctness bug, and unbounded growth in a recv
/// loop is an OOM under backlog — never a judgment call, fix the code
/// instead.
pub fn apply_allowlist(
    result: AnalysisResult,
    entries: &[AllowEntry],
    allow_path: &str,
) -> Report {
    let mut findings = Vec::new();
    let mut allowlisted = Vec::new();
    let mut used: BTreeSet<usize> = BTreeSet::new();
    for f in result.findings {
        if f.rule == "lock-order"
            || (f.rule == "chunk-custody" && f.operation.starts_with("leak("))
            || (f.rule == "loop-discipline" && f.operation.starts_with("unbounded-growth("))
        {
            findings.push(f);
            continue;
        }
        let key = f.key();
        match entries.iter().position(|e| e.key == key) {
            Some(i) => {
                used.insert(i);
                allowlisted.push(f);
            }
            None => findings.push(f),
        }
    }
    for (i, e) in entries.iter().enumerate() {
        if !e.justified {
            findings.push(Finding {
                rule: "allow-format".into(),
                file: allow_path.to_string(),
                line: e.line,
                function: String::new(),
                held: None,
                operation: e.key.clone(),
                chain: Vec::new(),
                message: format!(
                    "allow entry has no `#` justification comment above it: {}",
                    e.key
                ),
            });
        }
        if !used.contains(&i) {
            findings.push(Finding {
                rule: "stale-allow".into(),
                file: allow_path.to_string(),
                line: e.line,
                function: String::new(),
                held: None,
                operation: e.key.clone(),
                chain: Vec::new(),
                message: format!("allow entry matches no current finding (stale): {}", e.key),
            });
        }
    }
    Report {
        findings,
        allowlisted,
        graph_nodes: result.graph.nodes,
        graph_edges: result.graph.edges,
        cycles: result.cycles,
        wait_ops: Vec::new(),
        step_edges: Vec::new(),
        custody: CustodySummary::default(),
        hot_regions: Vec::new(),
        loop_sites: Vec::new(),
        nondet_sources: Vec::new(),
        timings_ms: Vec::new(),
    }
}

/// Renders the human-readable report.
pub fn render_human(r: &Report) -> String {
    let mut out = String::new();
    if r.findings.is_empty() {
        out.push_str("pgxd-analyze: clean");
    } else {
        for f in &r.findings {
            out.push_str(&f.to_string());
            out.push('\n');
            if !f.chain.is_empty() && f.rule != "lock-order" {
                out.push_str(&format!("    via: {}\n", f.chain.join(" -> ")));
            }
            if f.rule == "lock-order" {
                for step in &f.chain {
                    out.push_str(&format!("    {step}\n"));
                }
            }
        }
        out.push_str(&format!("pgxd-analyze: {} finding(s)", r.findings.len()));
    }
    out.push_str(&format!(
        " ({} allowlisted, {} lock(s), {} order edge(s), {} cycle(s), {} wait site(s), {} acquire site(s), {} tracked binding(s), {} hot region(s), {} loop site(s), {} nondet source(s))\n",
        r.allowlisted.len(),
        r.graph_nodes.len(),
        r.graph_edges.len(),
        r.cycles.len(),
        r.wait_ops.len(),
        r.custody.acquire_sites,
        r.custody.tracked_bindings,
        r.hot_regions.len(),
        r.loop_sites.len(),
        r.nondet_sources.len()
    ));
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_str_array(items: &[String]) -> String {
    let inner: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
    format!("[{}]", inner.join(","))
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"function\":\"{}\",\"held\":{},\"operation\":\"{}\",\"chain\":{},\"message\":\"{}\"}}",
        esc(&f.rule),
        esc(&f.file),
        f.line,
        esc(&f.function),
        match &f.held {
            Some(h) => format!("\"{}\"", esc(h)),
            None => "null".to_string(),
        },
        esc(&f.operation),
        json_str_array(&f.chain),
        esc(&f.message)
    )
}

/// Renders the machine-readable report (`results/analyze_report.json`).
pub fn render_json(r: &Report) -> String {
    let findings: Vec<String> = r.findings.iter().map(finding_json).collect();
    let allowed: Vec<String> = r.allowlisted.iter().map(finding_json).collect();
    let edges: Vec<String> = r
        .graph_edges
        .iter()
        .map(|e| {
            format!(
                "{{\"from\":\"{}\",\"to\":\"{}\",\"file\":\"{}\",\"function\":\"{}\",\"line\":{},\"via\":{}}}",
                esc(&e.from),
                esc(&e.to),
                esc(&e.file),
                esc(&e.function),
                e.line,
                json_str_array(&e.via)
            )
        })
        .collect();
    let cycles: Vec<String> = r.cycles.iter().map(|c| json_str_array(c)).collect();
    let wait_ops: Vec<String> = r
        .wait_ops
        .iter()
        .map(|o| {
            format!(
                "{{\"kind\":\"{}\",\"file\":\"{}\",\"line\":{},\"function\":\"{}\",\"callee\":\"{}\",\"step\":{}}}",
                o.kind.name(),
                esc(&o.file),
                o.line,
                esc(&o.function),
                esc(&o.callee),
                match &o.step {
                    Some(s) => format!("\"{}\"", esc(s)),
                    None => "null".to_string(),
                }
            )
        })
        .collect();
    let steps: Vec<String> = step_counts(&r.wait_ops)
        .into_iter()
        .map(|(s, b, sd, rc)| {
            format!(
                "{{\"step\":\"{}\",\"barriers\":{b},\"sends\":{sd},\"recvs\":{rc}}}",
                esc(&s)
            )
        })
        .collect();
    let step_edges: Vec<String> = r
        .step_edges
        .iter()
        .map(|e| {
            format!(
                "{{\"from\":\"{}\",\"to\":\"{}\",\"function\":\"{}\"}}",
                esc(&e.from),
                esc(&e.to),
                esc(&e.function)
            )
        })
        .collect();
    let hot_regions: Vec<String> = r
        .hot_regions
        .iter()
        .map(|h| {
            format!(
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"file\":\"{}\",\"line\":{}}}",
                esc(&h.name),
                esc(&h.kind),
                esc(&h.file),
                h.line
            )
        })
        .collect();
    let loop_sites: Vec<String> = r
        .loop_sites
        .iter()
        .map(|l| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"function\":\"{}\",\"kind\":\"{}\"}}",
                esc(&l.file),
                l.line,
                esc(&l.function),
                esc(&l.kind)
            )
        })
        .collect();
    let nondet: Vec<String> = r
        .nondet_sources
        .iter()
        .map(|n| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"function\":\"{}\",\"kind\":\"{}\"}}",
                esc(&n.file),
                n.line,
                esc(&n.function),
                esc(&n.kind)
            )
        })
        .collect();
    let timings = if r.timings_ms.is_empty() {
        "null".to_string()
    } else {
        let inner: Vec<String> = r
            .timings_ms
            .iter()
            .map(|(p, ms)| format!("\"{}\": {ms}", esc(p)))
            .collect();
        format!("{{{}}}", inner.join(", "))
    };
    format!(
        "{{\n  \"schema\": \"pgxd-analyze/3\",\n  \"clean\": {},\n  \"findings\": [{}],\n  \"allowlisted\": [{}],\n  \"lock_graph\": {{\"nodes\": {}, \"edges\": [{}]}},\n  \"cycles\": [{}],\n  \"wait_graph\": {{\"ops\": [{}], \"steps\": [{}], \"step_edges\": [{}]}},\n  \"custody\": {{\"acquire_sites\": {}, \"tracked_bindings\": {}, \"custody_fns\": {}}},\n  \"hot_regions\": [{}],\n  \"loop_sites\": [{}],\n  \"nondet_sources\": [{}],\n  \"timings_ms\": {},\n  \"summary\": {{\"findings\": {}, \"allowlisted\": {}, \"locks\": {}, \"edges\": {}, \"cycles\": {}, \"wait_ops\": {}, \"acquire_sites\": {}, \"tracked_bindings\": {}, \"hot_regions\": {}, \"loop_sites\": {}, \"nondet_sources\": {}}}\n}}\n",
        r.is_clean(),
        findings.join(","),
        allowed.join(","),
        json_str_array(&r.graph_nodes),
        edges.join(","),
        cycles.join(","),
        wait_ops.join(","),
        steps.join(","),
        step_edges.join(","),
        r.custody.acquire_sites,
        r.custody.tracked_bindings,
        json_str_array(&r.custody.custody_fns),
        hot_regions.join(","),
        loop_sites.join(","),
        nondet.join(","),
        timings,
        r.findings.len(),
        r.allowlisted.len(),
        r.graph_nodes.len(),
        r.graph_edges.len(),
        r.cycles.len(),
        r.wait_ops.len(),
        r.custody.acquire_sites,
        r.custody.tracked_bindings,
        r.hot_regions.len(),
        r.loop_sites.len(),
        r.nondet_sources.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::LockGraph;

    fn finding(key_parts: (&str, &str, &str, Option<&str>, &str)) -> Finding {
        Finding {
            rule: key_parts.0.into(),
            file: key_parts.1.into(),
            line: 1,
            function: key_parts.2.into(),
            held: key_parts.3.map(|s| s.to_string()),
            operation: key_parts.4.into(),
            chain: Vec::new(),
            message: "m".into(),
        }
    }

    fn result(findings: Vec<Finding>) -> AnalysisResult {
        AnalysisResult {
            findings,
            graph: LockGraph::default(),
            cycles: Vec::new(),
        }
    }

    #[test]
    fn allow_entry_suppresses_matching_finding() {
        let f = finding(("blocking-under-lock", "a.rs", "A::f", Some("A::x"), "recv"));
        let entries = parse_allowlist("# justified because reasons\nblocking-under-lock | a.rs | A::f | A::x | recv\n");
        let r = apply_allowlist(result(vec![f]), &entries, "analyze.allow");
        assert!(r.is_clean(), "{:?}", r.findings);
        assert_eq!(r.allowlisted.len(), 1);
    }

    #[test]
    fn stale_entry_is_an_error() {
        let entries = parse_allowlist("# why\nblocking-under-lock | a.rs | A::f | A::x | recv\n");
        let r = apply_allowlist(result(Vec::new()), &entries, "analyze.allow");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "stale-allow");
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn unjustified_entry_is_an_error() {
        let f = finding(("blocking-under-lock", "a.rs", "A::f", Some("A::x"), "recv"));
        let entries = parse_allowlist("blocking-under-lock | a.rs | A::f | A::x | recv\n");
        let r = apply_allowlist(result(vec![f]), &entries, "analyze.allow");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "allow-format");
    }

    #[test]
    fn lock_order_cycles_cannot_be_allowlisted() {
        let f = finding(("lock-order", "a.rs", "A::f", None, "cycle(A::x -> A::y -> A::x)"));
        let key = f.key();
        let entries = parse_allowlist(&format!("# nope\n{key}\n"));
        let r = apply_allowlist(result(vec![f]), &entries, "analyze.allow");
        assert!(r.findings.iter().any(|f| f.rule == "lock-order"));
    }

    #[test]
    fn json_escapes_and_shape() {
        let f = finding(("panic-surface", "a\"b.rs", "A::f", None, "unwrap"));
        let r = apply_allowlist(result(vec![f]), &[], "analyze.allow");
        let j = render_json(&r);
        assert!(j.contains("\"schema\": \"pgxd-analyze/3\""));
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("\"wait_graph\""));
        assert!(j.contains("\"custody\""));
        assert!(j.contains("\"hot_regions\""));
        assert!(j.contains("\"loop_sites\""));
        assert!(j.contains("\"nondet_sources\""));
        // No timings on the persisted path: the field is null so the
        // committed report never drifts on wall-clock jitter.
        assert!(j.contains("\"timings_ms\": null"));
    }

    #[test]
    fn timings_render_on_the_stdout_path() {
        let mut r = apply_allowlist(result(Vec::new()), &[], "analyze.allow");
        r.timings_ms.push(("hot-path-alloc".to_string(), 7));
        let j = render_json(&r);
        assert!(j.contains("\"timings_ms\": {\"hot-path-alloc\": 7}"), "{j}");
    }

    #[test]
    fn unbounded_growth_cannot_be_allowlisted() {
        let f = finding((
            "loop-discipline",
            "a.rs",
            "A::pump",
            None,
            "unbounded-growth(push:self.backlog)",
        ));
        let key = f.key();
        let entries = parse_allowlist(&format!("# nope\n{key}\n"));
        let r = apply_allowlist(result(vec![f]), &entries, "analyze.allow");
        assert!(r.findings.iter().any(|f| f.rule == "loop-discipline"));
        // Loop-invariant acquire stays allowlistable (sometimes the lock
        // is deliberately re-taken to bound hold time).
        let a = finding((
            "loop-discipline",
            "a.rs",
            "A::scan",
            None,
            "loop-invariant-acquire(lock:self.state)",
        ));
        let key = a.key();
        let entries = parse_allowlist(&format!("# re-acquired to bound hold time\n{key}\n"));
        let r = apply_allowlist(result(vec![a]), &entries, "analyze.allow");
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn custody_leaks_cannot_be_allowlisted() {
        let f = finding(("chunk-custody", "a.rs", "A::f", None, "leak(buf)"));
        let key = f.key();
        let entries = parse_allowlist(&format!("# nope\n{key}\n"));
        let r = apply_allowlist(result(vec![f]), &entries, "analyze.allow");
        assert!(r.findings.iter().any(|f| f.rule == "chunk-custody"));
        // Double-release stays allowlistable (a judgment call when arms
        // are provably exclusive in ways the analysis cannot see).
        let d = finding(("chunk-custody", "a.rs", "A::f", None, "double-release(buf)"));
        let key = d.key();
        let entries = parse_allowlist(&format!("# arms are exclusive via invariant X\n{key}\n"));
        let r = apply_allowlist(result(vec![d]), &entries, "analyze.allow");
        assert!(r.is_clean(), "{:?}", r.findings);
    }
}
