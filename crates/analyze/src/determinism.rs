//! Replay-determinism pass (`determinism`, schema pgxd-analyze/3).
//!
//! The fault plane (PR 6) promises seed replay: the same
//! `PGXD_FAULT_SEED` reproduces the same injected failures, and the
//! splitter/sampling pipeline promises that a batch sorts the same way
//! on every run. Both promises die quietly the moment replay-critical
//! code consults a non-deterministic source. This pass statically pins
//! the invariant over the replay-critical files:
//!
//! * `fault.rs` — injection decision sites,
//! * `sampling.rs` / `investigator.rs` — splitter selection,
//! * `partition.rs` — ghost-cell/partition decisions,
//!
//! plus any file carrying an `analyze: scope(determinism)` comment
//! (fixtures). Flagged sources:
//!
//! * **hashmap-iteration** — iterating a `HashMap`/`HashSet`
//!   (`.iter()`, `.keys()`, `.values()`, `.drain()`, `.retain()`,
//!   `.into_iter()`, or a `for` over it): iteration order is
//!   `RandomState`-seeded per process, so any order reaching output,
//!   wire order, or a decision diverges across runs. Membership tests
//!   and keyed insert/remove are clean — only *iteration* is flagged.
//!   Receivers are typed heuristically: a name is map-typed when the
//!   file declares it with a `HashMap`/`HashSet` type ascription
//!   (field, param, or `let`) or binds it from `HashMap::new()`-style
//!   constructors.
//! * **random-state** — any `RandomState` mention: an explicitly
//!   seeded hasher is the fix, not a fresh random one.
//! * **instant-now** — `Instant::now` / `SystemTime::now` anywhere in
//!   a replay-critical file. A deliberate approximation: wall-clock
//!   reads that only feed telemetry are annotated in place rather than
//!   whitelisted structurally, so every new timing read forces the
//!   author to say why replay survives it.
//! * **thread-rng** — `thread_rng`/`rand::random` calls; replay code
//!   must derive randomness from the run seed.
//!
//! All four kinds accept `analyze: allow(determinism): <reason>`
//! (panic-surface coverage rules, reason mandatory) — unlike custody
//! leaks and unbounded growth these sometimes *are* justified (e.g. a
//! wall-clock barrier timeout that aborts the run rather than steering
//! replayed decisions). The `nondet_sources` inventory in the report
//! lists every detected source *including* annotated ones, so the
//! audit surface stays visible.

use std::collections::HashSet;

use crate::analysis::{call_open_paren, is_ident, marker_allowed_lines, receiver_chain};
use crate::items::ParsedFile;
use crate::report::Finding;
use crate::waitgraph::body_open;

/// Replay-critical files (suffix match on workspace paths).
const DET_FILES: [&str; 4] = [
    "crates/pgxd/src/fault.rs",
    "crates/core/src/sampling.rs",
    "crates/core/src/investigator.rs",
    "crates/pgxd/src/partition.rs",
];

/// Marker pulling extra files (fixtures) into scope.
pub const SCOPE_MARKER: &str = "analyze: scope(determinism)";

/// Inline escape hatch, panic-surface coverage rules.
pub const ALLOW_MARKER: &str = "analyze: allow(determinism)";

/// Map methods whose call means *iteration* (order-dependent).
const ITER_METHODS: [&str; 8] =
    ["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain", "retain"];

/// One detected source, annotated or not — the audit inventory.
#[derive(Debug, Clone)]
pub struct NondetSource {
    pub file: String,
    pub line: usize,
    pub function: String,
    /// `hashmap-iteration` | `random-state` | `instant-now` |
    /// `thread-rng`.
    pub kind: String,
}

pub struct Determinism {
    pub findings: Vec<Finding>,
    pub sources: Vec<NondetSource>,
}

fn in_scope(pf: &ParsedFile) -> bool {
    DET_FILES.iter().any(|s| pf.rel.ends_with(s))
        || pf.stripped.comments.iter().any(|c| c.contains(SCOPE_MARKER))
}

/// Names declared with a `HashMap`/`HashSet` type in this file: struct
/// fields, fn params, and `let` ascriptions (`name : … HashMap < … >`),
/// plus `let [mut] name = … HashMap::new()/with_capacity()/default()`.
fn hash_typed_names(pf: &ParsedFile) -> HashSet<String> {
    let toks = &pf.toks;
    let mut out = HashSet::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        // `name :` followed by a type mentioning HashMap/HashSet before
        // the ascription ends (`,` `;` `)` `}` `=` at angle depth 0).
        if is_ident(&toks[i].text)
            && toks[i + 1].text == ":"
            && toks.get(i + 2).map(|t| t.text.as_str()) != Some(":")
            && (i == 0 || toks[i - 1].text != ":")
        {
            let mut depth = 0i32;
            let mut j = i + 2;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    "HashMap" | "HashSet" => {
                        out.insert(toks[i].text.clone());
                    }
                    "," | ";" | ")" | "}" | "=" | "{" if depth <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
        }
        // `let [mut] name = … HashMap :: new ( …` up to the `;`.
        if toks[i].text == "let" {
            let mut j = i + 1;
            if toks.get(j).map(|t| t.text.as_str()) == Some("mut") {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| is_ident(&t.text)) {
                let name = toks[j].text.clone();
                let mut k = j + 1;
                let mut saw_eq = false;
                while k < toks.len() && toks[k].text != ";" {
                    if toks[k].text == "=" {
                        saw_eq = true;
                    }
                    if saw_eq && (toks[k].text == "HashMap" || toks[k].text == "HashSet") {
                        out.insert(name.clone());
                        break;
                    }
                    k += 1;
                }
            }
        }
        i += 1;
    }
    out
}

pub fn analyze_determinism(files: &[ParsedFile]) -> Determinism {
    let mut findings = Vec::new();
    let mut sources = Vec::new();
    for pf in files {
        if !in_scope(pf) {
            continue;
        }
        let allowed = marker_allowed_lines(pf, ALLOW_MARKER);
        let hashed = hash_typed_names(pf);
        for f in &pf.functions {
            let (s, e) = f.body;
            // Lines already reported for this fn, to fold the `for x in
            // map.iter()` double-detection into one source.
            let mut seen: HashSet<(usize, &'static str)> = HashSet::new();
            let push = |line: usize,
                            kind: &'static str,
                            name: &str,
                            seen: &mut HashSet<(usize, &'static str)>,
                            sources: &mut Vec<NondetSource>,
                            findings: &mut Vec<Finding>| {
                if !seen.insert((line, kind)) {
                    return;
                }
                sources.push(NondetSource {
                    file: pf.rel.clone(),
                    line,
                    function: f.name.clone(),
                    kind: kind.to_string(),
                });
                if allowed.contains(&line) {
                    return;
                }
                let (operation, message) = match kind {
                    "hashmap-iteration" => (
                        format!("hashmap-iteration({name})"),
                        format!(
                            "iterating hash-ordered `{name}` in replay-critical `{}` — RandomState order diverges across runs; iterate a `BTreeMap`/sorted keys, or annotate with `{ALLOW_MARKER}: <reason>`",
                            f.name
                        ),
                    ),
                    "random-state" => (
                        "random-state".to_string(),
                        format!(
                            "`RandomState` in replay-critical `{}` — use a seeded hasher so replay sees the same order",
                            f.name
                        ),
                    ),
                    "instant-now" => (
                        format!("instant-now({name})"),
                        format!(
                            "`{name}::now` in replay-critical `{}` — wall-clock reads steer replay unless they only feed telemetry/abort; annotate with `{ALLOW_MARKER}: <reason>` if so",
                            f.name
                        ),
                    ),
                    _ => (
                        "thread-rng".to_string(),
                        format!(
                            "ambient randomness in replay-critical `{}` — derive randomness from the run seed",
                            f.name
                        ),
                    ),
                };
                findings.push(Finding {
                    rule: "determinism".into(),
                    file: pf.rel.clone(),
                    line,
                    function: f.name.clone(),
                    held: None,
                    operation,
                    chain: vec![format!("nondet source at {}:{}", pf.rel, line)],
                    message,
                });
            };

            let mut i = s;
            while i < e {
                let t = pf.toks[i].text.as_str();
                // `Instant::now(` / `SystemTime::now(`.
                if (t == "Instant" || t == "SystemTime")
                    && pf.toks.get(i + 1).map(|t| t.text.as_str()) == Some(":")
                    && pf.toks.get(i + 2).map(|t| t.text.as_str()) == Some(":")
                    && pf.toks.get(i + 3).map(|t| t.text.as_str()) == Some("now")
                {
                    push(pf.toks[i].line, "instant-now", t, &mut seen, &mut sources, &mut findings);
                    i += 4;
                    continue;
                }
                if t == "RandomState" {
                    push(pf.toks[i].line, "random-state", t, &mut seen, &mut sources, &mut findings);
                    i += 1;
                    continue;
                }
                if t == "thread_rng" || (t == "random" && i > s && pf.toks[i - 1].text == ":") {
                    push(pf.toks[i].line, "thread-rng", t, &mut seen, &mut sources, &mut findings);
                    i += 1;
                    continue;
                }
                // `.iter()`-class call on a hash-typed receiver chain.
                if t == "." && i + 2 < e && is_ident(&pf.toks[i + 1].text) {
                    if let Some(open) = call_open_paren(&pf.toks, i + 1) {
                        let m = pf.toks[i + 1].text.as_str();
                        if ITER_METHODS.contains(&m) {
                            let (root, segs) = receiver_chain(pf, i, s);
                            let hit = std::iter::once(root.as_str())
                                .chain(segs.iter().map(|s| s.as_str()))
                                .find(|n| hashed.contains(*n));
                            if let Some(name) = hit {
                                let name = name.to_string();
                                push(
                                    pf.toks[i].line,
                                    "hashmap-iteration",
                                    &name,
                                    &mut seen,
                                    &mut sources,
                                    &mut findings,
                                );
                            }
                        }
                        i = open + 1;
                        continue;
                    }
                }
                // `for pat in <expr mentioning a hash-typed name> {`.
                if t == "for" {
                    if let Some(open) = body_open(pf, i + 1, e) {
                        if let Some(in_idx) = (i + 1..open).find(|&j| pf.toks[j].text == "in") {
                            let hit = (in_idx + 1..open)
                                .map(|j| pf.toks[j].text.as_str())
                                .find(|n| hashed.contains(*n));
                            if let Some(name) = hit {
                                let name = name.to_string();
                                push(
                                    pf.toks[i].line,
                                    "hashmap-iteration",
                                    &name,
                                    &mut seen,
                                    &mut sources,
                                    &mut findings,
                                );
                            }
                        }
                    }
                }
                i += 1;
            }
        }
    }
    findings.sort_by_key(|f| f.sort_key());
    findings.dedup_by(|a, b| a.sort_key() == b.sort_key());
    sources.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.kind.as_str()).cmp(&(b.file.as_str(), b.line, b.kind.as_str()))
    });
    sources.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.kind == b.kind);
    Determinism { findings, sources }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;

    fn run(src: &str) -> Determinism {
        let marked = format!("// analyze: scope(determinism)\n{src}");
        analyze_determinism(&[parse_file("t.rs", &marked)])
    }

    #[test]
    fn hashmap_field_iteration_is_flagged() {
        let r = run(
            "pub struct P { pending: HashMap<u64, u32> }\nimpl P {\n    fn decide(&self) -> u32 {\n        let mut acc = 0;\n        for (_, v) in self.pending.iter() {\n            acc += v;\n        }\n        acc\n    }\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "hashmap-iteration(pending)");
        assert_eq!(r.findings[0].line, 6);
    }

    #[test]
    fn membership_and_keyed_access_are_clean() {
        let r = run(
            "pub struct P { ghosts: HashSet<u64>, held: HashMap<u64, u32> }\nimpl P { fn probe(&mut self, k: u64) -> bool { self.held.remove(&k); self.ghosts.contains(&k) } }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn iteration_through_lock_segment_is_tracked() {
        let r = run(
            "pub struct F { held: Mutex<HashMap<u64, u32>> }\nimpl F {\n    fn survey(&self) -> usize {\n        self.held.lock().iter().count()\n    }\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "hashmap-iteration(held)");
        assert_eq!(r.findings[0].line, 5);
    }

    #[test]
    fn let_bound_map_for_loop_is_flagged() {
        let r = run(
            "fn plan() -> Vec<u64> {\n    let mut m = HashMap::new();\n    m.insert(1u64, 2u64);\n    let mut out = Vec::new();\n    for k in m.keys() {\n        out.push(*k);\n    }\n    out\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "hashmap-iteration(m)");
        assert_eq!(r.findings[0].line, 6);
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let r = run(
            "pub struct P { pending: BTreeMap<u64, u32> }\nimpl P { fn decide(&self) -> u32 { self.pending.values().sum() } }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn instant_now_is_flagged_and_annotatable() {
        let r = run(
            "impl S {\n    fn stamp(&self) -> u128 {\n        let t = Instant::now();\n        t.elapsed().as_nanos()\n    }\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "instant-now(Instant)");
        assert_eq!(r.findings[0].line, 4);
        let ok = run(
            "impl S {\n    fn stamp(&self) -> u128 {\n        // analyze: allow(determinism): telemetry only, never steers a decision\n        let t = Instant::now();\n        t.elapsed().as_nanos()\n    }\n}\n",
        );
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
        // The inventory still lists the annotated source.
        assert_eq!(ok.sources.len(), 1);
        assert_eq!(ok.sources[0].kind, "instant-now");
    }

    #[test]
    fn random_state_is_flagged() {
        let r = run(
            "fn mk() -> HashMap<u64, u32, RandomState> { HashMap::with_hasher(RandomState::new()) }",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "random-state");
    }

    #[test]
    fn out_of_scope_file_is_ignored() {
        let pf = parse_file(
            "crates/pgxd/src/machine.rs",
            "impl S { fn stamp(&self) -> Instant { Instant::now() } }",
        );
        let r = analyze_determinism(&[pf]);
        assert!(r.findings.is_empty());
        assert!(r.sources.is_empty());
    }
}
