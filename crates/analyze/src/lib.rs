//! pgxd-analyze: dependency-free static analysis for the pgxd runtime.
//!
//! Three passes over `crates/pgxd/src` (minus the `sync.rs` shim, which is
//! the sanctioned boundary to the real primitives):
//!
//! 1. **lock-order** — every guard acquisition through `pgxd::sync`
//!    (`.lock()`/`.read()`/`.write()` with empty parens) becomes a node;
//!    acquiring one lock while another is live (directly or through any
//!    resolved call chain) becomes an edge; cycles fail the build with the
//!    full acquisition chain.
//! 2. **blocking-under-lock** — barrier/condvar waits, channel send/recv,
//!    `ChunkPool::acquire`, and joins reachable while a guard is live are
//!    findings unless `analyze.allow` carries a justified entry.
//! 3. **panic-surface** — `unwrap`/`expect`/direct indexing in the
//!    exchange hot path (machine.rs, comm.rs, pool.rs) must carry an
//!    `analyze: allow(panic-surface): <reason>` annotation.
//!
//! Everything is built on a hand-rolled lexer (no `syn`), so the crate
//! compiles offline with no dependencies — same constraint as `xtask`.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod items;
pub mod lexer;
pub mod report;

use std::path::{Path, PathBuf};

pub use analysis::{analyze_locks, panic_surface, AnalysisResult, Edge, LockGraph};
pub use items::{parse_file, ParsedFile, UseDecl};
pub use report::{apply_allowlist, parse_allowlist, render_human, render_json, Finding, Report};

/// Files whose panic surface is gated (workspace-relative suffixes).
pub const PANIC_SURFACE_FILES: &[&str] = &[
    "crates/pgxd/src/machine.rs",
    "crates/pgxd/src/comm.rs",
    "crates/pgxd/src/pool.rs",
];

/// The sync shim: excluded from analysis — it is the one place allowed to
/// touch the real primitives, and its internals (loom vs std) are not
/// runtime lock structure.
pub const SHIM_FILE: &str = "crates/pgxd/src/sync.rs";

/// Runs all three analyses over in-memory sources.
///
/// `sources` is `(workspace-relative path, contents)`. `allow_text` is the
/// contents of `analyze.allow` (empty string for none).
pub fn analyze_sources(sources: &[(String, String)], allow_text: &str, allow_path: &str) -> Report {
    let files: Vec<ParsedFile> = sources
        .iter()
        .filter(|(rel, _)| !rel.ends_with(SHIM_FILE) && rel.as_str() != SHIM_FILE)
        .map(|(rel, src)| parse_file(rel, src))
        .collect();
    let mut result = analyze_locks(&files);
    for pf in &files {
        if PANIC_SURFACE_FILES.iter().any(|p| pf.rel.ends_with(p) || pf.rel == *p) {
            result.findings.extend(panic_surface(pf));
        }
    }
    let entries = parse_allowlist(allow_text);
    apply_allowlist(result, &entries, allow_path)
}

/// Collects the runtime sources under `root/crates/pgxd/src` and runs the
/// analyses with `root/analyze.allow` (missing file = empty allowlist).
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let src_dir = root.join("crates/pgxd/src");
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_rs(&src_dir, &mut paths)?;
    paths.sort();
    let mut sources = Vec::new();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(&p)?));
    }
    let allow_path = root.join("analyze.allow");
    let allow_text = std::fs::read_to_string(&allow_path).unwrap_or_default();
    Ok(analyze_sources(&sources, &allow_text, "analyze.allow"))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shim_is_excluded() {
        let sources = vec![
            (
                "crates/pgxd/src/sync.rs".to_string(),
                "impl Mutex { fn f(&self) { let a = self.x.lock(); let b = self.y.lock(); } }".to_string(),
            ),
        ];
        let r = analyze_sources(&sources, "", "analyze.allow");
        assert!(r.is_clean());
        assert!(r.graph_nodes.is_empty());
    }

    #[test]
    fn panic_surface_only_gates_listed_files() {
        let body = "impl A { fn f(&self, v: &[u8]) { let x = v[0]; } }".to_string();
        let flagged = analyze_sources(
            &[("crates/pgxd/src/pool.rs".to_string(), body.clone())],
            "",
            "analyze.allow",
        );
        assert_eq!(flagged.findings.len(), 1);
        let unflagged = analyze_sources(
            &[("crates/pgxd/src/cluster.rs".to_string(), body)],
            "",
            "analyze.allow",
        );
        assert!(unflagged.is_clean());
    }
}
