//! pgxd-analyze: dependency-free static analysis for the pgxd runtime.
//!
//! Nine passes over `crates/pgxd/src`, `crates/core/src`, and
//! `crates/algos/src` (minus the `sync.rs` shim, which is the sanctioned
//! boundary to the real primitives):
//!
//! 1. **lock-order** — every guard acquisition through `pgxd::sync`
//!    (`.lock()`/`.read()`/`.write()` with empty parens) becomes a node;
//!    acquiring one lock while another is live (directly or through any
//!    resolved call chain) becomes an edge; cycles fail the build with the
//!    full acquisition chain.
//! 2. **blocking-under-lock** — barrier/condvar waits, channel send/recv,
//!    `ChunkPool::acquire`, and joins reachable while a guard is live are
//!    findings unless `analyze.allow` carries a justified entry.
//! 3. **panic-surface** — `unwrap`/`expect`/direct indexing in the
//!    exchange and local-sort hot paths (machine.rs, comm.rs, pool.rs,
//!    sorter.rs, ipssort.rs, radix.rs) must carry an
//!    `analyze: allow(panic-surface): <reason>` annotation.
//! 4. **chunk-custody** — every `ChunkPool::acquire` must reach exactly
//!    one release/drop/hand-off on every control-flow path, tracked
//!    interprocedurally through custody-returning functions; leaks are
//!    never allowlistable (see [`custody`]).
//! 5. **wait-graph** — barrier/send/recv sites per §IV step with
//!    asymmetric-barrier and recv-without-send shape checks (see
//!    [`waitgraph`]).
//! 6. **atomics-ordering** — no `Relaxed` publication in the
//!    seqlock/cursor files without an inline justification (see
//!    [`atomics`]).
//! 7. **hot-path-alloc** — heap allocations reachable from hot regions
//!    (§IV step bodies, the exchange/fabric send/recv surface, the
//!    local-sort kernels, trace/metrics emit paths) through the resolved
//!    call graph, with the full root-to-site chain (see [`hotpath`]).
//! 8. **loop-discipline** — loop-invariant lock/`ChunkPool::acquire`
//!    acquisition inside loops, and unbounded collection growth inside
//!    recv/poll loops; the latter is never allowlistable (see
//!    [`loopdisc`]).
//! 9. **determinism** — HashMap/HashSet iteration, `RandomState`,
//!    wall-clock reads, and ambient randomness in replay-critical files
//!    (fault injection, sampling, splitter/partition decisions) (see
//!    [`determinism`]).
//!
//! Everything is built on a hand-rolled lexer (no `syn`), so the crate
//! compiles offline with no dependencies — same constraint as `xtask`.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod atomics;
pub mod custody;
pub mod determinism;
pub mod hotpath;
pub mod items;
pub mod lexer;
pub mod loopdisc;
pub mod report;
pub mod waitgraph;

use std::path::{Path, PathBuf};
use std::time::Instant;

pub use analysis::{analyze_locks, panic_surface, AnalysisResult, Edge, LockGraph};
pub use atomics::analyze_atomics;
pub use custody::analyze_custody;
pub use determinism::{analyze_determinism, NondetSource};
pub use hotpath::{analyze_hotpath, HotRegion};
pub use items::{parse_file, ParsedFile, UseDecl};
pub use loopdisc::{analyze_loops, LoopSite};
pub use report::{
    apply_allowlist, parse_allowlist, render_human, render_json, CustodySummary, Finding, Report,
};
pub use waitgraph::analyze_waitgraph;

/// Source roots collected by [`analyze_workspace`], workspace-relative.
pub const ANALYZED_ROOTS: &[&str] = &["crates/pgxd/src", "crates/core/src", "crates/algos/src"];

/// Files whose panic surface is gated (workspace-relative suffixes).
pub const PANIC_SURFACE_FILES: &[&str] = &[
    "crates/pgxd/src/machine.rs",
    "crates/pgxd/src/comm.rs",
    "crates/pgxd/src/pool.rs",
    "crates/core/src/sorter.rs",
    "crates/algos/src/ipssort.rs",
    "crates/algos/src/radix.rs",
];

/// The sync shim: excluded from analysis — it is the one place allowed to
/// touch the real primitives, and its internals (loom vs std) are not
/// runtime lock structure.
pub const SHIM_FILE: &str = "crates/pgxd/src/sync.rs";

/// Runs all nine analyses over in-memory sources.
///
/// `sources` is `(workspace-relative path, contents)`. `allow_text` is the
/// contents of `analyze.allow` (empty string for none). Each pass is
/// self-timed; the timings land in [`Report::timings_ms`] for the `--json`
/// stdout path (the persisted report nulls them out — see `xtask`).
pub fn analyze_sources(sources: &[(String, String)], allow_text: &str, allow_path: &str) -> Report {
    let files: Vec<ParsedFile> = sources
        .iter()
        .filter(|(rel, _)| !rel.ends_with(SHIM_FILE) && rel.as_str() != SHIM_FILE)
        .map(|(rel, src)| parse_file(rel, src))
        .collect();
    let mut timings: Vec<(String, u64)> = Vec::new();
    let timed = |name: &str, t0: Instant, timings: &mut Vec<(String, u64)>| {
        timings.push((name.to_string(), t0.elapsed().as_millis() as u64));
    };
    let t0 = Instant::now();
    let mut result = analyze_locks(&files);
    timed("lock-order+blocking-under-lock", t0, &mut timings);
    let t0 = Instant::now();
    for pf in &files {
        if PANIC_SURFACE_FILES.iter().any(|p| pf.rel.ends_with(p) || pf.rel == *p) {
            result.findings.extend(panic_surface(pf));
        }
    }
    timed("panic-surface", t0, &mut timings);
    let t0 = Instant::now();
    let custody = analyze_custody(&files);
    result.findings.extend(custody.findings);
    timed("chunk-custody", t0, &mut timings);
    let t0 = Instant::now();
    let wait = analyze_waitgraph(&files);
    result.findings.extend(wait.findings);
    timed("wait-graph", t0, &mut timings);
    let t0 = Instant::now();
    result.findings.extend(analyze_atomics(&files));
    timed("atomics-ordering", t0, &mut timings);
    let t0 = Instant::now();
    let hot = analyze_hotpath(&files);
    result.findings.extend(hot.findings);
    timed("hot-path-alloc", t0, &mut timings);
    let t0 = Instant::now();
    let loops = analyze_loops(&files);
    result.findings.extend(loops.findings);
    timed("loop-discipline", t0, &mut timings);
    let t0 = Instant::now();
    let det = analyze_determinism(&files);
    result.findings.extend(det.findings);
    timed("determinism", t0, &mut timings);
    let entries = parse_allowlist(allow_text);
    let mut report = apply_allowlist(result, &entries, allow_path);
    report.wait_ops = wait.ops;
    report.step_edges = wait.edges;
    report.custody = CustodySummary {
        acquire_sites: custody.acquire_sites,
        tracked_bindings: custody.tracked_bindings,
        custody_fns: custody.custody_fns,
    };
    report.hot_regions = hot.regions;
    report.loop_sites = loops.sites;
    report.nondet_sources = det.sources;
    report.timings_ms = timings;
    report
}

/// Collects the runtime sources under [`ANALYZED_ROOTS`] and runs the
/// analyses with `root/analyze.allow` (missing file = empty allowlist).
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for sub in ANALYZED_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut sources = Vec::new();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(&p)?));
    }
    let allow_path = root.join("analyze.allow");
    let allow_text = std::fs::read_to_string(&allow_path).unwrap_or_default();
    Ok(analyze_sources(&sources, &allow_text, "analyze.allow"))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shim_is_excluded() {
        let sources = vec![
            (
                "crates/pgxd/src/sync.rs".to_string(),
                "impl Mutex { fn f(&self) { let a = self.x.lock(); let b = self.y.lock(); } }".to_string(),
            ),
        ];
        let r = analyze_sources(&sources, "", "analyze.allow");
        assert!(r.is_clean());
        assert!(r.graph_nodes.is_empty());
    }

    #[test]
    fn panic_surface_only_gates_listed_files() {
        let body = "impl A { fn f(&self, v: &[u8]) { let x = v[0]; } }".to_string();
        let flagged = analyze_sources(
            &[("crates/pgxd/src/pool.rs".to_string(), body.clone())],
            "",
            "analyze.allow",
        );
        assert_eq!(flagged.findings.len(), 1);
        let unflagged = analyze_sources(
            &[("crates/pgxd/src/cluster.rs".to_string(), body)],
            "",
            "analyze.allow",
        );
        assert!(unflagged.is_clean());
    }
}
