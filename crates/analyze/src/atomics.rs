//! Atomics-ordering lint (`atomics-ordering`, schema pgxd-analyze/2).
//!
//! The trace layer's seqlock rings (`trace.rs`) and the pool / checker
//! cursors publish data across threads: the discipline is that every
//! *publication* store is `Release` and every consuming load is
//! `Acquire` (or stronger), so a reader that observes the version/cursor
//! also observes the data written before it. `Relaxed` is only sound for
//! values that carry no happens-before obligation — counters read on the
//! same thread, statistics, the single-writer side of a cursor — and
//! every such use must say why inline:
//!
//! ```text
//! // analyze: allow(atomics-ordering): single-writer cursor, readers
//! // resynchronize through the shard lock
//! ```
//!
//! The marker follows the same coverage rules as panic-surface
//! annotations (own line, next code line, or the whole `fn` when it
//! precedes one) and the reason after the colon is mandatory.
//!
//! Scope: `trace.rs`, `pool.rs`, `checker.rs` — the files whose atomics
//! form cross-thread publication protocols — plus `metrics.rs`, where the
//! always-on registry's counters/gauges/histograms are *deliberately*
//! `Relaxed` (monotone statistics with no happens-before obligation) and
//! every site must carry an annotated reason, so the policy is enforced
//! rather than assumed. Any file carrying an
//! `analyze: scope(atomics-ordering)` comment (fixtures) also joins the
//! scope. `fault.rs` and `health.rs` route their counters through
//! `metrics::Counter`/`Gauge` and hold no raw atomics protocols of their
//! own, so they stay out; widening the list is a one-line change here.
//!
//! The check is syntactic: any `Ordering::Relaxed` argument to an
//! atomic method (`load` / `store` / `swap` / `fetch_*` /
//! `compare_exchange*`) is a finding. Calls without an `Ordering::`
//! token are not atomics (`Vec::swap`, `mpsc::Receiver::recv`) and are
//! ignored.

use crate::analysis::marker_allowed_lines;
use crate::items::{matching_paren, ParsedFile};
use crate::report::Finding;

/// Files whose atomics implement publication protocols, plus the metrics
/// registry whose Relaxed-only policy is enforced via annotations.
const ATOMICS_FILES: [&str; 4] = [
    "crates/pgxd/src/trace.rs",
    "crates/pgxd/src/pool.rs",
    "crates/pgxd/src/checker.rs",
    "crates/pgxd/src/metrics.rs",
];

/// Marker pulling extra files (fixtures) into scope.
pub const SCOPE_MARKER: &str = "analyze: scope(atomics-ordering)";

/// Inline escape hatch, panic-surface coverage rules.
pub const ALLOW_MARKER: &str = "analyze: allow(atomics-ordering)";

/// Atomic method names whose `Ordering` arguments we check.
const ATOMIC_METHODS: [&str; 13] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

fn in_scope(pf: &ParsedFile) -> bool {
    ATOMICS_FILES.iter().any(|s| pf.rel.ends_with(s))
        || pf.stripped.comments.iter().any(|c| c.contains(SCOPE_MARKER))
}

pub fn analyze_atomics(files: &[ParsedFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for pf in files {
        if !in_scope(pf) {
            continue;
        }
        let allowed = marker_allowed_lines(pf, ALLOW_MARKER);
        for f in &pf.functions {
            let (bs, be) = f.body;
            for i in bs..be.saturating_sub(2) {
                if pf.toks[i].text != "." {
                    continue;
                }
                let name = pf.toks[i + 1].text.as_str();
                if !ATOMIC_METHODS.contains(&name) || pf.toks[i + 2].text != "(" {
                    continue;
                }
                let close = matching_paren(&pf.toks, i + 2);
                // Orderings named in the argument list; none ⇒ not an
                // atomic call (slice `swap`, channel `recv`, …).
                let mut orderings: Vec<(usize, String)> = Vec::new();
                for j in i + 3..close {
                    if pf.toks[j].text == "Ordering"
                        && pf.toks.get(j + 1).map(|t| t.text.as_str()) == Some(":")
                        && pf.toks.get(j + 2).map(|t| t.text.as_str()) == Some(":")
                    {
                        if let Some(o) = pf.toks.get(j + 3) {
                            orderings.push((j + 3, o.text.clone()));
                        }
                    }
                }
                if orderings.is_empty() {
                    continue;
                }
                for (oi, ord) in &orderings {
                    if ord != "Relaxed" {
                        continue;
                    }
                    let line = pf.toks[*oi].line;
                    if allowed.contains(&line) || allowed.contains(&pf.toks[i].line) {
                        continue;
                    }
                    let receiver = i
                        .checked_sub(1)
                        .map(|p| pf.toks[p].text.clone())
                        .filter(|t| t.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_'))
                        .unwrap_or_else(|| "<atomic>".into());
                    findings.push(Finding {
                        rule: "atomics-ordering".into(),
                        file: pf.rel.clone(),
                        line,
                        function: f.name.clone(),
                        held: None,
                        operation: format!("{name}(Relaxed)"),
                        chain: vec![format!("atomic op at {}:{}", pf.rel, pf.toks[i].line)],
                        message: format!(
                            "`Relaxed` on `{receiver}.{name}` in a publication file — use Release/Acquire (seqlock discipline) or annotate with `{ALLOW_MARKER}: <reason>`",
                        ),
                    });
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;

    fn run(src: &str) -> Vec<Finding> {
        let marked = format!("// analyze: scope(atomics-ordering)\n{src}");
        analyze_atomics(&[parse_file("t.rs", &marked)])
    }

    #[test]
    fn release_acquire_pair_is_clean() {
        let r = run(
            "impl S { fn publish(&self) { self.version.store(v, Ordering::Release); } fn read(&self) -> u64 { self.version.load(Ordering::Acquire) } }",
        );
        assert!(r.is_empty(), "{:?}", r);
    }

    #[test]
    fn relaxed_store_is_flagged_with_site() {
        let r = run(
            "impl S {\n    fn publish(&self) {\n        self.version.store(v, Ordering::Relaxed);\n    }\n}\n",
        );
        assert_eq!(r.len(), 1, "{:?}", r);
        assert_eq!(r[0].operation, "store(Relaxed)");
        assert_eq!(r[0].line, 4);
        assert!(r[0].message.contains("version.store"));
    }

    #[test]
    fn relaxed_in_compare_exchange_failure_ordering_is_flagged() {
        let r = run(
            "impl S { fn claim(&self) { self.w.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed); } }",
        );
        assert_eq!(r.len(), 1, "{:?}", r);
        assert_eq!(r[0].operation, "compare_exchange(Relaxed)");
    }

    #[test]
    fn annotated_relaxed_is_allowed_and_reason_is_mandatory() {
        let ok = run(
            "impl S { fn bump(&self) { // analyze: allow(atomics-ordering): single-writer counter\n        self.n.fetch_add(1, Ordering::Relaxed); } }",
        );
        assert!(ok.is_empty(), "{:?}", ok);
        let bare = run(
            "impl S { fn bump(&self) { // analyze: allow(atomics-ordering)\n        self.n.fetch_add(1, Ordering::Relaxed); } }",
        );
        assert_eq!(bare.len(), 1, "a bare marker covers nothing");
    }

    #[test]
    fn slice_swap_is_not_an_atomic() {
        let r = run("fn f(v: &mut [u64]) { v.swap(0, 1); }");
        assert!(r.is_empty(), "{:?}", r);
    }

    #[test]
    fn relaxed_fetch_max_is_flagged() {
        let r = run("impl S { fn peak(&self) { self.max.fetch_max(v, Ordering::Relaxed); } }");
        assert_eq!(r.len(), 1, "{:?}", r);
        assert_eq!(r[0].operation, "fetch_max(Relaxed)");
    }

    #[test]
    fn out_of_scope_file_is_ignored() {
        let pf = parse_file(
            "crates/pgxd/src/fault.rs",
            "impl S { fn bump(&self) { self.n.fetch_add(1, Ordering::Relaxed); } }",
        );
        assert!(analyze_atomics(&[pf]).is_empty());
    }
}
