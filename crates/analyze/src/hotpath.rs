//! Hot-path allocation pass (`hot-path-alloc`, schema pgxd-analyze/3).
//!
//! The paper's §IV-C speedup rests on a steady-state exchange path that
//! *recycles* buffers: once a run is warm, the per-batch work — the six
//! `ctx.step(steps::…)` bodies, the exchange send/recv machinery, the
//! local-sort kernels, and the always-on trace/metrics emit paths —
//! must draw scratch from `ChunkPool`, not the global allocator. The
//! pool/memtrack suites check this *dynamically*; this pass is the
//! static twin: it inventories **hot regions**, walks the resolved call
//! graph from them, and flags every heap-allocation site reachable on
//! the way.
//!
//! Hot regions (the BFS roots) are:
//!
//! * **step** — every `ctx.step(steps::X, ..)` body in a workspace file
//!   (the same regions `waitgraph.rs` inventories), named `step:x`;
//! * **kernel** — every function in the local-sort kernels and the
//!   request buffer (`ipssort.rs`, `radix.rs`, `kway.rs`, `buffer.rs`);
//! * **exchange / fabric / trace-emit / metrics-emit** — functions in
//!   `machine.rs`, `comm.rs`, `trace.rs`, `metrics.rs` whose bare name
//!   matches the per-file hot prefixes below (collectives, send/recv,
//!   emit/record paths); setup and drain/report functions stay cold;
//! * **marked** — in files carrying an `analyze: scope(hot-path-alloc)`
//!   comment (fixtures), functions whose bare name starts with `hot_`,
//!   plus any step regions they contain.
//!
//! Allocation sites are syntactic: `vec!` / `format!`, `T::new` /
//! `T::from` for the owning std types (plus `Arc`/`Rc`), the allocating
//! methods `.to_vec()` / `.to_owned()` / `.to_string()` / `.clone()` /
//! `.collect()` (turbofish included), and `T::with_capacity` **only
//! inside a loop** — a one-shot pre-size is exactly what we want, one
//! per iteration is not. Sites inside panic/assert-class macro
//! arguments are exempt: diagnostics assemble on the cold path by
//! construction.
//!
//! Findings carry the chain `alloc at file:line <- reachable from hot
//! region <name> via f1 -> f2`. Genuinely cold or amortized sites are
//! annotated in place:
//!
//! ```text
//! // analyze: allow(hot-path-alloc): O(p) control-plane assembly,
//! // once per collective, not per element
//! ```
//!
//! with panic-surface coverage rules (own line, next code line, or the
//! whole `fn` when the marker precedes one) and a mandatory reason.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::analysis::{call_open_paren, extract_fn, is_ident, marker_allowed_lines, FnIndex, FnSites};
use crate::items::{matching_brace, matching_paren, ParsedFile};
use crate::report::Finding;
use crate::waitgraph::{body_open, step_regions};

/// Marker pulling extra files (fixtures) into scope as root providers.
pub const SCOPE_MARKER: &str = "analyze: scope(hot-path-alloc)";

/// Inline escape hatch, panic-surface coverage rules.
pub const ALLOW_MARKER: &str = "analyze: allow(hot-path-alloc)";

/// Files where *every* function is a hot root: the local-sort kernels
/// and the exchange request buffer.
const KERNEL_FILES: [&str; 4] = [
    "crates/pgxd/src/buffer.rs",
    "crates/algos/src/ipssort.rs",
    "crates/algos/src/radix.rs",
    "crates/algos/src/kway.rs",
];

/// Per-file hot-prefix roots: `(file suffix, bare-name prefixes, kind)`.
/// A function is a root when its bare name starts with any listed
/// prefix; everything else in the file is setup/drain and only becomes
/// hot if a root reaches it.
const PREFIX_ROOTS: [(&str, &[&str], &str); 4] = [
    (
        "crates/pgxd/src/machine.rs",
        &["exchange", "gather_", "broadcast_", "all_to_all", "all_gather", "step", "barrier", "record_", "wait_or_unwind"],
        "exchange",
    ),
    (
        "crates/pgxd/src/comm.rs",
        &["send_", "recv_", "try_recv_", "flush"],
        "fabric",
    ),
    (
        "crates/pgxd/src/trace.rs",
        &["emit", "instant", "span_since", "intern", "now_ns"],
        "trace-emit",
    ),
    (
        "crates/pgxd/src/metrics.rs",
        &["inc", "add", "record", "set", "observe", "time"],
        "metrics-emit",
    ),
];

/// Owning std types whose `new`/`from` constructors allocate.
const ALLOC_TYPES: [&str; 10] = [
    "Vec", "String", "Box", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Arc", "Rc",
];

/// Methods that allocate wherever they are called.
const ALLOC_METHODS: [&str; 5] = ["to_vec", "to_owned", "to_string", "clone", "collect"];

/// Macro names whose arguments are cold by construction.
const COLD_MACROS: [&str; 10] = [
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// One hot region: a BFS root for the reachability walk.
#[derive(Debug, Clone)]
pub struct HotRegion {
    /// `step:<name>` for step bodies, the qualified fn name otherwise.
    pub name: String,
    /// `step` | `kernel` | `exchange` | `fabric` | `trace-emit` |
    /// `metrics-emit` | `marked`.
    pub kind: String,
    pub file: String,
    pub line: usize,
}

pub struct HotPaths {
    pub findings: Vec<Finding>,
    pub regions: Vec<HotRegion>,
}

/// A root region: token range within one function of one file.
struct Root {
    name: String,
    kind: String,
    fi: usize,
    fj: usize,
    range: (usize, usize),
    line: usize,
}

struct AllocSite {
    line: usize,
    kind: String,
}

fn has_marker(pf: &ParsedFile) -> bool {
    pf.stripped.comments.iter().any(|c| c.contains(SCOPE_MARKER))
}

fn is_workspace(pf: &ParsedFile) -> bool {
    pf.rel.starts_with("crates/")
}

fn in_any(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(s, e)| i > s && i < e)
}

/// Balanced-delimiter close for macro bodies (`(`, `[` or `{`).
fn matching_delim(pf: &ParsedFile, open: usize) -> usize {
    match pf.toks[open].text.as_str() {
        "(" => matching_paren(&pf.toks, open),
        "{" => matching_brace(&pf.toks, open),
        _ => {
            let mut b = 1usize;
            let mut j = open;
            while j + 1 < pf.toks.len() && b > 0 {
                j += 1;
                match pf.toks[j].text.as_str() {
                    "[" => b += 1,
                    "]" => b -= 1,
                    _ => {}
                }
            }
            j
        }
    }
}

/// Loop-body token ranges inside `body` (innermost ranges included).
fn loop_ranges(pf: &ParsedFile, body: (usize, usize)) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in body.0..body.1 {
        match pf.toks[i].text.as_str() {
            "for" => {
                // Require a statement-position `in` before the body so
                // `for<'a>` bounds don't produce phantom loops.
                let Some(open) = body_open(pf, i + 1, body.1) else { continue };
                if !pf.toks[i + 1..open].iter().any(|t| t.text == "in") {
                    continue;
                }
                out.push((open, matching_brace(&pf.toks, open)));
            }
            "while" | "loop" => {
                let Some(open) = body_open(pf, i + 1, body.1) else { continue };
                out.push((open, matching_brace(&pf.toks, open)));
            }
            _ => {}
        }
    }
    out
}

/// Token ranges covered by panic-class macro arguments within `body`.
fn cold_ranges(pf: &ParsedFile, body: (usize, usize)) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = body.0;
    while i + 1 < body.1 {
        let t = pf.toks[i].text.as_str();
        if COLD_MACROS.contains(&t) && pf.toks[i + 1].text == "!" {
            if let Some(open) = pf
                .toks
                .get(i + 2)
                .filter(|t| matches!(t.text.as_str(), "(" | "[" | "{"))
                .map(|_| i + 2)
            {
                let close = matching_delim(pf, open);
                out.push((open, close));
                i = open + 1;
                continue;
            }
        }
        if t == "panic_any" && pf.toks[i + 1].text == "(" {
            out.push((i + 1, matching_paren(&pf.toks, i + 1)));
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// Allocation sites in `range`, given the enclosing function's loop and
/// cold ranges.
fn alloc_sites(
    pf: &ParsedFile,
    range: (usize, usize),
    loops: &[(usize, usize)],
    cold: &[(usize, usize)],
) -> Vec<AllocSite> {
    let toks = &pf.toks;
    let mut out = Vec::new();
    let mut i = range.0;
    while i < range.1 {
        if in_any(cold, i) {
            i += 1;
            continue;
        }
        let t = toks[i].text.as_str();
        // Macro allocs: `vec![..]`, `format!(..)`.
        if (t == "vec" || t == "format")
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("!")
        {
            out.push(AllocSite { line: toks[i].line, kind: format!("{t}!") });
            i += 2;
            continue;
        }
        // Path allocs: `T::new(` / `T::from(` / `T::with_capacity(`.
        if ALLOC_TYPES.contains(&t)
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some(":")
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some(":")
            && toks.get(i + 4).map(|t| t.text.as_str()) == Some("(")
        {
            let name = toks[i + 3].text.as_str();
            if name == "new" || name == "from" {
                out.push(AllocSite { line: toks[i].line, kind: format!("{t}::{name}") });
            } else if name == "with_capacity" && in_any(loops, i) {
                out.push(AllocSite {
                    line: toks[i].line,
                    kind: format!("{t}::with_capacity@loop"),
                });
            }
            i += 5;
            continue;
        }
        // Method allocs, turbofish included: `.collect::<Vec<_>>(`.
        if t == "." && i + 2 < range.1 && is_ident(&toks[i + 1].text) {
            if let Some(open) = call_open_paren(toks, i + 1) {
                let name = toks[i + 1].text.as_str();
                if ALLOC_METHODS.contains(&name) {
                    out.push(AllocSite { line: toks[i + 1].line, kind: name.to_string() });
                }
                i = open + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

pub fn analyze_hotpath(files: &[ParsedFile]) -> HotPaths {
    let ix = FnIndex::build(files);
    // Extracted sites, indexed [file][fn] in parse order.
    let sites: Vec<Vec<FnSites>> = files
        .iter()
        .map(|pf| pf.functions.iter().map(|f| extract_fn(pf, f, &ix)).collect())
        .collect();
    // Qualified fn name -> occurrences (file idx, fn idx).
    let mut occs: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
    for (fi, pf) in files.iter().enumerate() {
        for (fj, f) in pf.functions.iter().enumerate() {
            occs.entry(f.name.clone()).or_default().push((fi, fj));
        }
    }
    let allowed: Vec<std::collections::BTreeSet<usize>> =
        files.iter().map(|pf| marker_allowed_lines(pf, ALLOW_MARKER)).collect();

    // ── Root inventory ─────────────────────────────────────────────
    let mut roots: Vec<Root> = Vec::new();
    for (fi, pf) in files.iter().enumerate() {
        let marked = has_marker(pf);
        let kernel = KERNEL_FILES.iter().any(|s| pf.rel.ends_with(s));
        let prefixes = PREFIX_ROOTS.iter().find(|(f, _, _)| pf.rel.ends_with(f));
        if !(marked || is_workspace(pf)) {
            continue;
        }
        for (fj, f) in pf.functions.iter().enumerate() {
            let bare = f.name.rsplit("::").next().unwrap_or(&f.name);
            let whole_fn_kind = if kernel {
                Some("kernel")
            } else if let Some((_, pfx, kind)) = prefixes {
                pfx.iter().any(|p| bare.starts_with(p)).then_some(*kind)
            } else if marked && bare.starts_with("hot_") {
                Some("marked")
            } else {
                None
            };
            if let Some(kind) = whole_fn_kind {
                roots.push(Root {
                    name: f.name.clone(),
                    kind: kind.to_string(),
                    fi,
                    fj,
                    range: f.body,
                    line: f.line,
                });
            }
            for (s, e, step) in step_regions(pf, f.body) {
                roots.push(Root {
                    name: format!("step:{step}"),
                    kind: "step".to_string(),
                    fi,
                    fj,
                    range: (s, e),
                    line: pf.toks[s].line,
                });
            }
        }
    }
    roots.sort_by(|a, b| {
        (files[a.fi].rel.as_str(), a.line, a.name.as_str())
            .cmp(&(files[b.fi].rel.as_str(), b.line, b.name.as_str()))
    });
    let regions: Vec<HotRegion> = roots
        .iter()
        .map(|r| HotRegion {
            name: r.name.clone(),
            kind: r.kind.clone(),
            file: files[r.fi].rel.clone(),
            line: r.line,
        })
        .collect();

    // ── Reachability walk ──────────────────────────────────────────
    let mut findings = Vec::new();
    let mut visited: HashSet<String> = HashSet::new();
    // (callee, path from root ending at callee, root description)
    let mut queue: VecDeque<(String, Vec<String>, String)> = VecDeque::new();

    let emit = |pf: &ParsedFile,
                    fn_name: &str,
                    root_desc: &str,
                    path: &[String],
                    range: (usize, usize),
                    loops: &[(usize, usize)],
                    cold: &[(usize, usize)],
                    allowed: &std::collections::BTreeSet<usize>,
                    findings: &mut Vec<Finding>| {
        for a in alloc_sites(pf, range, loops, cold) {
            if allowed.contains(&a.line) {
                continue;
            }
            let via = if path.is_empty() {
                String::new()
            } else {
                format!(" via {}", path.join(" -> "))
            };
            let mut chain = vec![root_desc.to_string()];
            chain.extend(path.iter().cloned());
            findings.push(Finding {
                rule: "hot-path-alloc".into(),
                file: pf.rel.clone(),
                line: a.line,
                function: fn_name.to_string(),
                held: None,
                operation: format!("alloc({})", a.kind),
                chain,
                message: format!(
                    "alloc `{}` at {}:{} in `{fn_name}` <- reachable from {root_desc}{via} — steady-state buffers come from `ChunkPool`; annotate genuinely cold/amortized paths with `{ALLOW_MARKER}: <reason>`",
                    a.kind, pf.rel, a.line
                ),
            });
        }
    };

    for r in &roots {
        let pf = &files[r.fi];
        let f = &pf.functions[r.fj];
        let loops = loop_ranges(pf, f.body);
        let cold = cold_ranges(pf, f.body);
        let root_desc = format!("hot region `{}` at {}:{}", r.name, pf.rel, r.line);
        emit(pf, &f.name, &root_desc, &[], r.range, &loops, &cold, &allowed[r.fi], &mut findings);
        for (idx, _, targets) in sites[r.fi][r.fj].calls() {
            if idx < r.range.0 || idx > r.range.1 {
                continue;
            }
            for t in targets {
                queue.push_back((t.clone(), vec![t.clone()], root_desc.clone()));
            }
        }
    }

    while let Some((name, path, root_desc)) = queue.pop_front() {
        if !visited.insert(name.clone()) {
            continue;
        }
        let Some(occ) = occs.get(&name) else { continue };
        for &(fi, fj) in occ {
            let pf = &files[fi];
            let f = &pf.functions[fj];
            let loops = loop_ranges(pf, f.body);
            let cold = cold_ranges(pf, f.body);
            emit(pf, &f.name, &root_desc, &path, f.body, &loops, &cold, &allowed[fi], &mut findings);
            if path.len() >= 8 {
                continue;
            }
            for (_, _, targets) in sites[fi][fj].calls() {
                for t in targets {
                    if !visited.contains(t) {
                        let mut p = path.clone();
                        p.push(t.clone());
                        queue.push_back((t.clone(), p, root_desc.clone()));
                    }
                }
            }
        }
    }

    findings.sort_by_key(|f| f.sort_key());
    findings.dedup_by(|a, b| a.sort_key() == b.sort_key());
    HotPaths { findings, regions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;

    fn run(src: &str) -> HotPaths {
        let marked = format!("// analyze: scope(hot-path-alloc)\n{src}");
        analyze_hotpath(&[parse_file("t.rs", &marked)])
    }

    #[test]
    fn alloc_in_step_region_is_flagged_at_line() {
        let r = run(
            "impl M {\n    fn drive(&self, ctx: &C) {\n        ctx.step(steps::EXCHANGE, |c| {\n            let copy = self.data.to_vec();\n        });\n    }\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "alloc(to_vec)");
        assert_eq!(r.findings[0].line, 5);
        assert!(r.findings[0].chain[0].contains("step:exchange"), "{:?}", r.findings[0].chain);
        assert_eq!(r.regions.len(), 1);
        assert_eq!(r.regions[0].kind, "step");
    }

    #[test]
    fn alloc_reached_two_deep_carries_call_chain() {
        let r = run(
            "impl M {\n    fn hot_drive(&self) {\n        self.ship();\n    }\n    fn ship(&self) {\n        self.pack();\n    }\n    fn pack(&self) {\n        let v = vec![0u8; 4];\n    }\n}\n",
        );
        let f = r.findings.iter().find(|f| f.operation == "alloc(vec!)").expect("vec! finding");
        assert_eq!(f.line, 10);
        assert_eq!(f.function, "M::pack");
        assert_eq!(f.chain[1..], ["M::ship".to_string(), "M::pack".to_string()]);
    }

    #[test]
    fn setup_alloc_outside_hot_regions_is_clean() {
        let r = run(
            "impl M {\n    fn new(n: usize) -> Self {\n        M { buf: Vec::with_capacity(n), name: String::new() }\n    }\n    fn hot_kernel(&mut self) {\n        self.buf.sort();\n    }\n}\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn with_capacity_flagged_only_inside_a_loop() {
        let r = run(
            "impl M {\n    fn hot_run(&self, n: usize) {\n        let acc = Vec::with_capacity(n);\n        for i in 0..n {\n            let tmp = Vec::with_capacity(8);\n        }\n    }\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "alloc(Vec::with_capacity@loop)");
        assert_eq!(r.findings[0].line, 6);
    }

    #[test]
    fn panic_macro_arguments_are_cold() {
        let r = run(
            "impl M {\n    fn hot_check(&self, n: usize) {\n        assert!(n > 0, \"bad n: {}\", format!(\"{n}\"));\n        debug_assert_eq!(self.v.to_vec().len(), n);\n    }\n}\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn turbofish_collect_is_flagged_at_line() {
        let r = run(
            "impl M {\n    fn hot_gather(&self) {\n        let v = self.xs.iter().map(|x| x + 1).collect::<Vec<u64>>();\n    }\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "alloc(collect)");
        assert_eq!(r.findings[0].line, 4);
    }

    #[test]
    fn closure_alloc_attributed_to_enclosing_fn() {
        let r = run(
            "impl M {\n    fn hot_fanout(&self) {\n        self.dsts.iter().for_each(|d| {\n            let owned = d.name.to_string();\n        });\n    }\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].operation, "alloc(to_string)");
        assert_eq!(r.findings[0].line, 5);
        assert_eq!(r.findings[0].function, "M::hot_fanout");
    }

    #[test]
    fn annotated_alloc_is_allowed_and_reason_is_mandatory() {
        let ok = run(
            "impl M {\n    fn hot_init(&self) {\n        // analyze: allow(hot-path-alloc): one-shot warmup, not steady state\n        let v = vec![0u8; 4];\n    }\n}\n",
        );
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
        let bare = run(
            "impl M {\n    fn hot_init(&self) {\n        // analyze: allow(hot-path-alloc)\n        let v = vec![0u8; 4];\n    }\n}\n",
        );
        assert_eq!(bare.findings.len(), 1, "a bare marker covers nothing");
    }

    #[test]
    fn unmarked_non_workspace_file_has_no_roots() {
        let pf = parse_file(
            "t.rs",
            "impl M { fn hot_run(&self) { let v = vec![1]; } fn drive(&self, ctx: &C) { ctx.step(steps::EXCHANGE, |c| { let v = vec![1]; }); } }",
        );
        let r = analyze_hotpath(&[pf]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r.regions.is_empty());
    }
}
