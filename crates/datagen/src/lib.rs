//! Workload generators for the evaluation (§V).
//!
//! The paper sorts one billion keys drawn from four distributions
//! (Fig. 4): **uniform**, **normal**, **right-skewed**, and
//! **exponential** — the last two specifically chosen to produce datasets
//! "containing many duplicated data entries" that stress the
//! duplicate-splitter investigator. Fig. 8 sorts the Twitter graph, which
//! we stand in for with an R-MAT power-law generator (see DESIGN.md for
//! the substitution argument).
//!
//! Everything is deterministic under a seed and parallelized per chunk so
//! billion-scale-style generation stays fast on a laptop.

#![forbid(unsafe_code)]

pub mod dist;
pub mod rmat;

pub use dist::{generate, generate_partitioned, Distribution};
pub use rmat::{rmat_edges, twitter_like_keys, RmatConfig};

/// Splits `data` into `parts` even contiguous chunks — the initial
/// "data already resident per machine" layout every experiment starts
/// from.
pub fn partition_even<T: Clone>(data: &[T], parts: usize) -> Vec<Vec<T>> {
    assert!(parts > 0);
    let base = data.len() / parts;
    let extra = data.len() % parts;
    let mut out = Vec::with_capacity(parts);
    let mut offset = 0;
    for i in 0..parts {
        let take = base + usize::from(i < extra);
        out.push(data[offset..offset + take].to_vec());
        offset += take;
    }
    debug_assert_eq!(offset, data.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_even_covers_all() {
        let data: Vec<u32> = (0..103).collect();
        let parts = partition_even(&data, 4);
        assert_eq!(parts.len(), 4);
        let flat: Vec<u32> = parts.concat();
        assert_eq!(flat, data);
        assert!(parts.iter().all(|p| p.len() == 25 || p.len() == 26));
    }

    #[test]
    fn partition_more_parts_than_items() {
        let data = vec![1u8, 2];
        let parts = partition_even(&data, 5);
        assert_eq!(parts.concat(), data);
        assert_eq!(parts.iter().filter(|p| p.is_empty()).count(), 3);
    }
}
