//! The four key distributions of Fig. 4.
//!
//! Keys are `u64`. The normal / right-skewed / exponential generators are
//! built from first principles (Box–Muller, log-normal, inverse-CDF) so no
//! extra statistics crate is needed, and each distribution carries a
//! *quantization* step that controls duplication: the paper's skewed and
//! exponential datasets owe their difficulty to massive duplication, which
//! quantization reproduces deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Key distribution selector, mirroring Fig. 4 (a)–(d).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Distribution {
    /// (a) Uniform over `[0, 2^40)`.
    Uniform,
    /// (b) Normal, mean 2^39, σ 2^36, quantized to 2^20 buckets.
    Normal,
    /// (c) Right-skewed (log-normal), coarsely quantized — many duplicates
    ///     concentrated at small values with a long right tail.
    RightSkewed,
    /// (d) Exponential, coarsely quantized — many duplicates at small
    ///     values.
    Exponential,
    /// Adversarial (chaos-harness): a configurable fraction of all keys
    /// collapse onto one hot value, the rest are uniform. At
    /// `hot_key_permille = 900` this is far past the Fig. 3 regime —
    /// splitter duplication is guaranteed at any processor count.
    /// Stored in permille so the enum stays `Eq + Hash`; build with
    /// [`Distribution::skew_storm`].
    SkewStorm {
        /// Fraction of keys equal to the hot key, in permille (0..=1000).
        hot_key_permille: u32,
    },
    /// Adversarial (chaos-harness): keys drawn uniformly from only
    /// `distinct` values, so every value repeats `n / distinct` times on
    /// average. Build with [`Distribution::duplicate_heavy`].
    DuplicateHeavy {
        /// Number of distinct key values (≥ 1; 0 is treated as 1).
        distinct: u64,
    },
}

impl Distribution {
    /// All four, in Fig. 4 order.
    pub const ALL: [Distribution; 4] = [
        Distribution::Uniform,
        Distribution::Normal,
        Distribution::RightSkewed,
        Distribution::Exponential,
    ];

    /// A skew storm where `hot_key_fraction` (in `[0, 1]`) of all keys
    /// equal one hot value. The fraction is rounded to permille.
    pub fn skew_storm(hot_key_fraction: f64) -> Self {
        let permille = (hot_key_fraction.clamp(0.0, 1.0) * 1000.0).round() as u32;
        Distribution::SkewStorm { hot_key_permille: permille }
    }

    /// A duplicate-heavy stream over `distinct` values (0 treated as 1).
    pub fn duplicate_heavy(distinct: u64) -> Self {
        Distribution::DuplicateHeavy { distinct }
    }

    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            Distribution::Uniform => "uniform",
            Distribution::Normal => "normal",
            Distribution::RightSkewed => "right-skewed",
            Distribution::Exponential => "exponential",
            Distribution::SkewStorm { .. } => "skew-storm",
            Distribution::DuplicateHeavy { .. } => "duplicate-heavy",
        }
    }

    /// Draws one key.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        match self {
            Distribution::Uniform => rng.random_range(0..1u64 << 40),
            Distribution::Normal => {
                let z = standard_normal(rng);
                let value = (1u64 << 39) as f64 + z * (1u64 << 36) as f64;
                let clamped = value.clamp(0.0, (1u64 << 40) as f64);
                // Quantize to 2^20 distinct buckets: mild duplication.
                let bucket = 1u64 << 20;
                (clamped as u64 / bucket) * bucket
            }
            Distribution::RightSkewed => {
                // Log-normal (μ = 3, σ = 1) coarsely quantized to buckets
                // of 16. The modal bucket holds ~40% of all keys, so at
                // realistic processor counts several splitters land on the
                // same value — the Fig. 3b/3c regime Table II reports
                // (a single dominant value shared across procs 2–9).
                let z = standard_normal(rng);
                let value = (3.0 + z).exp();
                (value as u64 / 16) * 16
            }
            Distribution::Exponential => {
                // Geometric-shaped: floor of an exponential with mean 2.
                // P(0) ≈ 39%, P(1) ≈ 24%, … — the "many duplicated data
                // entries" dataset of Fig. 4d, scaled to key units of 1000
                // so values remain visibly spread.
                let u: f64 = rng.random_range(f64::EPSILON..1.0);
                let value = (-u.ln() * 2.0) as u64;
                value * 1000
            }
            Distribution::SkewStorm { hot_key_permille } => {
                // Hot key sits mid-range so both splitter halves see it.
                if rng.random_range(0..1000u32) < (*hot_key_permille).min(1000) {
                    1u64 << 39
                } else {
                    rng.random_range(0..1u64 << 40)
                }
            }
            Distribution::DuplicateHeavy { distinct } => {
                // Spread by a large odd stride so the distinct values are
                // not all adjacent integers (exercises splitter search).
                rng.random_range(0..(*distinct).max(1)).wrapping_mul(0x9e37_79b9) & ((1 << 40) - 1)
            }
        }
    }
}

/// One standard-normal draw via Box–Muller (uses one of the pair).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates `n` keys from `dist`, deterministic under `seed`.
/// Chunked across the rayon pool; each chunk derives its own stream so
/// results are identical regardless of thread count.
pub fn generate(dist: Distribution, n: usize, seed: u64) -> Vec<u64> {
    const CHUNK: usize = 1 << 16;
    let chunks = n.div_ceil(CHUNK.max(1)).max(1);
    (0..chunks)
        .into_par_iter()
        .flat_map_iter(|c| {
            let start = c * CHUNK;
            let len = CHUNK.min(n - start);
            let mut rng = StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9e3779b97f4a7c15));
            (0..len).map(move |_| dist.sample(&mut rng)).collect::<Vec<_>>()
        })
        .collect()
}

/// Generates `n` keys split evenly across `machines` partitions — the
/// per-machine input layout of every experiment.
pub fn generate_partitioned(
    dist: Distribution,
    n: usize,
    machines: usize,
    seed: u64,
) -> Vec<Vec<u64>> {
    crate::partition_even(&generate(dist, n, seed), machines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    const N: usize = 200_000;

    fn stats(v: &[u64]) -> (f64, f64) {
        let mean = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / v.len() as f64;
        (mean, var.sqrt())
    }

    #[test]
    fn deterministic_under_seed() {
        for dist in Distribution::ALL {
            let a = generate(dist, 10_000, 42);
            let b = generate(dist, 10_000, 42);
            assert_eq!(a, b, "{}", dist.name());
            let c = generate(dist, 10_000, 43);
            assert_ne!(a, c, "{}", dist.name());
        }
    }

    #[test]
    fn uniform_mean_near_center() {
        let v = generate(Distribution::Uniform, N, 1);
        let (mean, _) = stats(&v);
        let center = (1u64 << 39) as f64;
        assert!((mean - center).abs() < center * 0.02, "mean={mean}");
    }

    #[test]
    fn normal_symmetric_around_mean() {
        let v = generate(Distribution::Normal, N, 2);
        let center = (1u64 << 39) as f64;
        let below = v.iter().filter(|&&x| (x as f64) < center).count();
        let frac = below as f64 / v.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "below-fraction={frac}");
    }

    #[test]
    fn right_skewed_is_right_skewed() {
        let v = generate(Distribution::RightSkewed, N, 3);
        let (mean, _) = stats(&v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let median = sorted[v.len() / 2] as f64;
        assert!(mean > median * 1.2, "mean={mean} median={median}");
    }

    #[test]
    fn exponential_is_right_skewed_too() {
        let v = generate(Distribution::Exponential, N, 4);
        let (mean, _) = stats(&v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let median = sorted[v.len() / 2] as f64;
        assert!(mean > median, "mean={mean} median={median}");
    }

    #[test]
    fn skewed_distributions_have_heavy_duplication() {
        for dist in [Distribution::RightSkewed, Distribution::Exponential] {
            let v = generate(dist, N, 5);
            let distinct: HashSet<u64> = v.iter().copied().collect();
            // Many duplicates: far fewer distinct values than keys.
            assert!(
                distinct.len() < N / 4,
                "{}: {} distinct of {N}",
                dist.name(),
                distinct.len()
            );
        }
    }

    #[test]
    fn uniform_has_little_duplication() {
        let v = generate(Distribution::Uniform, N, 6);
        let distinct: HashSet<u64> = v.iter().copied().collect();
        assert!(distinct.len() > N * 9 / 10);
    }

    #[test]
    fn skew_storm_concentrates_on_hot_key() {
        let dist = Distribution::skew_storm(0.9);
        assert_eq!(dist, Distribution::SkewStorm { hot_key_permille: 900 });
        let v = generate(dist, N, 11);
        let hot = v.iter().filter(|&&x| x == 1u64 << 39).count();
        let frac = hot as f64 / v.len() as f64;
        assert!((frac - 0.9).abs() < 0.02, "hot-fraction={frac}");
        // Determinism, as for the paper distributions.
        assert_eq!(v, generate(dist, N, 11));
    }

    #[test]
    fn skew_storm_extremes() {
        let all_hot = generate(Distribution::skew_storm(1.0), 5_000, 12);
        assert!(all_hot.iter().all(|&x| x == 1u64 << 39));
        let none_hot = generate(Distribution::skew_storm(0.0), 5_000, 13);
        let hot = none_hot.iter().filter(|&&x| x == 1u64 << 39).count();
        assert_eq!(hot, 0);
    }

    #[test]
    fn duplicate_heavy_bounds_distinct_values() {
        for wanted in [1u64, 2, 16, 1000] {
            let v = generate(Distribution::duplicate_heavy(wanted), 50_000, 14);
            let distinct: HashSet<u64> = v.iter().copied().collect();
            assert!(
                distinct.len() as u64 <= wanted,
                "wanted ≤{wanted}, got {}",
                distinct.len()
            );
            // With n >> distinct, nearly all values should actually occur.
            if wanted <= 16 {
                assert_eq!(distinct.len() as u64, wanted);
            }
        }
        // distinct = 0 degrades to a single value, not a panic.
        let v = generate(Distribution::duplicate_heavy(0), 1_000, 15);
        assert_eq!(v.iter().copied().collect::<HashSet<_>>().len(), 1);
    }

    #[test]
    fn adversarial_names() {
        assert_eq!(Distribution::skew_storm(0.5).name(), "skew-storm");
        assert_eq!(Distribution::duplicate_heavy(8).name(), "duplicate-heavy");
    }

    #[test]
    fn generate_exact_lengths() {
        for n in [0usize, 1, 100, 65_536, 65_537, 100_000] {
            assert_eq!(generate(Distribution::Uniform, n, 7).len(), n);
        }
    }

    #[test]
    fn partitioned_matches_flat() {
        let flat = generate(Distribution::Normal, 10_000, 8);
        let parts = generate_partitioned(Distribution::Normal, 10_000, 7, 8);
        assert_eq!(parts.concat(), flat);
    }
}
