//! R-MAT graph generation — the stand-in for the paper's Twitter dataset
//! (Fig. 8, Table III).
//!
//! The Twitter follower graph is a canonical power-law graph: a few
//! celebrity vertices receive an enormous share of edges, so sort keys
//! derived from it (edge destinations, degrees) are heavily duplicated and
//! right-skewed — exactly what makes the Fig. 8 experiment interesting for
//! a load-balanced sort. R-MAT (Chakrabarti et al.) is the standard
//! synthetic generator with the same property.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// R-MAT parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RmatConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex.
    pub edge_factor: usize,
    /// Quadrant probabilities; must sum to ~1. Defaults are the Graph500
    /// values (0.57, 0.19, 0.19, 0.05), which give a Twitter-like skew.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RmatConfig {
    /// Graph500-style defaults at the given scale.
    pub fn new(scale: u32, edge_factor: usize, seed: u64) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
        }
    }

    /// Vertex count (`2^scale`).
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Edge count.
    pub fn num_edges(&self) -> usize {
        self.num_vertices() * self.edge_factor
    }
}

/// Generates the R-MAT edge list. Deterministic under the seed,
/// independent of thread count.
pub fn rmat_edges(config: &RmatConfig) -> Vec<(u32, u32)> {
    let total = config.num_edges();
    const CHUNK: usize = 1 << 14;
    let chunks = total.div_ceil(CHUNK).max(1);
    (0..chunks)
        .into_par_iter()
        .flat_map_iter(|ci| {
            let start = ci * CHUNK;
            let len = CHUNK.min(total - start);
            let mut rng =
                StdRng::seed_from_u64(config.seed ^ (ci as u64).wrapping_mul(0xd1342543de82ef95));
            let cfg = *config;
            (0..len).map(move |_| one_edge(&cfg, &mut rng)).collect::<Vec<_>>()
        })
        .collect()
}

fn one_edge(config: &RmatConfig, rng: &mut StdRng) -> (u32, u32) {
    let (mut src, mut dst) = (0u32, 0u32);
    for _ in 0..config.scale {
        src <<= 1;
        dst <<= 1;
        let r: f64 = rng.random_range(0.0..1.0);
        if r < config.a {
            // upper-left: neither bit set
        } else if r < config.a + config.b {
            dst |= 1;
        } else if r < config.a + config.b + config.c {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    (src, dst)
}

/// Fig. 8 sort keys: edge destination ids of an R-MAT graph, widened to
/// `u64`. On a power-law graph these are massively duplicated (hub
/// vertices appear millions of times), reproducing the Twitter workload's
/// key profile.
pub fn twitter_like_keys(scale: u32, edge_factor: usize, seed: u64) -> Vec<u64> {
    let config = RmatConfig::new(scale, edge_factor, seed);
    rmat_edges(&config)
        .into_iter()
        .map(|(_, dst)| dst as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn edge_counts_and_ranges() {
        let cfg = RmatConfig::new(10, 8, 1);
        let edges = rmat_edges(&cfg);
        assert_eq!(edges.len(), 1024 * 8);
        assert!(edges.iter().all(|&(s, d)| s < 1024 && d < 1024));
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = RmatConfig::new(8, 4, 9);
        assert_eq!(rmat_edges(&cfg), rmat_edges(&cfg));
        let other = RmatConfig::new(8, 4, 10);
        assert_ne!(rmat_edges(&cfg), rmat_edges(&other));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let cfg = RmatConfig::new(12, 16, 3);
        let edges = rmat_edges(&cfg);
        let mut in_degree: HashMap<u32, usize> = HashMap::new();
        for &(_, d) in &edges {
            *in_degree.entry(d).or_default() += 1;
        }
        let max_deg = *in_degree.values().max().unwrap();
        let mean_deg = edges.len() as f64 / in_degree.len() as f64;
        // Power-law: the hub dwarfs the mean.
        assert!(
            max_deg as f64 > 20.0 * mean_deg,
            "max={max_deg} mean={mean_deg}"
        );
    }

    #[test]
    fn twitter_keys_heavily_duplicated() {
        let keys = twitter_like_keys(12, 16, 4);
        let distinct: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert!(distinct.len() < keys.len() / 4);
    }

    #[test]
    fn csr_roundtrip_with_pgxd() {
        // Cross-crate smoke: R-MAT edges load into the data manager's CSR.
        let cfg = RmatConfig::new(8, 4, 5);
        let edges = rmat_edges(&cfg);
        let g = pgxd::csr::Csr::from_edges(cfg.num_vertices(), &edges);
        assert_eq!(g.num_edges(), edges.len());
        assert_eq!(
            g.degrees().iter().sum::<u64>() as usize,
            edges.len()
        );
    }
}
