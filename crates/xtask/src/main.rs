//! Workspace automation. The one subcommand, `lint`, walks every `.rs`
//! file in the workspace and enforces the unsafe-boundary policy that the
//! compiler cannot (run it as `cargo xtask lint`):
//!
//! 1. **Unsafe allowlist** — the `unsafe` keyword may appear only in the
//!    files that implement the exchange hot path and the tracking
//!    allocator (`pgxd::machine`, `pgxd::pool`, `memtrack`). Everything
//!    else stays safe Rust.
//! 2. **`// SAFETY:` comments** — every `unsafe` block and `unsafe impl`
//!    must be preceded (same line or the comment block directly above) by
//!    a comment containing `SAFETY:` stating the proof obligation.
//!    `unsafe fn` declarations are exempt (their contract is documented on
//!    the item), but the blocks inside their callers are not.
//! 3. **`#![forbid(unsafe_code)]`** — every crate root outside the
//!    allowlisted crates must carry the attribute, so new `unsafe` cannot
//!    creep in without showing up in this file's allowlist.
//! 4. **Sync-shim discipline** — inside `crates/pgxd/src`, thread spawning
//!    and locking must go through `pgxd::task::TaskManager` or
//!    `pgxd::sync` (the loom-swappable shim): direct `std::thread::spawn`,
//!    `std::sync::Mutex`, `parking_lot::Mutex`, or `parking_lot::Condvar`
//!    are banned everywhere except `sync.rs` itself.
//!
//! The scanner strips comments, strings, and char literals before looking
//! for tokens, so prose mentioning `unsafe` or a banned path never trips
//! a rule. Exit status is non-zero if any violation is found.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};

/// Files allowed to contain the `unsafe` keyword (workspace-relative,
/// `/`-separated).
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/pgxd/src/machine.rs",
    "crates/pgxd/src/pool.rs",
    "crates/memtrack/src/lib.rs",
];

/// Crates whose roots are NOT required to carry `#![forbid(unsafe_code)]`
/// (they own the allowlisted unsafe files).
const UNSAFE_CRATES: &[&str] = &["crates/pgxd", "crates/memtrack"];

/// Token sequences banned inside `crates/pgxd/src` (must use the
/// `TaskManager` / `pgxd::sync` shim instead), except in the shim itself.
const BANNED_IN_PGXD: &[&str] = &[
    "std::thread::spawn",
    "std::sync::Mutex",
    "parking_lot::Mutex",
    "parking_lot::Condvar",
];

/// The one file allowed to name the banned primitives: the shim.
const SYNC_SHIM: &str = "crates/pgxd/src/sync.rs";

#[derive(Debug, PartialEq, Eq)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A source file split into per-line code and comment text, with string
/// and char literals removed from the code.
struct StrippedFile {
    code: Vec<String>,
    comments: Vec<String>,
}

/// Strips `source` into code and comment channels. Handles line comments,
/// nested block comments, string literals (plain, byte, raw with any `#`
/// count), char literals, and lifetimes.
fn strip(source: &str) -> StrippedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];
    let mut i = 0;
    // Whether the previous code char continues an identifier (so an `r` or
    // `b` here is part of a name like `ptr`, not a raw-string prefix).
    let mut prev_ident = false;

    macro_rules! newline {
        () => {{
            code.push(String::new());
            comments.push(String::new());
        }};
    }
    macro_rules! push_code {
        ($c:expr) => {{
            let c: char = $c;
            if c == '\n' {
                newline!();
            } else {
                code.last_mut().unwrap().push(c);
            }
            prev_ident = c.is_alphanumeric() || c == '_';
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment (covers `///` and `//!` too).
        if c == '/' && next == Some('/') {
            i += 2;
            while i < chars.len() && chars[i] != '\n' {
                comments.last_mut().unwrap().push(chars[i]);
                i += 1;
            }
            continue;
        }

        // Block comment, nested.
        if c == '/' && next == Some('*') {
            i += 2;
            let mut depth = 1usize;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        newline!();
                    } else {
                        comments.last_mut().unwrap().push(chars[i]);
                    }
                    i += 1;
                }
            }
            continue;
        }

        // Raw string r"..." / r#"..."# (and br variants via the `b` case
        // falling through to here on its second char).
        if c == 'r' && !prev_ident && matches!(next, Some('"') | Some('#')) {
            let mut j = i + 1;
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                // Consume until `"` followed by `hashes` hashes.
                j += 1;
                loop {
                    match chars.get(j) {
                        None => break,
                        Some('"') => {
                            let mut k = 0;
                            while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break;
                            }
                            j += 1;
                        }
                        Some('\n') => {
                            newline!();
                            j += 1;
                        }
                        Some(_) => j += 1,
                    }
                }
                i = j;
                prev_ident = true; // a literal ends like an expression
                continue;
            }
            // `r#ident` raw identifier: emit and move on.
            push_code!(c);
            i += 1;
            continue;
        }

        // Byte-string prefix: treat the `b` as code and let the `"` / `r`
        // that follows be handled on the next iteration.
        if c == 'b' && !prev_ident && matches!(next, Some('"') | Some('r') | Some('\'')) {
            // Emit nothing for the prefix; `prev_ident` must stay false so
            // the next char is seen as a literal opener.
            prev_ident = false;
            i += 1;
            continue;
        }

        // String literal.
        if c == '"' {
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        newline!();
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            prev_ident = true;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if next == Some('\\') {
                // Escaped char: consume to the closing quote.
                i += 2;
                while i < chars.len() && chars[i] != '\'' {
                    i += 1;
                }
                i += 1;
                prev_ident = true;
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') && next.is_some() {
                // 'x' — including '"', which must not open a string.
                i += 3;
                prev_ident = true;
                continue;
            }
            // Lifetime or label: emit the quote as code and continue.
            push_code!(c);
            i += 1;
            continue;
        }

        push_code!(c);
        i += 1;
    }

    StrippedFile { code, comments }
}

/// Code tokens with their 1-based line numbers: identifiers (including
/// keywords) as words, everything else as single chars.
fn tokens(code: &[String]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in code.iter().enumerate() {
        let mut word = String::new();
        for ch in line.chars() {
            if ch.is_alphanumeric() || ch == '_' {
                word.push(ch);
            } else {
                if !word.is_empty() {
                    out.push((idx + 1, std::mem::take(&mut word)));
                }
                if !ch.is_whitespace() {
                    out.push((idx + 1, ch.to_string()));
                }
            }
        }
        if !word.is_empty() {
            out.push((idx + 1, word));
        }
    }
    out
}

/// True if line `line` (1-based) is covered by a `SAFETY:` comment — on
/// the same line or in the comment block directly above (only blank or
/// comment-only lines may intervene).
fn has_safety_comment(file: &StrippedFile, line: usize) -> bool {
    let idx = line - 1;
    if file.comments[idx].contains("SAFETY") {
        return true;
    }
    for j in (0..idx).rev() {
        if !file.code[j].trim().is_empty() {
            return false;
        }
        if file.comments[j].contains("SAFETY") {
            return true;
        }
    }
    false
}

/// Lints one file's stripped source. `rel` is the workspace-relative path
/// with `/` separators.
fn lint_file(rel: &str, source: &str, violations: &mut Vec<Violation>) {
    let stripped = strip(source);
    let toks = tokens(&stripped.code);
    let allowlisted = UNSAFE_ALLOWLIST.contains(&rel);

    for (i, (line, tok)) in toks.iter().enumerate() {
        if tok != "unsafe" {
            continue;
        }
        if !allowlisted {
            violations.push(Violation {
                file: rel.to_string(),
                line: *line,
                rule: "unsafe-allowlist",
                message: format!(
                    "`unsafe` outside the allowlist ({}); move the code \
                     into an allowlisted module or make it safe",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            });
            continue;
        }
        // `unsafe fn` declarations (and fn-pointer types) are contracts,
        // not uses; everything else — blocks, impls — needs a SAFETY note.
        if toks.get(i + 1).map(|(_, t)| t.as_str()) == Some("fn") {
            continue;
        }
        if !has_safety_comment(&stripped, *line) {
            violations.push(Violation {
                file: rel.to_string(),
                line: *line,
                rule: "safety-comment",
                message: "`unsafe` block/impl without a `// SAFETY:` comment \
                          directly above"
                    .to_string(),
            });
        }
    }

    if rel.starts_with("crates/pgxd/src/") && rel != SYNC_SHIM {
        for (idx, line) in stripped.code.iter().enumerate() {
            let compact: String = line.chars().filter(|c| !c.is_whitespace()).collect();
            for banned in BANNED_IN_PGXD {
                if compact.contains(banned) {
                    violations.push(Violation {
                        file: rel.to_string(),
                        line: idx + 1,
                        rule: "sync-shim",
                        message: format!(
                            "`{banned}` bypasses the loom-swappable shim; use \
                             `crate::sync` or `TaskManager` instead"
                        ),
                    });
                }
            }
        }
    }
}

/// Checks one crate root for `#![forbid(unsafe_code)]`.
fn lint_crate_root(rel: &str, source: &str, violations: &mut Vec<Violation>) {
    if !source.contains("#![forbid(unsafe_code)]") {
        violations.push(Violation {
            file: rel.to_string(),
            line: 1,
            rule: "forbid-unsafe",
            message: "crate root missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

/// Recursively collects `.rs` files under `dir`, skipping `target` and
/// hidden directories.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Crate root files (`src/lib.rs`, falling back to `src/main.rs`) for
/// every crate under `<root>/crates` plus the workspace root package.
fn crate_roots(root: &Path) -> Vec<(String, PathBuf)> {
    let mut roots = Vec::new();
    let mut dirs: Vec<PathBuf> = vec![root.to_path_buf()];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            if entry.path().is_dir() {
                dirs.push(entry.path());
            }
        }
    }
    for dir in dirs {
        if !dir.join("Cargo.toml").is_file() {
            continue;
        }
        for candidate in ["src/lib.rs", "src/main.rs"] {
            let path = dir.join(candidate);
            if path.is_file() {
                roots.push((relpath(root, &path), path));
                break;
            }
        }
    }
    roots
}

fn relpath(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs every lint over the workspace at `root`.
fn lint_workspace(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();

    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    collect_rs(&root.join("src"), &mut files);
    files.sort();
    for path in &files {
        let rel = relpath(root, path);
        match std::fs::read_to_string(path) {
            Ok(source) => lint_file(&rel, &source, &mut violations),
            Err(e) => violations.push(Violation {
                file: rel,
                line: 0,
                rule: "io",
                message: format!("unreadable: {e}"),
            }),
        }
    }

    for (rel, path) in crate_roots(root) {
        let crate_dir = rel.rsplit_once("/src/").map(|(d, _)| d).unwrap_or("");
        if UNSAFE_CRATES.contains(&crate_dir) {
            continue;
        }
        if let Ok(source) = std::fs::read_to_string(&path) {
            lint_crate_root(&rel, &source, &mut violations);
        }
    }

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    violations
}

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> workspace root. CARGO_MANIFEST_DIR is set both
    // under `cargo run` and `cargo test`.
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::current_dir().expect("cwd"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "lint".to_string());
    match mode.as_str() {
        "lint" => {
            let root = workspace_root();
            let violations = lint_workspace(&root);
            if violations.is_empty() {
                println!("xtask lint: ok ({} allowlisted unsafe files)", UNSAFE_ALLOWLIST.len());
                return;
            }
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("xtask lint: {} violation(s)", violations.len());
            std::process::exit(1);
        }
        other => {
            eprintln!("unknown xtask subcommand `{other}` (expected: lint)");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A scratch workspace on disk, deleted on drop.
    struct Fixture {
        root: PathBuf,
    }

    impl Fixture {
        fn new() -> Self {
            static SEQ: AtomicUsize = AtomicUsize::new(0);
            let root = std::env::temp_dir().join(format!(
                "xtask-lint-test-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&root).unwrap();
            Fixture { root }
        }

        fn write(&self, rel: &str, content: &str) -> &Self {
            let path = self.root.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, content).unwrap();
            self
        }

        fn lint(&self) -> Vec<Violation> {
            lint_workspace(&self.root)
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }

    fn rules(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn clean_crate_passes() {
        let fx = Fixture::new();
        fx.write("crates/demo/Cargo.toml", "[package]\nname = \"demo\"\n")
            .write(
                "crates/demo/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() -> u32 { 1 }\n",
            );
        assert_eq!(fx.lint(), Vec::new());
    }

    #[test]
    fn unallowed_unsafe_flagged() {
        let fx = Fixture::new();
        fx.write("crates/demo/Cargo.toml", "[package]\nname = \"demo\"\n")
            .write(
                "crates/demo/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
            );
        let v = fx.lint();
        assert_eq!(rules(&v), vec!["unsafe-allowlist"]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn missing_safety_comment_flagged_in_allowlisted_file() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write(
                "crates/pgxd/src/pool.rs",
                "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
            );
        let v = fx.lint();
        assert_eq!(rules(&v), vec!["safety-comment"]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn safety_comment_same_line_or_above_accepted() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write(
                "crates/pgxd/src/pool.rs",
                "pub fn f(p: *const u8) -> (u8, u8) {\n\
                 \x20   // SAFETY: caller contract, see docs.\n\
                 \x20   let a = unsafe { *p };\n\
                 \x20   let b = unsafe { *p }; // SAFETY: as above.\n\
                 \x20   (a, b)\n\
                 }\n\
                 // SAFETY: no shared state.\n\
                 unsafe impl Send for Foo {}\n\
                 struct Foo(*mut u8);\n",
            );
        assert_eq!(fx.lint(), Vec::new());
    }

    #[test]
    fn unsafe_fn_declaration_exempt_from_safety_comment() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write(
                "crates/pgxd/src/pool.rs",
                "/// Contract: p valid.\npub unsafe fn f(p: *const u8) {}\n\
                 struct R { g: unsafe fn(*mut u8) }\n",
            );
        assert_eq!(fx.lint(), Vec::new());
    }

    #[test]
    fn unsafe_in_comments_and_strings_ignored() {
        let fx = Fixture::new();
        fx.write("crates/demo/Cargo.toml", "[package]\nname = \"demo\"\n")
            .write(
                "crates/demo/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 //! Docs may say unsafe { freely }.\n\
                 /* block comments too: unsafe impl */\n\
                 pub fn f() -> (&'static str, &'static str, char) {\n\
                 \x20   (\"unsafe { in a string }\", r#\"raw unsafe \"quoted\" here\"#, '\"')\n\
                 }\n",
            );
        assert_eq!(fx.lint(), Vec::new());
    }

    #[test]
    fn missing_forbid_attribute_flagged() {
        let fx = Fixture::new();
        fx.write("crates/demo/Cargo.toml", "[package]\nname = \"demo\"\n")
            .write("crates/demo/src/lib.rs", "pub fn f() {}\n");
        let v = fx.lint();
        assert_eq!(rules(&v), vec!["forbid-unsafe"]);
    }

    #[test]
    fn pgxd_and_memtrack_exempt_from_forbid() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write("crates/pgxd/src/lib.rs", "pub fn f() {}\n")
            .write("crates/memtrack/Cargo.toml", "[package]\nname = \"m\"\n")
            .write("crates/memtrack/src/lib.rs", "pub fn g() {}\n");
        assert_eq!(fx.lint(), Vec::new());
    }

    #[test]
    fn banned_sync_primitive_in_pgxd_flagged() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write(
                "crates/pgxd/src/lib.rs",
                "pub fn f() {\n    let _ = std::thread::spawn(|| ());\n}\n\
                 pub fn g() {\n    let _m = parking_lot::Mutex::new(());\n}\n",
            );
        let v = fx.lint();
        assert_eq!(rules(&v), vec!["sync-shim", "sync-shim"]);
        assert_eq!((v[0].line, v[1].line), (2, 5));
    }

    #[test]
    fn sync_shim_itself_may_name_the_primitives() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write(
                "crates/pgxd/src/sync.rs",
                "pub type M<T> = parking_lot::Mutex<T>;\n",
            )
            .write(
                "crates/pgxd/src/lib.rs",
                "pub mod sync;\n// std::sync::Mutex in a comment is fine.\n",
            );
        assert_eq!(fx.lint(), Vec::new());
    }

    #[test]
    fn tests_and_benches_are_scanned_too() {
        let fx = Fixture::new();
        fx.write("crates/demo/Cargo.toml", "[package]\nname = \"demo\"\n")
            .write("crates/demo/src/lib.rs", "#![forbid(unsafe_code)]\n")
            .write(
                "crates/demo/tests/t.rs",
                "#[test]\nfn t() { let p = &1u8 as *const u8; let _ = unsafe { *p }; }\n",
            );
        assert_eq!(rules(&fx.lint()), vec!["unsafe-allowlist"]);
    }

    #[test]
    fn real_workspace_is_clean() {
        let violations = lint_workspace(&workspace_root());
        assert!(
            violations.is_empty(),
            "workspace lint violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
