//! Workspace automation. `cargo xtask check` is the one entry point CI and
//! humans use: it runs the policy lints below plus the `pgxd-analyze`
//! static analyses (lock-order, blocking-under-lock, panic-surface,
//! chunk-custody, wait-graph, atomics-ordering, hot-path-alloc,
//! loop-discipline, determinism — see `crates/analyze`) and
//! fails if either finds anything. `lint` and `analyze` run each half
//! alone; every subcommand takes `--json`.
//!
//! The lint rules:
//!
//! 1. **Unsafe allowlist** — the `unsafe` keyword may appear only in the
//!    files that implement the exchange hot path and the tracking
//!    allocator (`pgxd::machine`, `pgxd::pool`, `memtrack`). Everything
//!    else stays safe Rust.
//! 2. **`// SAFETY:` comments** — every `unsafe` block and `unsafe impl`
//!    must be preceded (same line or the comment block directly above) by
//!    a comment containing `SAFETY:` stating the proof obligation.
//!    `unsafe fn` declarations are exempt (their contract is documented on
//!    the item), but the blocks inside their callers are not.
//! 3. **`#![forbid(unsafe_code)]`** — every crate root outside the
//!    allowlisted crates must carry the attribute, so new `unsafe` cannot
//!    creep in without showing up in this file's allowlist.
//! 4. **Sync-shim discipline** — inside `crates/pgxd/src`, thread spawning
//!    and locking must go through `pgxd::task::TaskManager` or
//!    `pgxd::sync` (the loom-swappable shim): `std::thread::spawn`,
//!    `std::sync::{Mutex, RwLock, Condvar, mpsc}`, and the `parking_lot`
//!    equivalents are banned everywhere except `sync.rs` itself.
//! 5. **Use-declaration tracking** — rule 4's literal matching cannot see
//!    `use std::sync::{Mutex as M}` renames, brace-group imports, or
//!    globs over a banned module's parent; the `use`-tree parser from
//!    `pgxd-analyze` catches the declarations (`sync-shim-use`) and a
//!    scope map catches uses of the renamed idents (`sync-shim-alias`).
//!
//! The scanner (shared with `pgxd-analyze`) strips comments, strings, and
//! char literals before looking for tokens, so prose mentioning `unsafe`
//! or a banned path never trips a rule. Exit status is non-zero if any
//! violation or analyzer finding survives.

#![forbid(unsafe_code)]

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::path::{Path, PathBuf};

use pgxd_analyze::items::{parse_uses, KEYWORDS};
use pgxd_analyze::lexer::{strip, tokens, StrippedFile, Tok};

/// Files allowed to contain the `unsafe` keyword (workspace-relative,
/// `/`-separated).
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/pgxd/src/machine.rs",
    "crates/pgxd/src/pool.rs",
    "crates/memtrack/src/lib.rs",
];

/// Crates whose roots are NOT required to carry `#![forbid(unsafe_code)]`
/// (they own the allowlisted unsafe files).
const UNSAFE_CRATES: &[&str] = &["crates/pgxd", "crates/memtrack"];

/// Paths banned inside `crates/pgxd/src` (must use the `TaskManager` /
/// `pgxd::sync` shim instead), except in the shim itself. Deliberately
/// absent: `std::sync::Arc` and `std::sync::Barrier` (loom-compatible and
/// used by machine/cluster on purpose) and `std::thread::scope` (the task
/// manager's scoped threads are the sanctioned spawn path).
const BANNED_IN_PGXD: &[&str] = &[
    "std::thread::spawn",
    "std::sync::Mutex",
    "std::sync::RwLock",
    "std::sync::Condvar",
    "std::sync::mpsc",
    "parking_lot::Mutex",
    "parking_lot::RwLock",
    "parking_lot::Condvar",
];

/// The one file allowed to name the banned primitives: the shim.
const SYNC_SHIM: &str = "crates/pgxd/src/sync.rs";

#[derive(Debug, PartialEq, Eq)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The banned path `p` matches (segment-aligned), if any.
fn banned_path(p: &str) -> Option<&'static str> {
    BANNED_IN_PGXD
        .iter()
        .find(|b| p == **b || p.strip_prefix(**b).is_some_and(|rest| rest.starts_with("::")))
        .copied()
}

/// True if line `line` (1-based) is covered by a `SAFETY:` comment — on
/// the same line or in the comment block directly above (only blank or
/// comment-only lines may intervene).
fn has_safety_comment(file: &StrippedFile, line: usize) -> bool {
    let idx = line - 1;
    if file.comments[idx].contains("SAFETY") {
        return true;
    }
    for j in (0..idx).rev() {
        if !file.code[j].trim().is_empty() {
            return false;
        }
        if file.comments[j].contains("SAFETY") {
            return true;
        }
    }
    false
}

fn is_ident(t: &str) -> bool {
    t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') && !KEYWORDS.contains(&t)
}

/// Rules 4–5: literal banned paths, banned `use` declarations (including
/// renames, brace groups, and globs over a banned module's parent), and
/// uses of renamed idents. `flagged` dedupes lines across the three rules.
fn lint_sync_shim(
    rel: &str,
    stripped: &StrippedFile,
    toks: &[Tok],
    violations: &mut Vec<Violation>,
) {
    let mut flagged: BTreeSet<usize> = BTreeSet::new();

    // Rule 4 backstop: literal path on one line, whitespace-insensitive.
    for (idx, line) in stripped.code.iter().enumerate() {
        let compact: String = line.chars().filter(|c| !c.is_whitespace()).collect();
        for banned in BANNED_IN_PGXD {
            if compact.contains(banned) && flagged.insert(idx + 1) {
                violations.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: "sync-shim",
                    message: format!(
                        "`{banned}` bypasses the loom-swappable shim; use \
                         `crate::sync` or `TaskManager` instead"
                    ),
                });
            }
        }
    }

    // Rule 5a: `use` declarations resolving to a banned path.
    let uses = parse_uses(toks);
    for u in &uses {
        if let Some(b) = banned_path(&u.path) {
            if flagged.insert(u.line) {
                violations.push(Violation {
                    file: rel.to_string(),
                    line: u.line,
                    rule: "sync-shim-use",
                    message: format!(
                        "`use {}` (as `{}`) imports the banned `{b}`; use \
                         `crate::sync` or `TaskManager` instead",
                        u.path, u.name
                    ),
                });
            }
        } else if u.name == "*"
            && BANNED_IN_PGXD.iter().any(|b| {
                b.strip_prefix(u.path.as_str()).is_some_and(|rest| rest.starts_with("::"))
            })
        {
            // A glob over e.g. `std::sync` silently pulls Mutex into scope.
            if flagged.insert(u.line) {
                violations.push(Violation {
                    file: rel.to_string(),
                    line: u.line,
                    rule: "sync-shim-use",
                    message: format!(
                        "`use {}::*` glob-imports banned primitives; import \
                         the allowed items explicitly",
                        u.path
                    ),
                });
            }
        }
    }

    // Rule 5b: uses of idents whose `use`-expansion hits a banned path
    // (e.g. `M::new()` after `use std::sync::{Mutex as M};`).
    let alias: HashMap<&str, &str> = uses
        .iter()
        .filter(|u| u.name != "*")
        .map(|u| (u.name.as_str(), u.path.as_str()))
        .collect();
    if alias.is_empty() {
        return;
    }
    let in_decl = |i: usize| uses.iter().any(|u| i >= u.decl_tokens.0 && i < u.decl_tokens.1);
    for i in 0..toks.len() {
        let t = &toks[i].text;
        if !is_ident(t) || in_decl(i) {
            continue;
        }
        let Some(base) = alias.get(t.as_str()) else {
            continue;
        };
        // Must be the start of a path: not a field/method access, not a
        // later path segment.
        if i > 0 && matches!(toks[i - 1].text.as_str(), "." | ":") {
            continue;
        }
        // Compose trailing `::segment`s onto the expansion.
        let mut full = (*base).to_string();
        let mut j = i + 1;
        while j + 2 < toks.len()
            && toks[j].text == ":"
            && toks[j + 1].text == ":"
            && is_ident(&toks[j + 2].text)
        {
            full.push_str("::");
            full.push_str(&toks[j + 2].text);
            j += 3;
        }
        if let Some(b) = banned_path(&full) {
            if flagged.insert(toks[i].line) {
                violations.push(Violation {
                    file: rel.to_string(),
                    line: toks[i].line,
                    rule: "sync-shim-alias",
                    message: format!(
                        "`{t}` expands to the banned `{b}` (via its `use` \
                         declaration); use `crate::sync` or `TaskManager` \
                         instead"
                    ),
                });
            }
        }
    }
}

/// Lints one file's stripped source. `rel` is the workspace-relative path
/// with `/` separators.
fn lint_file(rel: &str, source: &str, violations: &mut Vec<Violation>) {
    let stripped = strip(source);
    let toks = tokens(&stripped.code);
    let allowlisted = UNSAFE_ALLOWLIST.contains(&rel);

    for (i, tok) in toks.iter().enumerate() {
        if tok.text != "unsafe" {
            continue;
        }
        if !allowlisted {
            violations.push(Violation {
                file: rel.to_string(),
                line: tok.line,
                rule: "unsafe-allowlist",
                message: format!(
                    "`unsafe` outside the allowlist ({}); move the code \
                     into an allowlisted module or make it safe",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            });
            continue;
        }
        // `unsafe fn` declarations (and fn-pointer types) are contracts,
        // not uses; everything else — blocks, impls — needs a SAFETY note.
        if toks.get(i + 1).map(|t| t.text.as_str()) == Some("fn") {
            continue;
        }
        if !has_safety_comment(&stripped, tok.line) {
            violations.push(Violation {
                file: rel.to_string(),
                line: tok.line,
                rule: "safety-comment",
                message: "`unsafe` block/impl without a `// SAFETY:` comment \
                          directly above"
                    .to_string(),
            });
        }
    }

    if rel.starts_with("crates/pgxd/src/") && rel != SYNC_SHIM {
        lint_sync_shim(rel, &stripped, &toks, violations);
    }
}

/// Checks one crate root for `#![forbid(unsafe_code)]`.
fn lint_crate_root(rel: &str, source: &str, violations: &mut Vec<Violation>) {
    if !source.contains("#![forbid(unsafe_code)]") {
        violations.push(Violation {
            file: rel.to_string(),
            line: 1,
            rule: "forbid-unsafe",
            message: "crate root missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

/// Recursively collects `.rs` files under `dir`, skipping `target` and
/// hidden directories.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Crate root files (`src/lib.rs`, falling back to `src/main.rs`) for
/// every crate under `<root>/crates` plus the workspace root package.
fn crate_roots(root: &Path) -> Vec<(String, PathBuf)> {
    let mut roots = Vec::new();
    let mut dirs: Vec<PathBuf> = vec![root.to_path_buf()];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            if entry.path().is_dir() {
                dirs.push(entry.path());
            }
        }
    }
    for dir in dirs {
        if !dir.join("Cargo.toml").is_file() {
            continue;
        }
        for candidate in ["src/lib.rs", "src/main.rs"] {
            let path = dir.join(candidate);
            if path.is_file() {
                roots.push((relpath(root, &path), path));
                break;
            }
        }
    }
    roots
}

fn relpath(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs every lint over the workspace at `root`.
fn lint_workspace(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();

    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    collect_rs(&root.join("src"), &mut files);
    files.sort();
    for path in &files {
        let rel = relpath(root, path);
        match std::fs::read_to_string(path) {
            Ok(source) => lint_file(&rel, &source, &mut violations),
            Err(e) => violations.push(Violation {
                file: rel,
                line: 0,
                rule: "io",
                message: format!("unreadable: {e}"),
            }),
        }
    }

    for (rel, path) in crate_roots(root) {
        let crate_dir = rel.rsplit_once("/src/").map(|(d, _)| d).unwrap_or("");
        if UNSAFE_CRATES.contains(&crate_dir) {
            continue;
        }
        if let Ok(source) = std::fs::read_to_string(&path) {
            lint_crate_root(&rel, &source, &mut violations);
        }
    }

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    violations
}

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> workspace root. CARGO_MANIFEST_DIR is set both
    // under `cargo run` and `cargo test`.
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::current_dir().expect("cwd"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn json_esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn violations_json(violations: &[Violation]) -> String {
    let items: Vec<String> = violations
        .iter()
        .map(|v| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                json_esc(&v.file),
                v.line,
                json_esc(v.rule),
                json_esc(&v.message)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Runs the lint half. Returns violations (already printed unless `json`).
fn run_lint(root: &Path, json: bool) -> Vec<Violation> {
    let violations = lint_workspace(root);
    if json {
        return violations;
    }
    if violations.is_empty() {
        println!(
            "xtask lint: ok ({} allowlisted unsafe files)",
            UNSAFE_ALLOWLIST.len()
        );
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
    }
    violations
}

/// Runs the analyzer half, writing `results/analyze_report.json`. Returns
/// the report (already printed unless `json`). The persisted file gets
/// `"timings_ms": null` — per-pass wall times only ride the `--json`
/// stdout path, so the committed report never drifts on timing jitter.
fn run_analyze(root: &Path, json: bool) -> pgxd_analyze::Report {
    let mut report = match pgxd_analyze::analyze_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask analyze: cannot read workspace sources: {e}");
            std::process::exit(1);
        }
    };
    let out = root.join("results");
    let timings = std::mem::take(&mut report.timings_ms);
    let report_json = pgxd_analyze::render_json(&report);
    report.timings_ms = timings;
    if std::fs::create_dir_all(&out).is_ok() {
        if let Err(e) = std::fs::write(out.join("analyze_report.json"), &report_json) {
            eprintln!("xtask analyze: cannot write results/analyze_report.json: {e}");
        }
    }
    if !json {
        let human = pgxd_analyze::render_human(&report);
        if report.is_clean() {
            print!("{human}");
        } else {
            eprint!("{human}");
        }
    }
    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let mode = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "check".to_string());
    let root = workspace_root();
    match mode.as_str() {
        "lint" => {
            let violations = run_lint(&root, json);
            if json {
                println!("{}", violations_json(&violations));
            }
            if !violations.is_empty() {
                std::process::exit(1);
            }
        }
        "analyze" => {
            let report = run_analyze(&root, json);
            if json {
                println!("{}", pgxd_analyze::render_json(&report));
            }
            if !report.is_clean() {
                std::process::exit(1);
            }
        }
        "check" => {
            let violations = run_lint(&root, json);
            let report = run_analyze(&root, json);
            if json {
                println!(
                    "{{\"lint\": {}, \"analyze\": {}}}",
                    violations_json(&violations),
                    pgxd_analyze::render_json(&report)
                );
            } else if violations.is_empty() && report.is_clean() {
                println!("xtask check: ok");
            }
            if !violations.is_empty() || !report.is_clean() {
                std::process::exit(1);
            }
        }
        other => {
            eprintln!("unknown xtask subcommand `{other}` (expected: check, lint, analyze; optional --json)");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A scratch workspace on disk, deleted on drop.
    struct Fixture {
        root: PathBuf,
    }

    impl Fixture {
        fn new() -> Self {
            static SEQ: AtomicUsize = AtomicUsize::new(0);
            let root = std::env::temp_dir().join(format!(
                "xtask-lint-test-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&root).unwrap();
            Fixture { root }
        }

        fn write(&self, rel: &str, content: &str) -> &Self {
            let path = self.root.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, content).unwrap();
            self
        }

        fn lint(&self) -> Vec<Violation> {
            lint_workspace(&self.root)
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }

    fn rules(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn clean_crate_passes() {
        let fx = Fixture::new();
        fx.write("crates/demo/Cargo.toml", "[package]\nname = \"demo\"\n")
            .write(
                "crates/demo/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() -> u32 { 1 }\n",
            );
        assert_eq!(fx.lint(), Vec::new());
    }

    #[test]
    fn unallowed_unsafe_flagged() {
        let fx = Fixture::new();
        fx.write("crates/demo/Cargo.toml", "[package]\nname = \"demo\"\n")
            .write(
                "crates/demo/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
            );
        let v = fx.lint();
        assert_eq!(rules(&v), vec!["unsafe-allowlist"]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn missing_safety_comment_flagged_in_allowlisted_file() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write(
                "crates/pgxd/src/pool.rs",
                "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
            );
        let v = fx.lint();
        assert_eq!(rules(&v), vec!["safety-comment"]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn safety_comment_same_line_or_above_accepted() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write(
                "crates/pgxd/src/pool.rs",
                "pub fn f(p: *const u8) -> (u8, u8) {\n\
                 \x20   // SAFETY: caller contract, see docs.\n\
                 \x20   let a = unsafe { *p };\n\
                 \x20   let b = unsafe { *p }; // SAFETY: as above.\n\
                 \x20   (a, b)\n\
                 }\n\
                 // SAFETY: no shared state.\n\
                 unsafe impl Send for Foo {}\n\
                 struct Foo(*mut u8);\n",
            );
        assert_eq!(fx.lint(), Vec::new());
    }

    #[test]
    fn unsafe_fn_declaration_exempt_from_safety_comment() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write(
                "crates/pgxd/src/pool.rs",
                "/// Contract: p valid.\npub unsafe fn f(p: *const u8) {}\n\
                 struct R { g: unsafe fn(*mut u8) }\n",
            );
        assert_eq!(fx.lint(), Vec::new());
    }

    #[test]
    fn unsafe_in_comments_and_strings_ignored() {
        let fx = Fixture::new();
        fx.write("crates/demo/Cargo.toml", "[package]\nname = \"demo\"\n")
            .write(
                "crates/demo/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 //! Docs may say unsafe { freely }.\n\
                 /* block comments too: unsafe impl */\n\
                 pub fn f() -> (&'static str, &'static str, char) {\n\
                 \x20   (\"unsafe { in a string }\", r#\"raw unsafe \"quoted\" here\"#, '\"')\n\
                 }\n",
            );
        assert_eq!(fx.lint(), Vec::new());
    }

    #[test]
    fn missing_forbid_attribute_flagged() {
        let fx = Fixture::new();
        fx.write("crates/demo/Cargo.toml", "[package]\nname = \"demo\"\n")
            .write("crates/demo/src/lib.rs", "pub fn f() {}\n");
        let v = fx.lint();
        assert_eq!(rules(&v), vec!["forbid-unsafe"]);
    }

    #[test]
    fn pgxd_and_memtrack_exempt_from_forbid() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write("crates/pgxd/src/lib.rs", "pub fn f() {}\n")
            .write("crates/memtrack/Cargo.toml", "[package]\nname = \"m\"\n")
            .write("crates/memtrack/src/lib.rs", "pub fn g() {}\n");
        assert_eq!(fx.lint(), Vec::new());
    }

    #[test]
    fn banned_sync_primitive_in_pgxd_flagged() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write(
                "crates/pgxd/src/lib.rs",
                "pub fn f() {\n    let _ = std::thread::spawn(|| ());\n}\n\
                 pub fn g() {\n    let _m = parking_lot::Mutex::new(());\n}\n",
            );
        let v = fx.lint();
        assert_eq!(rules(&v), vec!["sync-shim", "sync-shim"]);
        assert_eq!((v[0].line, v[1].line), (2, 5));
    }

    #[test]
    fn newly_banned_literal_paths_flagged() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write(
                "crates/pgxd/src/lib.rs",
                "pub fn f() {\n    let _ = std::sync::RwLock::new(0u32);\n\
                 \x20   let (_tx, _rx) = std::sync::mpsc::channel::<u8>();\n}\n\
                 pub struct C(std::sync::Condvar);\n",
            );
        let v = fx.lint();
        assert_eq!(rules(&v), vec!["sync-shim", "sync-shim", "sync-shim"]);
        assert_eq!(
            v.iter().map(|v| v.line).collect::<Vec<_>>(),
            vec![2, 3, 5]
        );
    }

    #[test]
    fn sync_shim_itself_may_name_the_primitives() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write(
                "crates/pgxd/src/sync.rs",
                "pub type M<T> = parking_lot::Mutex<T>;\n",
            )
            .write(
                "crates/pgxd/src/lib.rs",
                "pub mod sync;\n// std::sync::Mutex in a comment is fine.\n",
            );
        assert_eq!(fx.lint(), Vec::new());
    }

    #[test]
    fn renamed_import_and_its_uses_flagged() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write(
                "crates/pgxd/src/lib.rs",
                "use std::sync::{Mutex as M};\n\
                 pub fn f() {\n    let _m = M::new(0u32);\n}\n",
            );
        let v = fx.lint();
        assert_eq!(rules(&v), vec!["sync-shim-use", "sync-shim-alias"]);
        assert_eq!((v[0].line, v[1].line), (1, 3));
    }

    #[test]
    fn module_alias_composition_flagged() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write(
                "crates/pgxd/src/lib.rs",
                "use std::sync as ss;\n\
                 pub fn f() {\n    let _m = ss::Mutex::new(0u32);\n}\n",
            );
        let v = fx.lint();
        assert_eq!(rules(&v), vec!["sync-shim-alias"]);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn glob_over_banned_parent_flagged() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write(
                "crates/pgxd/src/lib.rs",
                "use std::sync::*;\npub fn f() {}\n",
            );
        let v = fx.lint();
        assert_eq!(rules(&v), vec!["sync-shim-use"]);
    }

    #[test]
    fn shim_and_harmless_imports_pass() {
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write(
                "crates/pgxd/src/lib.rs",
                "use crate::sync::Mutex;\n\
                 use std::sync::{Arc, Barrier};\n\
                 use std::sync::atomic::{AtomicUsize, Ordering};\n\
                 pub fn f() {\n    let _m = Mutex::new(0u32);\n    let _a = Arc::new(1u8);\n}\n",
            );
        assert_eq!(fx.lint(), Vec::new());
    }

    #[test]
    fn aliased_use_fixture_produces_expected_findings() {
        // The shared should-fail fixture from the analyzer's corpus,
        // dropped into a scratch pgxd tree.
        let src = include_str!("../../analyze/tests/fixtures/fail_aliased_use.rs");
        let fx = Fixture::new();
        fx.write("crates/pgxd/Cargo.toml", "[package]\nname = \"pgxd\"\n")
            .write("crates/pgxd/src/aliased.rs", src)
            .write("crates/pgxd/src/lib.rs", "pub mod aliased;\n");
        let v = fx.lint();
        let got: Vec<(&'static str, usize)> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert_eq!(
            got,
            vec![
                ("sync-shim", 7),        // literal `use std::sync::Mutex as ...`
                ("sync-shim-use", 8),    // brace-group renames (one line)
                ("sync-shim-alias", 11), // InjRw::new
                ("sync-shim-alias", 12), // InjStdMutex::new
                ("sync-shim-alias", 13), // inj_chan::channel
            ]
        );
    }

    #[test]
    fn tests_and_benches_are_scanned_too() {
        let fx = Fixture::new();
        fx.write("crates/demo/Cargo.toml", "[package]\nname = \"demo\"\n")
            .write("crates/demo/src/lib.rs", "#![forbid(unsafe_code)]\n")
            .write(
                "crates/demo/tests/t.rs",
                "#[test]\nfn t() { let p = &1u8 as *const u8; let _ = unsafe { *p }; }\n",
            );
        assert_eq!(rules(&fx.lint()), vec!["unsafe-allowlist"]);
    }

    #[test]
    fn violations_json_shape() {
        let v = vec![Violation {
            file: "a\"b.rs".to_string(),
            line: 3,
            rule: "sync-shim",
            message: "bad\nthing".to_string(),
        }];
        assert_eq!(
            violations_json(&v),
            "[{\"file\":\"a\\\"b.rs\",\"line\":3,\"rule\":\"sync-shim\",\"message\":\"bad\\nthing\"}]"
        );
        assert_eq!(violations_json(&[]), "[]");
    }

    #[test]
    fn real_workspace_is_clean() {
        let violations = lint_workspace(&workspace_root());
        assert!(
            violations.is_empty(),
            "workspace lint violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
