//! Validates the trace exporters against a real JSON parser.
//!
//! `pgxd` writes Chrome `trace_event` JSON and JSONL by hand (it has no
//! serde dependency); this test runs a traced 4-machine sort and checks,
//! with `serde_json`, that the output actually parses and has the shape
//! Perfetto / chrome://tracing expects: a top-level `traceEvents` array,
//! one `"X"` (complete) span per machine for each §IV step, exchange
//! send/receive instants, and a positive send/receive overlap ratio.

use pgxd::trace::TraceConfig;
use pgxd_bench::runner::{run_pgxd_sort_traced, Workload};
use pgxd_core::SortConfig;
use pgxd_datagen::Distribution;
use serde_json::Value;

const MACHINES: usize = 4;

fn traced_log() -> pgxd::TraceLog {
    let workload = Workload::Dist {
        dist: Distribution::Uniform,
        n: 100_000,
        seed: 11,
    };
    let (result, log) = run_pgxd_sort_traced(
        &workload,
        MACHINES,
        2,
        SortConfig::default(),
        pgxd::DEFAULT_BUFFER_BYTES,
        TraceConfig::enabled(),
    );
    assert!(result.ranges_ascending());
    log.expect("tracing was enabled")
}

#[test]
fn chrome_export_parses_and_covers_all_steps() {
    let log = traced_log();
    let doc: Value = serde_json::from_str(&log.to_chrome_json())
        .expect("chrome trace output must be valid JSON");
    let events = doc["traceEvents"]
        .as_array()
        .expect("traceEvents must be an array");
    assert!(!events.is_empty());

    // One complete ("X") span per machine for each of the six §IV steps.
    for step in pgxd_core::steps::ALL {
        for m in 0..MACHINES as u64 {
            assert!(
                events.iter().any(|e| e["ph"] == "X"
                    && e["name"] == step
                    && e["pid"] == m
                    && e["dur"].as_f64().is_some_and(|d| d >= 0.0)),
                "no complete span for step {step} on machine {m}"
            );
        }
    }

    // Exchange send/receive instants from every machine.
    for m in 0..MACHINES as u64 {
        for name in ["chunk_send", "chunk_recv"] {
            assert!(
                events
                    .iter()
                    .any(|e| e["ph"] == "i" && e["name"] == name && e["pid"] == m),
                "machine {m} recorded no {name} instant"
            );
        }
    }

    // Spans carry microsecond timestamps and machine-named processes.
    assert!(events.iter().any(|e| e["ph"] == "M"
        && e["name"] == "process_name"
        && e["args"]["name"].as_str().is_some_and(|n| n.starts_with("machine "))));

    // The §IV-C claim the trace exists to audit: sends overlap receives.
    let ratios = log.exchange_overlap_ratios();
    assert_eq!(ratios.len(), MACHINES);
    assert!(
        ratios.iter().any(|&r| r > 0.0),
        "expected a positive exchange overlap ratio, got {ratios:?}"
    );
}

#[test]
fn jsonl_export_parses_line_by_line() {
    let log = traced_log();
    let jsonl = log.to_jsonl();
    let mut lines = 0usize;
    for line in jsonl.lines() {
        let v: Value = serde_json::from_str(line).expect("every JSONL line must parse");
        assert!(v["t_ns"].as_u64().is_some());
        assert!(v["machine"].as_u64().is_some_and(|m| m < MACHINES as u64));
        assert!(v["name"].as_str().is_some());
        lines += 1;
    }
    assert_eq!(lines, log.events.len());
}
