//! Criterion bench for the single-machine kernels: quicksort vs TimSort
//! vs radix vs std, and the balanced merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgxd_algos::exec::even_chunk_bounds;
use pgxd_algos::merge::balanced_merge;
use pgxd_algos::pquicksort::parallel_quicksort;
use pgxd_algos::quicksort::quicksort;
use pgxd_algos::radix::radix_sort;
use pgxd_algos::timsort::timsort;
use pgxd_datagen::{generate, Distribution};

fn bench_local_sorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_sorts");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let n = 200_000;
    let data = generate(Distribution::Uniform, n, 1);

    group.bench_function(BenchmarkId::new("quicksort", n), |b| {
        b.iter(|| {
            let mut v = data.clone();
            quicksort(&mut v);
            v
        });
    });
    group.bench_function(BenchmarkId::new("timsort", n), |b| {
        b.iter(|| {
            let mut v = data.clone();
            timsort(&mut v);
            v
        });
    });
    group.bench_function(BenchmarkId::new("radix", n), |b| {
        b.iter(|| {
            let mut v = data.clone();
            radix_sort(&mut v);
            v
        });
    });
    group.bench_function(BenchmarkId::new("ssssort", n), |b| {
        b.iter(|| pgxd_algos::ssssort::super_scalar_sample_sort(data.clone()));
    });
    group.bench_function(BenchmarkId::new("std_unstable", n), |b| {
        b.iter(|| {
            let mut v = data.clone();
            v.sort_unstable();
            v
        });
    });
    group.bench_function(BenchmarkId::new("parallel_quicksort_w4", n), |b| {
        b.iter(|| parallel_quicksort(data.clone(), 4));
    });
    group.finish();
}

fn bench_balanced_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("balanced_merge");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let n = 200_000;
    for runs in [4usize, 8, 16] {
        let mut data = generate(Distribution::Uniform, n, 2);
        let bounds = even_chunk_bounds(data.len(), runs);
        for w in bounds.windows(2) {
            data[w[0]..w[1]].sort_unstable();
        }
        group.bench_with_input(BenchmarkId::new("runs", runs), &runs, |b, _| {
            b.iter(|| balanced_merge(data.clone(), &bounds, 2));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_local_sorts, bench_balanced_merge);
criterion_main!(benches);
