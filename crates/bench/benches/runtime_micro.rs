//! Microbenchmarks of the runtime substrate itself: collective latency,
//! exchange throughput across buffer sizes, and the task manager's
//! scheduling overhead. These quantify the framework costs the paper's
//! §III claims PGX.D keeps low.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgxd::cluster::{Cluster, ClusterConfig};

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for p in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("barrier_x100", p), &p, |b, &p| {
            let cluster = Cluster::new(ClusterConfig::new(p));
            b.iter(|| {
                cluster.run(|ctx| {
                    for _ in 0..100 {
                        ctx.barrier();
                    }
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("allgather_1k", p), &p, |b, &p| {
            let cluster = Cluster::new(ClusterConfig::new(p));
            b.iter(|| {
                cluster.run(|ctx| {
                    let v: Vec<u64> = vec![ctx.id() as u64; 1024];
                    ctx.all_gather(v)
                })
            });
        });
    }
    group.finish();
}

fn bench_exchange_buffer_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_throughput");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let n_per_machine = 100_000usize;
    for buffer in [4usize << 10, 64 << 10, 256 << 10] {
        group.bench_with_input(
            BenchmarkId::new("p4_100k_each", format!("{}KiB", buffer >> 10)),
            &buffer,
            |b, &buffer| {
                let cluster = Cluster::new(ClusterConfig::new(4).buffer_bytes(buffer));
                b.iter(|| {
                    cluster.run(|ctx| {
                        let data: Vec<u64> =
                            (0..n_per_machine as u64).map(|i| i + ctx.id() as u64).collect();
                        // Even split to all machines.
                        let quarter = n_per_machine / 4;
                        let offsets: Vec<usize> =
                            (0..=4).map(|j| j * quarter).collect();
                        ctx.exchange_by_offsets(&data, &offsets)
                    })
                });
            },
        );
    }
    group.finish();
}

/// The pooled/overlapped exchange pipeline against the legacy per-element
/// path, same workload and split. Each [`Cluster::run`] builds fresh
/// machine contexts (and thus a cold chunk pool), so every iteration does
/// one warm-up exchange and then three measured-together rounds — the
/// steady state the pool is designed for.
fn bench_exchange_pooled_vs_legacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_pipeline");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let n_per_machine = 250_000usize;
    for legacy in [false, true] {
        let name = if legacy { "legacy" } else { "pooled" };
        group.bench_function(BenchmarkId::new("p4_w2_250k_each_x3", name), |b| {
            let cluster = Cluster::new(
                ClusterConfig::new(4).workers_per_machine(2).buffer_bytes(256 << 10),
            );
            b.iter(|| {
                cluster.run(|ctx| {
                    let data: Vec<u64> =
                        (0..n_per_machine as u64).map(|i| i + ctx.id() as u64).collect();
                    let quarter = n_per_machine / 4;
                    let offsets: Vec<usize> = (0..=4).map(|j| j * quarter).collect();
                    let exchange = |ctx: &mut pgxd::MachineCtx| {
                        if legacy {
                            ctx.exchange_by_offsets_legacy(&data, &offsets)
                        } else {
                            ctx.exchange_by_offsets(&data, &offsets)
                        }
                    };
                    let warm = exchange(ctx); // fills the pool
                    ctx.barrier();
                    let mut placed = warm.0.len();
                    for _ in 0..3 {
                        placed += exchange(ctx).0.len();
                    }
                    placed
                })
            });
        });
    }
    group.finish();
}

/// Step-1 kernels head-to-head on one machine's shard of uniform u64:
/// the legacy chunk-quicksort path vs the in-place samplesort and the
/// LSD radix fast path, plus the two k-way merge combiners.
fn bench_local_sort_kernels(c: &mut Criterion) {
    use pgxd_algos::ipssort::in_place_sample_sort;
    use pgxd_algos::kway::kway_merge_into;
    use pgxd_algos::merge::parallel_kway_merge_into;
    use pgxd_algos::quicksort::quicksort;
    use pgxd_algos::radix::radix_sort_with_scratch;

    let mut group = c.benchmark_group("local_sort_kernels");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let n = 1usize << 20;
    let base: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15)).collect();

    group.bench_function("quicksort_1m", |b| {
        b.iter(|| {
            let mut v = base.clone();
            quicksort(&mut v);
            v
        });
    });
    group.bench_function("ipssort_1m", |b| {
        b.iter(|| {
            let mut v = base.clone();
            in_place_sample_sort(&mut v);
            v
        });
    });
    group.bench_function("radix_1m", |b| {
        let mut scratch = Vec::new();
        b.iter(|| {
            let mut v = base.clone();
            radix_sort_with_scratch(&mut v, &mut scratch);
            v
        });
    });

    // Merge combiners over 8 pre-sorted runs of the same total size.
    let runs_flat: Vec<u64> = {
        let mut v = base.clone();
        let chunk = n / 8;
        for c in v.chunks_mut(chunk) {
            c.sort_unstable();
        }
        v
    };
    let bounds: Vec<usize> = (0..=8).map(|i| i * (n / 8)).collect();
    group.bench_function("kway_merge_8x128k", |b| {
        let mut out = vec![0u64; n];
        b.iter(|| {
            let runs: Vec<&[u64]> =
                bounds.windows(2).map(|w| &runs_flat[w[0]..w[1]]).collect();
            kway_merge_into(&runs, &mut out);
            out.last().copied()
        });
    });
    group.bench_function("par_kway_merge_8x128k_w4", |b| {
        let mut out = vec![0u64; n];
        b.iter(|| {
            let runs: Vec<&[u64]> =
                bounds.windows(2).map(|w| &runs_flat[w[0]..w[1]]).collect();
            parallel_kway_merge_into(&runs, &mut out, 4);
            out.last().copied()
        });
    });
    group.finish();
}

fn bench_task_manager(c: &mut Criterion) {
    let mut group = c.benchmark_group("task_manager");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("spawn_and_drain_1k_tasks_w4", |b| {
        let tm = pgxd::task::TaskManager::new(4);
        b.iter(|| {
            let counter = std::sync::atomic::AtomicUsize::new(0);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..1000)
                .map(|_| {
                    let c = &counter;
                    Box::new(move || {
                        c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            tm.run_tasks(tasks);
            assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 1000);
        });
    });
    group.bench_function("par_chunks_1m_w4", |b| {
        let tm = pgxd::task::TaskManager::new(4);
        let mut data: Vec<u64> = (0..1_000_000).collect();
        b.iter(|| {
            tm.par_chunks_mut(&mut data, |_, chunk| {
                for x in chunk.iter_mut() {
                    *x = x.wrapping_mul(2654435761);
                }
            });
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_collectives,
    bench_exchange_buffer_sizes,
    bench_exchange_pooled_vs_legacy,
    bench_local_sort_kernels,
    bench_task_manager
);
criterion_main!(benches);
