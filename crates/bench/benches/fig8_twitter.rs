//! Criterion bench for Fig. 8: Twitter-like (R-MAT) keys, PGX.D vs Spark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgxd_bench::runner::{run_pgxd_sort, run_spark_sort, Workload, DEFAULT_SEED};
use pgxd_core::SortConfig;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_twitter");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let workload = Workload::Twitter {
        scale: 13,
        edge_factor: 8,
        seed: DEFAULT_SEED,
    };
    for p in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("pgxd", p), &p, |b, &p| {
            b.iter(|| run_pgxd_sort(&workload, p, 2, SortConfig::default()));
        });
        group.bench_with_input(BenchmarkId::new("spark", p), &p, |b, &p| {
            b.iter(|| run_spark_sort(&workload, p, 2));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
