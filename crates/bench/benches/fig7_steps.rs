//! Criterion bench for Fig. 7: the sort on normal vs right-skewed data
//! (the per-step breakdown itself is printed by `exp fig7`; this bench
//! tracks the end-to-end times of the two workloads the figure uses).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgxd_bench::runner::{run_pgxd_sort, Workload, DEFAULT_SEED};
use pgxd_core::SortConfig;
use pgxd_datagen::Distribution;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_steps");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for dist in [Distribution::Normal, Distribution::RightSkewed] {
        let workload = Workload::Dist {
            dist,
            n: 100_000,
            seed: DEFAULT_SEED,
        };
        group.bench_with_input(BenchmarkId::new("pgxd_p8", dist.name()), &workload, |b, w| {
            b.iter(|| run_pgxd_sort(w, 8, 2, SortConfig::default()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
