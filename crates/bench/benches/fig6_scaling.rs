//! Criterion bench for Fig. 6: PGX.D vs Spark across machine counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgxd_bench::runner::{run_pgxd_sort, run_spark_sort, Workload, DEFAULT_SEED};
use pgxd_core::SortConfig;
use pgxd_datagen::Distribution;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let workload = Workload::Dist {
        dist: Distribution::Uniform,
        n: 100_000,
        seed: DEFAULT_SEED,
    };
    for p in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("pgxd", p), &p, |b, &p| {
            b.iter(|| run_pgxd_sort(&workload, p, 2, SortConfig::default()));
        });
        group.bench_with_input(BenchmarkId::new("spark", p), &p, |b, &p| {
            b.iter(|| run_spark_sort(&workload, p, 2));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
