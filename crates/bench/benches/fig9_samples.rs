//! Criterion bench for Figs. 9/10: the sample-size sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgxd_bench::runner::{run_pgxd_sort, Workload, DEFAULT_SEED};
use pgxd_core::SortConfig;

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_samples");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let workload = Workload::Twitter {
        scale: 13,
        edge_factor: 8,
        seed: DEFAULT_SEED,
    };
    for factor in [0.004f64, 0.4, 1.0, 1.4] {
        group.bench_with_input(
            BenchmarkId::new("pgxd_p8", format!("{factor}X")),
            &factor,
            |b, &f| {
                b.iter(|| {
                    run_pgxd_sort(&workload, 8, 2, SortConfig::default().sample_factor(f))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
