//! Criterion bench for the DESIGN.md ablations: investigator on/off,
//! balanced vs k-way final merge, and the distributed baselines
//! (bitonic, radix) against the PGX.D sort.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd_baselines::bitonic::bitonic_sort_dist;
use pgxd_baselines::radix::radix_sort_dist;
use pgxd_bench::runner::{run_pgxd_sort, Workload, DEFAULT_SEED};
use pgxd_core::SortConfig;
use pgxd_datagen::{generate_partitioned, Distribution};

fn bench_investigator(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_investigator");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let workload = Workload::Dist {
        dist: Distribution::Exponential,
        n: 100_000,
        seed: DEFAULT_SEED,
    };
    for inv in [true, false] {
        group.bench_with_input(BenchmarkId::new("investigator", inv), &inv, |b, &inv| {
            b.iter(|| run_pgxd_sort(&workload, 8, 2, SortConfig::default().investigator(inv)));
        });
    }
    group.finish();
}

fn bench_final_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_final_merge");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let workload = Workload::Dist {
        dist: Distribution::Uniform,
        n: 100_000,
        seed: DEFAULT_SEED,
    };
    for balanced in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("balanced", balanced),
            &balanced,
            |b, &balanced| {
                b.iter(|| {
                    run_pgxd_sort(
                        &workload,
                        8,
                        2,
                        SortConfig::default().balanced_final_merge(balanced),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_distributed_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_baselines");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let n = 100_000;
    let machines = 4; // power of two for bitonic
    let parts = generate_partitioned(Distribution::Uniform, n, machines, DEFAULT_SEED);

    group.bench_function("pgxd_sample_sort", |b| {
        let workload = Workload::Dist {
            dist: Distribution::Uniform,
            n,
            seed: DEFAULT_SEED,
        };
        b.iter(|| run_pgxd_sort(&workload, machines, 2, SortConfig::default()));
    });
    group.bench_function("distributed_bitonic", |b| {
        b.iter(|| {
            let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
            cluster.run(|ctx| bitonic_sort_dist(ctx, parts[ctx.id()].clone()))
        });
    });
    group.bench_function("distributed_radix", |b| {
        b.iter(|| {
            let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
            cluster.run(|ctx| radix_sort_dist(ctx, parts[ctx.id()].clone()))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_investigator,
    bench_final_merge,
    bench_distributed_baselines
);
criterion_main!(benches);
