//! Criterion bench for Fig. 5: PGX.D total sort time per distribution.
//!
//! Sized down for CI/laptops; the `exp fig5` binary runs the full sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgxd_bench::runner::{run_pgxd_sort, Workload, DEFAULT_SEED};
use pgxd_core::SortConfig;
use pgxd_datagen::Distribution;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_total_time");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let n = 100_000;
    for dist in Distribution::ALL {
        let workload = Workload::Dist {
            dist,
            n,
            seed: DEFAULT_SEED,
        };
        group.bench_with_input(
            BenchmarkId::new("pgxd_p8", dist.name()),
            &workload,
            |b, w| {
                b.iter(|| run_pgxd_sort(w, 8, 2, SortConfig::default()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
