//! Experiment harness shared by the `exp` binary and the Criterion
//! benches.
//!
//! One function per experiment family, each returning structured results
//! ([`ExpResult`]) that the binary renders as paper-style tables and
//! writes to `results/*.json`.
//!
//! ## Timing on small hosts
//!
//! The paper ran 32 real machines; this harness simulates machines as
//! thread groups on one host. Where the host has fewer cores than
//! simulated machines, measured wall time cannot show strong scaling
//! (all "machines" share the same silicon), so every result carries:
//!
//! - `wall_time` — honest measured wall time of the whole run;
//! - `modeled_comm_time` — wire time the Table I network model charges
//!   for the observed traffic;
//! - [`ExpResult::scaled_time`] — `wall_time / p + modeled_comm_time`, a
//!   perfect-overlap scaling model used *only* for the shape of the
//!   Fig. 6 scaling curves (documented in EXPERIMENTS.md).
//!
//! Comparative claims (PGX.D vs Spark at the same `p`) always use
//! measured wall time.

#![forbid(unsafe_code)]

pub mod runner;
pub mod table;

pub use runner::{
    run_exchange_bench, run_pgxd_sort, run_spark_sort, ExchangeBenchResult, ExpResult, Workload,
    DEFAULT_SEED, DEFAULT_WORKERS,
};
