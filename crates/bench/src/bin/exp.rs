//! The experiment harness: one subcommand per table/figure of the paper's
//! evaluation (§V), plus the DESIGN.md ablations.
//!
//! ```text
//! exp fig5    [--n=N] [--procs=8,16,32,52] [--workers=W] [--seed=S]
//! exp fig6    [--n=N] [--procs=...] ...
//! exp fig7    [--n=N] [--procs=P]
//! exp table2  [--n=N]
//! exp fig8    [--scale=S] [--ef=E] [--procs=...]
//! exp table3  [--scale=S] [--ef=E]
//! exp fig9    [--scale=S] [--ef=E] [--procs=P]
//! exp fig10   [--scale=S] [--ef=E] [--procs=...]
//! exp fig11   [--scale=S] [--ef=E]
//! exp ablation [--n=N] [--procs=P]
//! exp exchange [--n=N] [--procs=P] [--workers=W]
//! exp trace   [--n=N] [--procs=P] [--workers=W]
//! exp chaos   [--n=N] [--procs=P] [--workers=W] [--seed=S]
//! exp localsort [--n=N] [--procs=P] [--workers=W] [--seed=S]
//! exp health  [--n=N] [--procs=P] [--workers=W] [--seed=S]
//! exp all     — run everything with defaults
//! ```
//!
//! Every experiment prints a paper-style table and writes raw results to
//! `results/<name>.json`. `exp exchange` benchmarks the §IV-C offset
//! exchange in isolation — pooled/overlapped pipeline vs the legacy
//! per-element path — and writes `results/bench_exchange.json`.
//!
//! `exp trace` runs one sort with the structured trace layer on and writes
//! `results/trace_sort.json` (Chrome `trace_event` format — load it in
//! Perfetto / chrome://tracing) plus `results/trace_sort.jsonl`, then
//! prints the derived views (step Gantt, exchange overlap, barrier skew).
//! Passing `--trace` to `fig7` does the same for its normal-distribution
//! run (`results/trace_fig7.json`).
//!
//! `exp chaos` sweeps the fault-injection presets (see `pgxd::fault`)
//! across seeds on a skew-storm workload, recording survival, structured
//! failures, and latency degradation vs a fault-free baseline
//! (`results/chaos_sweep.json`).
//!
//! `exp localsort` sweeps every step-1 kernel (`LocalSortAlgo`) on
//! uniform u64 keys under the structured trace layer, reporting keys/s,
//! `local_sort` p50/p95, the local_sort+final_merge share of wall time,
//! and the classify/permute/merge phase spans, all against the
//! `pquick+balanced` baseline from the same batch
//! (`results/bench_localsort.json`).
//!
//! `exp health` drives a skewed chaos run (skew-storm keys, amplified
//! straggler plan) with the in-flight health monitor armed and asserts
//! the resulting verdicts name the straggler machine; the structured
//! health report goes to `results/health_report.json` and the final
//! registry snapshot to `results/health_metrics.prom` (Prometheus text).
//!
//! Every experiment additionally folds a compact per-run summary
//! (keys/s, step p50/p95, pool hit rate, exchange bytes) into
//! `results/bench_summary.json` (schema `pgxd-bench-summary/1`) so the
//! perf trajectory across PRs is machine-trackable from one file.

use pgxd::trace::TraceConfig;
use pgxd_bench::runner::{
    fmt_secs, run_exchange_bench, run_pgxd_sort, run_pgxd_sort_traced, run_spark_sort,
    ExchangeBenchResult, ExpResult, Workload,
};
use pgxd_bench::table::Table;
use pgxd_core::{LoadStats, SortConfig};
use pgxd_datagen::Distribution;
use std::collections::HashMap;

// Fig. 11 needs heap accounting: install the tracking allocator for the
// whole harness (negligible overhead for the other experiments).
#[global_allocator]
static GLOBAL: pgxd_memtrack::TrackingAlloc = pgxd_memtrack::TrackingAlloc;

/// CLI options with paper-flavoured defaults scaled to a laptop.
#[derive(Debug, Clone)]
struct Opts {
    n: usize,
    procs: Vec<usize>,
    workers: usize,
    seed: u64,
    scale: u32,
    edge_factor: usize,
    trace: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            n: 1_000_000,
            procs: vec![8, 16, 32, 52],
            workers: pgxd_bench::DEFAULT_WORKERS,
            seed: pgxd_bench::DEFAULT_SEED,
            scale: 17,
            edge_factor: 8,
            trace: false,
        }
    }
}

fn parse_opts(args: &[String]) -> Opts {
    parse_opts_from(Opts::default(), args)
}

/// [`parse_opts`] starting from subcommand-specific defaults.
fn parse_opts_from(mut opts: Opts, args: &[String]) -> Opts {
    let mut flags: HashMap<String, String> = HashMap::new();
    for arg in args {
        if let Some(rest) = arg.strip_prefix("--") {
            if let Some((k, v)) = rest.split_once('=') {
                flags.insert(k.to_string(), v.to_string());
            } else if rest == "trace" {
                opts.trace = true;
            } else {
                eprintln!("ignoring flag without value: {arg} (use --key=value)");
            }
        }
    }
    if let Some(v) = flags.get("n") {
        opts.n = v.parse().expect("--n must be an integer");
    }
    if let Some(v) = flags.get("procs") {
        opts.procs = v
            .split(',')
            .map(|s| s.trim().parse().expect("--procs must be a comma list"))
            .collect();
    }
    if let Some(v) = flags.get("workers") {
        opts.workers = v.parse().expect("--workers must be an integer");
    }
    if let Some(v) = flags.get("seed") {
        opts.seed = v.parse().expect("--seed must be an integer");
    }
    if let Some(v) = flags.get("scale") {
        opts.scale = v.parse().expect("--scale must be an integer");
    }
    if let Some(v) = flags.get("ef") {
        opts.edge_factor = v.parse().expect("--ef must be an integer");
    }
    opts
}

fn save_json(name: &str, results: &[ExpResult]) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(results) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(raw results → {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize results: {e}"),
    }
    let summaries: Vec<serde_json::Value> = results.iter().map(run_summary).collect();
    bench_summary_insert(name, serde_json::Value::Array(summaries));
}

/// The compact per-run view `results/bench_summary.json` tracks across
/// PRs: throughput, the step tail, pool efficiency, and exchange volume.
fn run_summary(r: &ExpResult) -> serde_json::Value {
    let steps: serde_json::Map<String, serde_json::Value> = r
        .step_secs_p50
        .iter()
        .zip(&r.step_secs_p95)
        .map(|((name, p50), (_, p95))| {
            (name.clone(), serde_json::json!({ "p50_secs": p50, "p95_secs": p95 }))
        })
        .collect();
    serde_json::json!({
        "system": r.system,
        "workload": r.workload,
        "machines": r.machines,
        "workers": r.workers,
        "total_keys": r.total_keys,
        "wall_secs": r.wall_secs,
        "keys_per_sec": r.total_keys as f64 / r.wall_secs.max(1e-12),
        "steps": steps,
        "pool_hit_rate": r.exchange_pool_hit_rate(),
        "exchange_bytes_placed": r.exchange_bytes_placed,
        "comm_bytes": r.comm_bytes,
    })
}

/// Read-modify-writes `results/bench_summary.json`: each experiment owns
/// one key under `"experiments"`, so repeated/partial harness runs
/// accumulate into one schema-versioned document instead of scattering
/// per-figure files only.
fn bench_summary_insert(experiment: &str, value: serde_json::Value) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join("bench_summary.json");
    let mut doc = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .filter(|d| d.get("schema").and_then(|s| s.as_str()) == Some("pgxd-bench-summary/1"))
        .unwrap_or_else(|| serde_json::json!({ "schema": "pgxd-bench-summary/1", "experiments": {} }));
    if !doc["experiments"].is_object() {
        doc["experiments"] = serde_json::json!({});
    }
    doc["experiments"][experiment] = value;
    match serde_json::to_string_pretty(&doc) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize bench summary: {e}"),
    }
}

fn dist_workload(dist: Distribution, opts: &Opts) -> Workload {
    Workload::Dist {
        dist,
        n: opts.n,
        seed: opts.seed,
    }
}

fn twitter_workload(opts: &Opts) -> Workload {
    Workload::Twitter {
        scale: opts.scale,
        edge_factor: opts.edge_factor,
        seed: opts.seed,
    }
}

// ---------------------------------------------------------------------------
// Fig. 5: PGX.D total execution time, four distributions, proc sweep.
// ---------------------------------------------------------------------------
fn fig5(opts: &Opts) {
    println!("\n=== Fig. 5: PGX.D total sort time by distribution ===");
    println!("(n = {} keys, {} workers/machine)\n", opts.n, opts.workers);
    let mut results = Vec::new();
    let mut table = Table::new(vec![
        "procs",
        "uniform",
        "normal",
        "right-skewed",
        "exponential",
    ]);
    for &p in &opts.procs {
        let mut cells = vec![p.to_string()];
        for dist in Distribution::ALL {
            let r = run_pgxd_sort(&dist_workload(dist, opts), p, opts.workers, SortConfig::default());
            assert!(r.ranges_ascending(), "sort output out of order");
            cells.push(fmt_secs(r.wall_secs));
            results.push(r);
        }
        table.row(cells);
    }
    table.print();
    save_json("fig5", &results);
}

// ---------------------------------------------------------------------------
// Fig. 6: strong scaling, PGX.D vs Spark.
// ---------------------------------------------------------------------------
fn fig6(opts: &Opts) {
    println!(
        "\n=== Fig. 6: strong scaling, PGX.D vs Spark (uniform, n = {}) ===",
        opts.n
    );
    println!("(speedup columns use the work-scaled model; see EXPERIMENTS.md)\n");
    let workload = dist_workload(Distribution::Uniform, opts);
    let mut results = Vec::new();
    let mut table = Table::new(vec![
        "procs",
        "pgxd wall",
        "spark wall",
        "spark/pgxd",
        "pgxd speedup",
        "spark speedup",
    ]);
    let mut base: Option<(f64, f64)> = None;
    for &p in &opts.procs {
        let rp = run_pgxd_sort(&workload, p, opts.workers, SortConfig::default());
        let rs = run_spark_sort(&workload, p, opts.workers);
        let (bp, bs) = *base.get_or_insert((rp.scaled_time(), rs.scaled_time()));
        table.row(vec![
            p.to_string(),
            fmt_secs(rp.wall_secs),
            fmt_secs(rs.wall_secs),
            format!("{:.2}x", rs.wall_secs / rp.wall_secs),
            format!("{:.2}x", bp / rp.scaled_time()),
            format!("{:.2}x", bs / rs.scaled_time()),
        ]);
        results.push(rp);
        results.push(rs);
    }
    table.print();
    save_json("fig6", &results);
}

// ---------------------------------------------------------------------------
// Fig. 7: per-step breakdown, normal + right-skewed.
// ---------------------------------------------------------------------------
fn fig7(opts: &Opts) {
    let p = *opts.procs.first().unwrap_or(&8);
    println!("\n=== Fig. 7: per-step time (p = {p}, n = {}) ===\n", opts.n);
    let trace_cfg = if opts.trace {
        TraceConfig::enabled()
    } else {
        TraceConfig::disabled()
    };
    let (rn, trace_log) = run_pgxd_sort_traced(
        &dist_workload(Distribution::Normal, opts),
        p,
        opts.workers,
        SortConfig::default(),
        pgxd::DEFAULT_BUFFER_BYTES,
        trace_cfg,
    );
    let rs = run_pgxd_sort(
        &dist_workload(Distribution::RightSkewed, opts),
        p,
        opts.workers,
        SortConfig::default(),
    );
    // Max is the critical-path column (a step is as slow as its slowest
    // machine); p50/p95 show how far the stragglers sit above the pack.
    let mut table = Table::new(vec![
        "step",
        "normal max",
        "normal p50",
        "normal p95",
        "right-skewed max",
        "right-skewed p50",
        "right-skewed p95",
    ]);
    for (i, step) in pgxd_core::steps::ALL.iter().enumerate() {
        table.row(vec![
            step.to_string(),
            fmt_secs(rn.step_secs[i].1),
            fmt_secs(rn.step_secs_p50[i].1),
            fmt_secs(rn.step_secs_p95[i].1),
            fmt_secs(rs.step_secs[i].1),
            fmt_secs(rs.step_secs_p50[i].1),
            fmt_secs(rs.step_secs_p95[i].1),
        ]);
    }
    table.print();
    if let Some(log) = trace_log {
        save_trace("fig7", &log);
    }
    let total_n: f64 = rn.step_secs.iter().map(|s| s.1).sum();
    let total_s: f64 = rs.step_secs.iter().map(|s| s.1).sum();
    println!(
        "exchange share of step total: normal {:.1}%, right-skewed {:.1}%",
        100.0 * rn.step_secs[4].1 / total_n,
        100.0 * rs.step_secs[4].1 / total_s
    );
    println!(
        "exchange pool: normal {:.1}% hit rate ({} chunks sent, {} recycled); \
         right-skewed {:.1}% hit rate ({} sent, {} recycled)",
        100.0 * rn.exchange_pool_hit_rate(),
        rn.exchange_chunks_sent,
        rn.exchange_chunks_recycled,
        100.0 * rs.exchange_pool_hit_rate(),
        rs.exchange_chunks_sent,
        rs.exchange_chunks_recycled,
    );
    save_json("fig7", &[rn, rs]);
}

// ---------------------------------------------------------------------------
// Table II: per-processor share after sorting, 10 procs, 4 distributions.
// ---------------------------------------------------------------------------
fn table2(opts: &Opts) {
    let p = 10;
    println!(
        "\n=== Table II: data share per processor (p = {p}, n = {}) ===\n",
        opts.n
    );
    let mut header = vec!["distribution".to_string()];
    header.extend((0..p).map(|i| format!("proc{i}")));
    let mut table = Table::new(header);
    let mut results = Vec::new();
    for dist in Distribution::ALL {
        let r = run_pgxd_sort(&dist_workload(dist, opts), p, opts.workers, SortConfig::default());
        let mut cells = vec![dist.name().to_string()];
        cells.extend(r.shares().iter().map(|s| format!("{:.3}%", s * 100.0)));
        table.row(cells);
        results.push(r);
    }
    table.print();
    save_json("table2", &results);
}

// ---------------------------------------------------------------------------
// Fig. 8: Twitter-like graph keys, PGX.D vs Spark.
// ---------------------------------------------------------------------------
fn fig8(opts: &Opts) {
    let workload = twitter_workload(opts);
    println!("\n=== Fig. 8: {} — PGX.D vs Spark ===\n", workload.label());
    let mut table = Table::new(vec!["procs", "pgxd wall", "spark wall", "spark/pgxd"]);
    let mut results = Vec::new();
    for &p in &opts.procs {
        let rp = run_pgxd_sort(&workload, p, opts.workers, SortConfig::default());
        let rs = run_spark_sort(&workload, p, opts.workers);
        table.row(vec![
            p.to_string(),
            fmt_secs(rp.wall_secs),
            fmt_secs(rs.wall_secs),
            format!("{:.2}x", rs.wall_secs / rp.wall_secs),
        ]);
        results.push(rp);
        results.push(rs);
    }
    table.print();
    save_json("fig8", &results);
}

// ---------------------------------------------------------------------------
// Table III: per-processor key ranges on the Twitter-like keys.
// ---------------------------------------------------------------------------
fn table3(opts: &Opts) {
    let workload = twitter_workload(opts);
    println!(
        "\n=== Table III: key range per processor ({}) ===\n",
        workload.label()
    );
    let mut results = Vec::new();
    for p in [8usize, 12, 16] {
        let r = run_pgxd_sort(&workload, p, opts.workers, SortConfig::default());
        assert!(r.ranges_ascending(), "ranges must ascend with machine id");
        println!("p = {p}:");
        let mut table = Table::new(vec!["proc", "range"]);
        for (m, range) in r.ranges.iter().enumerate() {
            let cell = match range {
                Some((lo, hi)) => format!("{lo} - {hi}"),
                None => "(empty)".to_string(),
            };
            table.row(vec![format!("proc{m}"), cell]);
        }
        table.print();
        println!();
        results.push(r);
    }
    save_json("table3", &results);
}

// ---------------------------------------------------------------------------
// Fig. 9: sample-size sweep — communication overhead and total time.
// ---------------------------------------------------------------------------
const FIG9_FACTORS: [f64; 7] = [0.004, 0.04, 0.4, 1.0, 1.004, 1.04, 1.4];

fn fig9(opts: &Opts) {
    let p = *opts.procs.get(1).unwrap_or(&16);
    let workload = twitter_workload(opts);
    println!(
        "\n=== Fig. 9: sample-size sweep on {} (p = {p}, X = 256KiB/p) ===\n",
        workload.label()
    );
    let mut table = Table::new(vec![
        "factor",
        "comm bytes",
        "hotspot recv",
        "hot dst",
        "dst skew",
        "bottleneck comm",
        "total wall",
        "load diff",
    ]);
    let mut results = Vec::new();
    for f in FIG9_FACTORS {
        let r = run_pgxd_sort(
            &workload,
            p,
            opts.workers,
            SortConfig::default().sample_factor(f),
        );
        // Per-receiver accounting must cover exactly the bytes the fabric
        // carried — the skew column is meaningless otherwise.
        let dst_sum: u64 = r.per_dst_bytes.iter().sum();
        assert_eq!(
            dst_sum, r.comm_bytes,
            "per-dst bytes must balance against bytes_sent"
        );
        let (hot_dst, hot_bytes) = r
            .per_dst_bytes
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| **b)
            .map(|(d, b)| (d, *b))
            .unwrap_or((0, 0));
        let mean = dst_sum as f64 / r.per_dst_bytes.len().max(1) as f64;
        table.row(vec![
            format!("{f}X"),
            format!("{}", r.comm_bytes),
            format!("{}", r.max_recv_bytes),
            format!("m{hot_dst}"),
            format!("{:.2}x", hot_bytes as f64 / mean.max(1.0)),
            fmt_secs(r.bottleneck_comm_secs),
            fmt_secs(r.wall_secs),
            r.load_difference().to_string(),
        ]);
        results.push(r);
    }
    table.print();
    println!("(dst skew = hottest receiver's bytes over the per-receiver mean)");
    save_json("fig9", &results);
}

// ---------------------------------------------------------------------------
// Fig. 10: min/max load vs sample size across proc counts.
// ---------------------------------------------------------------------------
fn fig10(opts: &Opts) {
    let workload = twitter_workload(opts);
    println!(
        "\n=== Fig. 10: per-processor load vs sample size ({}) ===\n",
        workload.label()
    );
    let mut table = Table::new(vec!["procs", "factor", "min load", "max load", "diff"]);
    let mut results = Vec::new();
    for &p in &opts.procs {
        for f in [0.004, 1.0, 1.4] {
            let r = run_pgxd_sort(
                &workload,
                p,
                opts.workers,
                SortConfig::default().sample_factor(f),
            );
            let stats = LoadStats::new(r.sizes.clone());
            table.row(vec![
                p.to_string(),
                format!("{f}X"),
                stats.min().to_string(),
                stats.max().to_string(),
                stats.load_difference().to_string(),
            ]);
            results.push(r);
        }
    }
    table.print();
    save_json("fig10", &results);
}

// ---------------------------------------------------------------------------
// Fig. 11: memory consumption (retained + temporary) vs procs.
// ---------------------------------------------------------------------------
fn fig11(opts: &Opts) {
    let workload = twitter_workload(opts);
    println!("\n=== Fig. 11: memory consumption ({}) ===\n", workload.label());
    let mut table = Table::new(vec![
        "procs",
        "input bytes",
        "retained (RSS-like)",
        "temporary",
        "peak above start",
    ]);
    let mut results = Vec::new();
    for &p in &[4usize, 8, 12, 16, 20] {
        // Generate outside the region so only sort-time memory is counted.
        let parts = workload.generate(p);
        let input_bytes: usize = parts.iter().map(|v| v.len() * 8).sum();
        let region = pgxd_memtrack::MemRegion::new();
        let report = {
            use pgxd::cluster::{Cluster, ClusterConfig};
            use pgxd_core::DistSorter;
            let cluster = Cluster::new(ClusterConfig::new(p).workers_per_machine(opts.workers));
            let sorter = DistSorter::default();
            cluster.run(|ctx| {
                let local = parts[ctx.id()].clone();
                sorter.sort(ctx, local).len()
            })
        };
        let stats = region.finish();
        table.row(vec![
            p.to_string(),
            pgxd_memtrack::fmt_bytes(input_bytes),
            pgxd_memtrack::fmt_bytes(stats.retained()),
            pgxd_memtrack::fmt_bytes(stats.temporary()),
            pgxd_memtrack::fmt_bytes(stats.peak_above_start()),
        ]);
        let total: usize = report.results.iter().sum();
        assert_eq!(total * 8, input_bytes, "sort must conserve elements");
        results.push(ExpResult {
            system: "pgxd".into(),
            workload: workload.label(),
            sample_factor: 1.0,
            machines: p,
            workers: opts.workers,
            total_keys: total,
            wall_secs: report.wall_time.as_secs_f64(),
            step_secs: vec![
                ("retained_bytes".into(), stats.retained() as f64),
                ("temporary_bytes".into(), stats.temporary() as f64),
                ("peak_bytes".into(), stats.peak_above_start() as f64),
            ],
            step_secs_p50: vec![],
            step_secs_p95: vec![],
            comm_bytes: report.comm.bytes_sent,
            comm_messages: report.comm.messages_sent,
            modeled_comm_secs: report.comm.modeled_wire_time.as_secs_f64(),
            max_recv_bytes: report.comm.max_recv_bytes,
            bottleneck_comm_secs: report.comm.bottleneck_wire_time.as_secs_f64(),
            exchange_chunks_sent: report.comm.exchange.chunks_sent,
            exchange_chunks_recycled: report.comm.exchange.chunks_recycled,
            exchange_pool_hits: report.comm.exchange.pool_hits,
            exchange_pool_misses: report.comm.exchange.pool_misses,
            exchange_bytes_placed: report.comm.exchange.bytes_placed,
            per_dst_bytes: report.per_dst_bytes.clone(),
            sizes: vec![],
            ranges: vec![],
        });
    }
    table.print();
    save_json("fig11", &results);
}

// ---------------------------------------------------------------------------
// Ablations called out in DESIGN.md.
// ---------------------------------------------------------------------------
fn ablation(opts: &Opts) {
    let p = *opts.procs.first().unwrap_or(&8);
    println!("\n=== Ablations (p = {p}, n = {}) ===\n", opts.n);
    let mut results = Vec::new();

    println!("--- investigator on/off (load difference on duplicate-heavy data) ---");
    let mut t1 = Table::new(vec![
        "distribution",
        "investigator",
        "min",
        "max",
        "diff",
        "wall",
    ]);
    for dist in [Distribution::RightSkewed, Distribution::Exponential] {
        for inv in [true, false] {
            let r = run_pgxd_sort(
                &dist_workload(dist, opts),
                p,
                opts.workers,
                SortConfig::default().investigator(inv),
            );
            let stats = LoadStats::new(r.sizes.clone());
            t1.row(vec![
                dist.name().to_string(),
                inv.to_string(),
                stats.min().to_string(),
                stats.max().to_string(),
                stats.load_difference().to_string(),
                fmt_secs(r.wall_secs),
            ]);
            results.push(r);
        }
    }
    t1.print();

    println!("\n--- balanced merge vs sequential k-way final merge ---");
    let mut t2 = Table::new(vec!["final merge", "wall", "final_merge step"]);
    for balanced in [true, false] {
        let r = run_pgxd_sort(
            &dist_workload(Distribution::Uniform, opts),
            p,
            opts.workers,
            SortConfig::default().balanced_final_merge(balanced),
        );
        t2.row(vec![
            if balanced {
                "balanced (Fig. 2)"
            } else {
                "sequential k-way"
            }
            .to_string(),
            fmt_secs(r.wall_secs),
            fmt_secs(r.step_secs[5].1),
        ]);
        results.push(r);
    }
    t2.print();

    println!("\n--- buffer-sized sampling vs tiny fixed sample count ---");
    let mut t3 = Table::new(vec!["sampling", "load diff", "comm bytes", "wall"]);
    for (label, cfg) in [
        ("buffer-sized X", SortConfig::default()),
        ("fixed 4/machine", SortConfig::default().fixed_samples(4)),
    ] {
        let r = run_pgxd_sort(
            &dist_workload(Distribution::RightSkewed, opts),
            p,
            opts.workers,
            cfg,
        );
        t3.row(vec![
            label.to_string(),
            r.load_difference().to_string(),
            r.comm_bytes.to_string(),
            fmt_secs(r.wall_secs),
        ]);
        results.push(r);
    }
    t3.print();
    save_json("ablation", &results);
}

// ---------------------------------------------------------------------------
// Buffer-size ablation: the §IV-B claim that 256 KiB is a good buffer.
// ---------------------------------------------------------------------------
fn buffer_sweep(opts: &Opts) {
    let p = *opts.procs.first().unwrap_or(&8);
    println!(
        "\n=== Buffer-size sweep (p = {p}, n = {}) — §IV-B's 256 KiB choice ===\n",
        opts.n
    );
    let workload = dist_workload(Distribution::Uniform, opts);
    let mut table = Table::new(vec!["buffer", "messages", "comm bytes", "wall"]);
    let mut results = Vec::new();
    for buffer in [4usize << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20] {
        let r = pgxd_bench::runner::run_pgxd_sort_buf(
            &workload,
            p,
            opts.workers,
            SortConfig::default(),
            buffer,
        );
        table.row(vec![
            pgxd_memtrack::fmt_bytes(buffer),
            r.comm_messages.to_string(),
            r.comm_bytes.to_string(),
            fmt_secs(r.wall_secs),
        ]);
        results.push(r);
    }
    table.print();
    println!(
        "(smaller buffers multiply packet count; beyond 256 KiB the message\n\
         count stops falling — the paper's tuning plateau)"
    );
    save_json("buffer", &results);
}

// ---------------------------------------------------------------------------
// Exchange microbenchmark: the PR's perf claim. Pooled/overlapped exchange
// pipeline vs the legacy per-element path, identical workload and offsets.
// ---------------------------------------------------------------------------

/// Default knobs for `exp exchange` (overridable via flags): the
/// acceptance workload of 2^22 uniform keys on 4 machines x 2 workers.
fn exchange_defaults() -> Opts {
    Opts {
        n: 4 << 20,
        procs: vec![4],
        ..Opts::default()
    }
}

fn exchange(opts: &Opts) {
    let p = *opts.procs.first().unwrap_or(&4);
    let rounds = 5;
    let buffer = pgxd::DEFAULT_BUFFER_BYTES;
    println!(
        "\n=== Exchange microbenchmark: chunk pool + memcpy + overlap vs legacy ===\n\
         (n = {} keys, p = {p}, {} workers/machine, {} buffers, {rounds} timed rounds)\n",
        opts.n,
        opts.workers,
        pgxd_memtrack::fmt_bytes(buffer)
    );
    let legacy = run_exchange_bench(opts.n, p, opts.workers, buffer, rounds, true);
    let pooled = run_exchange_bench(opts.n, p, opts.workers, buffer, rounds, false);
    let mut table = Table::new(vec![
        "variant",
        "wall",
        "keys/s",
        "chunks sent",
        "recycled",
        "pool hit rate",
    ]);
    for r in [&legacy, &pooled] {
        table.row(vec![
            r.variant.clone(),
            fmt_secs(r.wall_secs),
            format!("{:.2}M", r.keys_per_sec / 1e6),
            r.chunks_sent.to_string(),
            r.chunks_recycled.to_string(),
            format!("{:.1}%", 100.0 * r.pool_hit_rate()),
        ]);
    }
    table.print();
    let speedup = pooled.keys_per_sec / legacy.keys_per_sec.max(1e-12);
    println!("pooled/legacy exchange throughput: {speedup:.2}x");
    save_exchange_json(&legacy, &pooled, speedup);
}

/// Field-for-field JSON view of one exchange-bench variant, spelled out
/// so the document's shape is visible here rather than implied by the
/// struct's derive.
fn exchange_bench_value(r: &ExchangeBenchResult) -> serde_json::Value {
    serde_json::json!({
        "variant": r.variant,
        "machines": r.machines,
        "workers": r.workers,
        "buffer_bytes": r.buffer_bytes,
        "total_keys": r.total_keys,
        "rounds": r.rounds,
        "wall_secs": r.wall_secs,
        "keys_per_sec": r.keys_per_sec,
        "chunks_sent": r.chunks_sent,
        "chunks_recycled": r.chunks_recycled,
        "pool_hits": r.pool_hits,
        "pool_misses": r.pool_misses,
        "bytes_placed": r.bytes_placed,
    })
}

fn save_exchange_json(legacy: &ExchangeBenchResult, pooled: &ExchangeBenchResult, speedup: f64) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join("bench_exchange.json");
    let doc = serde_json::json!({
        "legacy": exchange_bench_value(legacy),
        "pooled": exchange_bench_value(pooled),
        "speedup": speedup,
    });
    match serde_json::to_string_pretty(&doc) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(raw results → {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize results: {e}"),
    }
    bench_summary_insert(
        "exchange",
        serde_json::json!({
            "legacy_keys_per_sec": legacy.keys_per_sec,
            "pooled_keys_per_sec": pooled.keys_per_sec,
            "pooled_pool_hit_rate": pooled.pool_hit_rate(),
            "pooled_bytes_placed": pooled.bytes_placed,
            "speedup": speedup,
        }),
    );
}

// ---------------------------------------------------------------------------
// Trace: one sort with the structured event layer on, exported for
// Perfetto plus the derived views (step Gantt, overlap, barrier skew).
// ---------------------------------------------------------------------------

/// Default knobs for `exp trace`: the acceptance workload of 2^20 uniform
/// keys on a 4-machine cluster.
fn trace_defaults() -> Opts {
    Opts {
        n: 1 << 20,
        procs: vec![4],
        ..Opts::default()
    }
}

/// Writes `log` as `results/trace_<tag>.json` (Chrome `trace_event`) and
/// `results/trace_<tag>.jsonl` (one event per line).
fn save_trace(tag: &str, log: &pgxd::TraceLog) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    for (ext, body) in [("json", log.to_chrome_json()), ("jsonl", log.to_jsonl())] {
        let path = dir.join(format!("trace_{tag}.{ext}"));
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("(trace → {})", path.display());
        }
    }
}

fn trace_cmd(opts: &Opts) {
    let p = *opts.procs.first().unwrap_or(&4);
    println!(
        "\n=== Trace: one sorted run under the structured event layer ===\n\
         (n = {} uniform keys, p = {p}, {} workers/machine)\n",
        opts.n, opts.workers
    );
    let (result, log) = run_pgxd_sort_traced(
        &dist_workload(Distribution::Uniform, opts),
        p,
        opts.workers,
        SortConfig::default(),
        pgxd::DEFAULT_BUFFER_BYTES,
        TraceConfig::enabled(),
    );
    assert!(result.ranges_ascending(), "sort output out of order");
    let log = log.expect("tracing was enabled");
    println!(
        "captured {} events ({} emitted, {} dropped to ring overflow)",
        log.events.len(),
        log.emitted,
        log.dropped
    );

    // Step Gantt: every machine must have a span for each §IV step.
    let gantt = log.step_gantt();
    let mut table = Table::new(vec!["machine", "step", "start", "duration"]);
    for step in pgxd_core::steps::ALL {
        for m in 0..p as u32 {
            let row = gantt
                .iter()
                .find(|r| r.machine == m && r.name == step)
                .unwrap_or_else(|| panic!("machine {m} recorded no span for step {step}"));
            table.row(vec![
                format!("M{m}"),
                step.to_string(),
                fmt_secs(row.start_ns as f64 / 1e9),
                fmt_secs(row.dur_ns as f64 / 1e9),
            ]);
        }
    }
    table.print();

    // Exchange overlap: sending (worker task lanes) vs receiving
    // (mainline recv loop) — the §IV-C overlap claim, per machine.
    let ratios = log.exchange_overlap_ratios();
    let overlaps: Vec<String> = ratios
        .iter()
        .enumerate()
        .map(|(m, r)| format!("M{m} {:.1}%", 100.0 * r))
        .collect();
    println!("\nexchange send/receive overlap: {}", overlaps.join(", "));
    assert!(
        ratios.iter().any(|&r| r > 0.0),
        "no machine overlapped sends with receives"
    );

    // Barrier skew: spread between first and last arrival, per barrier.
    let skews = log.barrier_skews();
    let worst = skews.iter().map(|&(_, s)| s).max().unwrap_or(0);
    println!(
        "barrier wait skew: {} barriers, worst spread {}",
        skews.len(),
        fmt_secs(worst as f64 / 1e9)
    );

    // Per-destination byte timelines: final cumulative volume per link.
    let timelines = log.per_destination_byte_timelines();
    let mut links = Table::new(vec!["link", "chunks", "bytes"]);
    for ((src, dst), series) in &timelines {
        links.row(vec![
            format!("M{src}→M{dst}"),
            series.len().to_string(),
            series.last().map(|&(_, b)| b).unwrap_or(0).to_string(),
        ]);
    }
    println!();
    links.print();
    assert!(!timelines.is_empty(), "exchange sent no chunks");

    save_trace("sort", &log);
    save_json("trace", &[result]);
}

// ---------------------------------------------------------------------------
// `exp localsort`: the step-1 kernel sweep — every LocalSortAlgo variant
// on uniform u64, keys/s and local_sort+final_merge trace share vs the
// ParallelQuicksort baseline from the same run batch.
// ---------------------------------------------------------------------------

/// Default knobs for `exp localsort`: 2^21 uniform keys on 4 machines —
/// big enough that every machine's shard crosses the Auto radix
/// threshold and the parallel merge cutoff.
fn localsort_defaults() -> Opts {
    Opts {
        n: 1 << 21,
        procs: vec![4],
        ..Opts::default()
    }
}

fn localsort(opts: &Opts) {
    use pgxd::trace::EventKind;
    use pgxd_core::{FinalMergeAlgo, LocalSortAlgo};
    use std::collections::BTreeMap;

    let p = *opts.procs.first().unwrap_or(&4);
    println!(
        "\n=== Local sort path: step-1 kernels + merge strategies (uniform u64) ===\n\
         (n = {} keys, p = {p}, {} workers/machine; baseline = pquick+balanced)\n",
        opts.n, opts.workers
    );

    // The legacy path first (it is the baseline every row compares to),
    // then the new kernels riding the splitter-planned parallel merge.
    let variants: [(LocalSortAlgo, FinalMergeAlgo); 6] = [
        (LocalSortAlgo::ParallelQuicksort, FinalMergeAlgo::Balanced),
        (LocalSortAlgo::Timsort, FinalMergeAlgo::Balanced),
        (LocalSortAlgo::SuperScalarSampleSort, FinalMergeAlgo::Balanced),
        (LocalSortAlgo::InPlaceSampleSort, FinalMergeAlgo::ParallelKway),
        (LocalSortAlgo::Radix, FinalMergeAlgo::ParallelKway),
        (LocalSortAlgo::Auto, FinalMergeAlgo::ParallelKway),
    ];

    let workload = dist_workload(Distribution::Uniform, opts);
    let mut table = Table::new(vec![
        "variant",
        "wall",
        "keys/s",
        "local p50",
        "local p95",
        "merge p50",
        "sort share",
        "vs pquick",
    ]);
    let mut cells = Vec::new();
    let mut baseline: Option<(f64, f64)> = None; // (wall, sort share)
    for (local, fmerge) in variants {
        let config = SortConfig::default().local_sort(local).final_merge(fmerge);
        let (r, log) = run_pgxd_sort_traced(
            &workload,
            p,
            opts.workers,
            config,
            pgxd::DEFAULT_BUFFER_BYTES,
            TraceConfig::enabled(),
        );
        let variant = format!("{}+{}", local.name(), fmerge.name());
        assert!(r.ranges_ascending(), "variant {variant} out of order");
        assert_eq!(
            r.sizes.iter().sum::<usize>(),
            r.total_keys,
            "variant {variant} lost keys"
        );

        let pick = |series: &[(String, f64)], name: &str| {
            series
                .iter()
                .find(|(n2, _)| n2 == name)
                .map(|&(_, s)| s)
                .unwrap_or(0.0)
        };
        let wall = r.wall_secs.max(1e-12);
        let sort_share =
            (pick(&r.step_secs, "local_sort") + pick(&r.step_secs, "final_merge")) / wall;
        let keys_per_sec = r.total_keys as f64 / wall;

        // Phase spans (classify/permute/merge) from the structured trace:
        // spans carry their length in dur_ns, kernel-reported instants in
        // the detail argument.
        let log = log.expect("tracing was enabled");
        let mut phase_ns: BTreeMap<String, u64> = BTreeMap::new();
        for ev in &log.events {
            if ev.kind == EventKind::SortPhase {
                let ns = if ev.dur_ns > 0 { ev.dur_ns } else { ev.b };
                *phase_ns.entry(log.event_name(ev)).or_insert(0) += ns;
            }
        }

        let (base_wall, base_share) = *baseline.get_or_insert((wall, sort_share));
        table.row(vec![
            variant.clone(),
            fmt_secs(r.wall_secs),
            format!("{:.1}M", keys_per_sec / 1e6),
            fmt_secs(pick(&r.step_secs_p50, "local_sort")),
            fmt_secs(pick(&r.step_secs_p95, "local_sort")),
            fmt_secs(pick(&r.step_secs_p50, "final_merge")),
            format!("{:.1}%", 100.0 * sort_share),
            format!("{:.2}x", base_wall / wall),
        ]);
        if !phase_ns.is_empty() {
            let detail: Vec<String> = phase_ns
                .iter()
                .map(|(name, ns)| format!("{name} {}", fmt_secs(*ns as f64 / 1e9)))
                .collect();
            println!("  {variant}: {}", detail.join(", "));
        }
        cells.push(serde_json::json!({
            "variant": variant,
            "local_sort": local.name(),
            "final_merge": fmerge.name(),
            "wall_secs": r.wall_secs,
            "keys_per_sec": keys_per_sec,
            "sort_share": sort_share,
            "sort_share_vs_baseline": sort_share - base_share,
            "speedup_vs_baseline": base_wall / wall,
            "local_sort_p50_secs": pick(&r.step_secs_p50, "local_sort"),
            "local_sort_p95_secs": pick(&r.step_secs_p95, "local_sort"),
            "final_merge_p50_secs": pick(&r.step_secs_p50, "final_merge"),
            "final_merge_p95_secs": pick(&r.step_secs_p95, "final_merge"),
            "phase_ns": phase_ns,
            "sizes": r.sizes,
        }));
    }
    println!();
    table.print();

    let doc = serde_json::json!({
        "experiment": "localsort",
        "n": opts.n,
        "machines": p,
        "workers": opts.workers,
        "seed": opts.seed,
        "distribution": "uniform",
        "baseline": "pquick+balanced",
        "variants": cells,
    });
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("bench_localsort.json");
        match serde_json::to_string_pretty(&doc) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                } else {
                    println!("(raw results → {})", path.display());
                }
            }
            Err(e) => eprintln!("warning: could not serialize results: {e}"),
        }
    }
    bench_summary_insert("localsort", doc["variants"].clone());
}

// ---------------------------------------------------------------------------
// Environment report (our analogue of the paper's Table I).
// ---------------------------------------------------------------------------
// ---------------------------------------------------------------------------
// `exp chaos`: fault-plan sweep — survival, timeouts, latency degradation.
// ---------------------------------------------------------------------------
fn chaos_defaults() -> Opts {
    Opts {
        n: 200_000,
        procs: vec![8],
        ..Opts::default()
    }
}

/// Sweeps the fault-plan presets across seeds on an adversarial
/// distribution, recording per-cell verdicts (survived / structured
/// error) and latency degradation against a fault-free baseline. Every
/// cell is replayable from its printed seed.
fn chaos_cmd(opts: &Opts) {
    use pgxd::cluster::{Cluster, ClusterConfig};
    use pgxd::{FaultPlan, RunErrorKind};
    use pgxd_core::DistSorter;
    use pgxd_datagen::generate_partitioned;
    use std::time::{Duration, Instant};

    let p = opts.procs.first().copied().unwrap_or(8);
    let n = opts.n;
    let seeds: Vec<u64> = (0..5).map(|i| opts.seed + i).collect();
    let dist = Distribution::skew_storm(0.85);
    let parts = generate_partitioned(dist, n, p, opts.seed);
    let expect = {
        let mut all = parts.concat();
        all.sort_unstable();
        all
    };

    let run_cell = |plan: FaultPlan| -> (Option<RunErrorKind>, f64, bool) {
        let cluster = Cluster::new(
            ClusterConfig::new(p)
                .workers_per_machine(opts.workers)
                .fault(plan),
        );
        let sorter = DistSorter::default();
        let parts_ref = &parts;
        let started = Instant::now();
        let outcome = cluster.try_run(|ctx| sorter.sort(ctx, parts_ref[ctx.id()].clone()).data);
        let wall = started.elapsed().as_secs_f64();
        match outcome {
            Ok(report) => (None, wall, report.results.concat() == expect),
            Err(err) => (Some(err.kind), wall, false),
        }
    };

    // Fault-free baseline for the degradation column.
    let (_, baseline, baseline_ok) = run_cell(FaultPlan::disabled());
    assert!(baseline_ok, "fault-free baseline must sort correctly");

    println!(
        "\n=== Chaos sweep: {} keys of {}, p = {p}, {} seeds/plan (baseline {}) ===\n",
        n,
        dist.name(),
        seeds.len(),
        fmt_secs(baseline)
    );

    type PlanFactory = Box<dyn Fn(u64) -> FaultPlan>;
    let plans: Vec<(&str, PlanFactory)> = vec![
        ("delays", Box::new(FaultPlan::delays)),
        ("reorders", Box::new(FaultPlan::reorders)),
        ("drops", Box::new(FaultPlan::drops)),
        ("straggler", Box::new(move |s| FaultPlan::straggler(s, 1 % p.max(1)))),
        ("chaos", Box::new(FaultPlan::chaos)),
        (
            "chaos+kill",
            Box::new(move |s| {
                // Threshold 3 fires inside the count-phase all-gather for
                // any p >= 4, independent of how the data chunks route.
                FaultPlan::chaos(s)
                    .kill(1 % p.max(1), 3)
                    .step_timeout(Duration::from_secs(10))
            }),
        ),
    ];

    let mut table = Table::new(vec![
        "plan", "survived", "killed", "timed out", "panicked", "mean wall", "slowdown",
    ]);
    let mut cells = Vec::new();
    let mut summary = Vec::new();
    for (name, make) in &plans {
        let (mut survived, mut killed, mut timed_out, mut panicked) = (0u32, 0u32, 0u32, 0u32);
        let mut wall_sum = 0.0;
        for &seed in &seeds {
            let (verdict, wall, ok) = run_cell(make(seed));
            wall_sum += wall;
            let verdict_str = match verdict {
                None => {
                    assert!(ok, "plan {name} seed {seed}: survived but output wrong");
                    survived += 1;
                    "survived"
                }
                Some(RunErrorKind::InjectedKill) => {
                    killed += 1;
                    "injected-kill"
                }
                Some(RunErrorKind::StepTimeout) => {
                    timed_out += 1;
                    "step-timeout"
                }
                Some(RunErrorKind::MachinePanic) => {
                    panicked += 1;
                    "machine-panic"
                }
            };
            cells.push(serde_json::json!({
                "plan": name,
                "seed": seed,
                "verdict": verdict_str,
                "wall_secs": wall,
                "slowdown": wall / baseline,
            }));
        }
        let mean_wall = wall_sum / seeds.len() as f64;
        table.row(vec![
            name.to_string(),
            survived.to_string(),
            killed.to_string(),
            timed_out.to_string(),
            panicked.to_string(),
            fmt_secs(mean_wall),
            format!("{:.2}x", mean_wall / baseline),
        ]);
        summary.push(serde_json::json!({
            "plan": name,
            "survived": survived,
            "injected_kills": killed,
            "step_timeouts": timed_out,
            "machine_panics": panicked,
            "mean_wall_secs": mean_wall,
            "mean_slowdown": mean_wall / baseline,
        }));
    }
    table.print();

    // Non-kill plans must always survive; the kill plan must always fail
    // with a structured error (never a hang — try_run returned at all).
    let doc = serde_json::json!({
        "experiment": "chaos_sweep",
        "n": n,
        "machines": p,
        "workers": opts.workers,
        "distribution": dist.name(),
        "data_seed": opts.seed,
        "plan_seeds": seeds,
        "baseline_wall_secs": baseline,
        "cells": cells,
        "summary": summary,
    });
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("chaos_sweep.json");
        match serde_json::to_string_pretty(&doc) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                } else {
                    println!("(raw results → {})", path.display());
                }
            }
            Err(e) => eprintln!("warning: could not serialize results: {e}"),
        }
    }
    bench_summary_insert("chaos", doc["summary"].clone());
}

// ---------------------------------------------------------------------------
// `exp health`: in-flight health monitor on a skewed chaos run.
// ---------------------------------------------------------------------------
fn health_defaults() -> Opts {
    Opts {
        n: 200_000,
        procs: vec![4],
        ..Opts::default()
    }
}

/// Drives one skew-storm sort under an amplified straggler plan with the
/// health monitor armed: the run must survive, sort correctly, and the
/// attached [`pgxd::HealthReport`] must name the straggler machine.
/// Exports the structured report (`results/health_report.json`) and the
/// final registry snapshot in Prometheus text format
/// (`results/health_metrics.prom`).
fn health_cmd(opts: &Opts) {
    use pgxd::cluster::{Cluster, ClusterConfig};
    use pgxd::{FaultPlan, HealthConfig};
    use pgxd_core::DistSorter;
    use pgxd_datagen::generate_partitioned;
    use std::time::Duration;

    let p = opts.procs.first().copied().unwrap_or(4);
    let straggler = 1 % p.max(1);
    let n = opts.n;
    let dist = Distribution::skew_storm(0.85);
    let parts = generate_partitioned(dist, n, p, opts.seed);
    let expect = {
        let mut all = parts.concat();
        all.sort_unstable();
        all
    };

    println!(
        "\n=== Health monitor: {} keys of {}, p = {p}, straggler = machine {straggler} ===\n",
        n,
        dist.name()
    );

    // The chaos preset's µs-scale straggle is below human (and monitor)
    // perception — amplify it to ~25 ms per task pickup so the verdict
    // thresholds below have an unambiguous signal to find.
    let plan = FaultPlan::chaos(opts.seed).straggle(straggler, 25_000);
    let health = HealthConfig::enabled()
        .interval(Duration::from_millis(2))
        .stall_after(Duration::from_millis(25))
        .straggler(1.5, Duration::from_millis(5));
    let cluster = Cluster::new(
        ClusterConfig::new(p)
            .workers_per_machine(opts.workers)
            .fault(plan)
            .health(health),
    );
    let sorter = DistSorter::default();
    let parts_ref = &parts;
    let report = cluster.run(|ctx| sorter.sort(ctx, parts_ref[ctx.id()].clone()).data);
    assert_eq!(
        report.results.concat(),
        expect,
        "chaos run must still sort correctly"
    );
    let health = report.health.as_ref().expect("health monitor was enabled");

    let mut table = Table::new(vec!["verdict", "machine", "step", "detail"]);
    for v in &health.verdicts {
        table.row(vec![
            v.kind().to_string(),
            v.machine().map(|m| format!("m{m}")).unwrap_or_else(|| "-".into()),
            v.step().unwrap_or("-").to_string(),
            v.to_string(),
        ]);
    }
    table.print();
    println!(
        "({} samples; {} verdicts; wall {})",
        health.samples,
        health.verdicts.len(),
        fmt_secs(report.wall_time.as_secs_f64())
    );

    // The whole point: the monitor caught the machine we sabotaged, and
    // its verdict names the step it lagged in.
    let caught = health
        .stragglers()
        .into_iter()
        .find(|v| v.machine() == Some(straggler))
        .unwrap_or_else(|| panic!("no straggler verdict for machine {straggler}: {health}"));
    println!("caught: {caught}");

    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let json_path = dir.join("health_report.json");
        if let Err(e) = std::fs::write(&json_path, health.to_json()) {
            eprintln!("warning: could not write {}: {e}", json_path.display());
        } else {
            println!("(health report → {})", json_path.display());
        }
        let prom_path = dir.join("health_metrics.prom");
        if let Err(e) = std::fs::write(&prom_path, report.metrics.to_prometheus_text()) {
            eprintln!("warning: could not write {}: {e}", prom_path.display());
        } else {
            println!("(registry snapshot → {})", prom_path.display());
        }
    }
    bench_summary_insert(
        "health",
        serde_json::json!({
            "machines": p,
            "workers": opts.workers,
            "total_keys": n,
            "wall_secs": report.wall_time.as_secs_f64(),
            "samples": health.samples,
            "verdicts": health.verdicts.len(),
            "straggler_machine": straggler,
            "straggler_step": caught.step(),
        }),
    );
}

fn env_report(opts: &Opts) {
    println!("\n=== Simulation environment (cf. paper Table I) ===\n");
    let mut table = Table::new(vec!["item", "paper", "this harness"]);
    table.row(vec![
        "machines".to_string(),
        "32 physical nodes".into(),
        format!("{:?} simulated (thread groups, one process)", opts.procs),
    ]);
    table.row(vec![
        "cpu".to_string(),
        "2x Xeon E5-2660, 16 cores".into(),
        format!(
            "{} host core(s); {} workers per simulated machine",
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            opts.workers
        ),
    ]);
    table.row(vec![
        "network".to_string(),
        "Mellanox 56 Gb/s IB".into(),
        "in-process channels + 56 Gb/s wire-time model".to_string(),
    ]);
    table.row(vec![
        "buffer".to_string(),
        "256 KiB read buffer".into(),
        format!("{} (configurable)", pgxd_memtrack::fmt_bytes(pgxd::DEFAULT_BUFFER_BYTES)),
    ]);
    table.row(vec![
        "dataset".to_string(),
        "10^9 keys / Twitter 25 GB".into(),
        format!(
            "{} keys (--n), R-MAT scale {} x ef {} (--scale/--ef)",
            opts.n, opts.scale, opts.edge_factor
        ),
    ]);
    table.print();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let opts = parse_opts(&args[1.min(args.len())..]);

    match cmd {
        "fig5" => fig5(&opts),
        "fig6" => fig6(&opts),
        "fig7" => fig7(&opts),
        "table2" => table2(&opts),
        "fig8" => fig8(&opts),
        "table3" => table3(&opts),
        "fig9" => fig9(&opts),
        "fig10" => fig10(&opts),
        "fig11" => fig11(&opts),
        "ablation" => ablation(&opts),
        "buffer" => buffer_sweep(&opts),
        // Own defaults (2^22 keys, p=4): re-parse the flags on top of them.
        "exchange" => exchange(&parse_opts_from(exchange_defaults(), &args[1.min(args.len())..])),
        // Own defaults (2^20 keys, p=4), same flag re-parse.
        "trace" => trace_cmd(&parse_opts_from(trace_defaults(), &args[1.min(args.len())..])),
        // Own defaults (2 × 10^5 keys, p=8), same flag re-parse.
        "chaos" => chaos_cmd(&parse_opts_from(chaos_defaults(), &args[1.min(args.len())..])),
        // Own defaults (2^21 keys, p=4), same flag re-parse.
        "localsort" => localsort(&parse_opts_from(localsort_defaults(), &args[1.min(args.len())..])),
        // Own defaults (2 × 10^5 keys, p=4), same flag re-parse.
        "health" => health_cmd(&parse_opts_from(health_defaults(), &args[1.min(args.len())..])),
        "env" => env_report(&opts),
        "all" => {
            env_report(&opts);
            fig5(&opts);
            fig6(&opts);
            fig7(&opts);
            table2(&opts);
            fig8(&opts);
            table3(&opts);
            fig9(&opts);
            fig10(&opts);
            fig11(&opts);
            ablation(&opts);
            buffer_sweep(&opts);
            exchange(&exchange_defaults());
            trace_cmd(&trace_defaults());
            chaos_cmd(&chaos_defaults());
            localsort(&localsort_defaults());
            health_cmd(&health_defaults());
        }
        _ => {
            eprintln!(
                "usage: exp <fig5|fig6|fig7|table2|fig8|table3|fig9|fig10|fig11|ablation|buffer|exchange|trace|chaos|localsort|health|all> \
                 [--n=N] [--procs=8,16,32,52] [--workers=W] [--seed=S] [--scale=S] [--ef=E] [--trace]"
            );
            std::process::exit(2);
        }
    }
}
