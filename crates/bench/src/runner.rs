//! Experiment execution: generate a workload, run a sorter on a simulated
//! cluster, collect timing/communication/load results.

use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd_baselines::SparkEngine;
use pgxd_core::{DistSorter, SortConfig};
use pgxd_datagen::{generate_partitioned, partition_even, twitter_like_keys, Distribution};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Seed used by every experiment unless overridden.
pub const DEFAULT_SEED: u64 = 20170529; // IPPS 2017 kickoff, why not

/// Default worker threads per simulated machine.
pub const DEFAULT_WORKERS: usize = 2;

/// What data a run sorts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// `n` keys from one of the Fig. 4 distributions.
    Dist {
        /// Which distribution.
        dist: Distribution,
        /// Total keys across the cluster.
        n: usize,
        /// RNG seed.
        seed: u64,
    },
    /// R-MAT edge-destination keys (the Twitter stand-in, Fig. 8).
    Twitter {
        /// log2 vertex count.
        scale: u32,
        /// Edges per vertex.
        edge_factor: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl Workload {
    /// Human-readable label for tables.
    pub fn label(&self) -> String {
        match self {
            Workload::Dist { dist, n, .. } => format!("{} (n={n})", dist.name()),
            Workload::Twitter { scale, edge_factor, .. } => {
                format!("twitter-like (rmat s={scale} ef={edge_factor})")
            }
        }
    }

    /// Materializes the per-machine input shards.
    pub fn generate(&self, machines: usize) -> Vec<Vec<u64>> {
        match *self {
            Workload::Dist { dist, n, seed } => generate_partitioned(dist, n, machines, seed),
            Workload::Twitter { scale, edge_factor, seed } => {
                let keys = twitter_like_keys(scale, edge_factor, seed);
                partition_even(&keys, machines)
            }
        }
    }
}

/// Everything one run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpResult {
    /// Which sorter ("pgxd" or "spark").
    pub system: String,
    /// Workload label (distribution + size, or twitter config).
    pub workload: String,
    /// Sample-size factor used (PGX.D only; 1.0 = the paper's X rule).
    pub sample_factor: f64,
    /// Machine count.
    pub machines: usize,
    /// Worker threads per machine.
    pub workers: usize,
    /// Total keys sorted.
    pub total_keys: usize,
    /// Measured wall time of the cluster run, seconds.
    pub wall_secs: f64,
    /// Per-step wall time (max across machines), seconds, in step order.
    pub step_secs: Vec<(String, f64)>,
    /// Bytes the fabric carried.
    pub comm_bytes: u64,
    /// Packets the fabric carried.
    pub comm_messages: u64,
    /// Wire time the network model charges for the aggregate traffic,
    /// seconds.
    pub modeled_comm_secs: f64,
    /// Bytes addressed to the most-loaded receiver (hotspot view).
    pub max_recv_bytes: u64,
    /// Wire time of the hotspot receiver's inbound link, seconds — the
    /// Fig. 9 communication-overhead metric (bad splitters overload one
    /// link even when aggregate volume is unchanged).
    pub bottleneck_comm_secs: f64,
    /// Final element count per machine (load balance).
    pub sizes: Vec<usize>,
    /// Final `(min, max)` key per machine (`None` = empty machine).
    pub ranges: Vec<Option<(u64, u64)>>,
}

impl ExpResult {
    /// Perfect-overlap scaling model for Fig. 6 shape on small hosts:
    /// `wall / p + modeled_comm`. See the crate docs.
    pub fn scaled_time(&self) -> f64 {
        self.wall_secs / self.machines as f64 + self.modeled_comm_secs
    }

    /// Per-machine shares of the total (Table II).
    pub fn shares(&self) -> Vec<f64> {
        pgxd_core::LoadStats::new(self.sizes.clone()).shares()
    }

    /// Max − min load (Fig. 10).
    pub fn load_difference(&self) -> usize {
        pgxd_core::LoadStats::new(self.sizes.clone()).load_difference()
    }

    /// Sorted-output sanity: ranges ascend with machine id.
    pub fn ranges_ascending(&self) -> bool {
        pgxd_core::RangeStats::new(self.ranges.clone()).is_ascending()
    }
}

fn durations_to_secs(steps: &pgxd::StepReport, names: &[&'static str]) -> Vec<(String, f64)> {
    names
        .iter()
        .map(|&n| (n.to_string(), steps.max_across_machines(n).as_secs_f64()))
        .collect()
}

/// Runs the PGX.D distributed sort on `workload` and collects results.
pub fn run_pgxd_sort(
    workload: &Workload,
    machines: usize,
    workers: usize,
    config: SortConfig,
) -> ExpResult {
    run_pgxd_sort_buf(workload, machines, workers, config, pgxd::DEFAULT_BUFFER_BYTES)
}

/// [`run_pgxd_sort`] with an explicit data-manager buffer size — the
/// §IV-B 256 KiB tuning ablation.
pub fn run_pgxd_sort_buf(
    workload: &Workload,
    machines: usize,
    workers: usize,
    config: SortConfig,
    buffer_bytes: usize,
) -> ExpResult {
    let parts = workload.generate(machines);
    let total_keys = parts.iter().map(|p| p.len()).sum();
    let cluster = Cluster::new(
        ClusterConfig::new(machines)
            .workers_per_machine(workers)
            .buffer_bytes(buffer_bytes),
    );
    let sorter = DistSorter::new(config);
    let report = cluster.run(|ctx| {
        let local = parts[ctx.id()].clone();
        let part = sorter.sort(ctx, local);
        (part.len(), part.range().map(|(a, b)| (*a, *b)))
    });
    ExpResult {
        system: "pgxd".into(),
        workload: workload.label(),
        sample_factor: config.sample_factor,
        machines,
        workers,
        total_keys,
        wall_secs: report.wall_time.as_secs_f64(),
        step_secs: durations_to_secs(&report.steps, &pgxd_core::steps::ALL),
        comm_bytes: report.comm.bytes_sent,
        comm_messages: report.comm.messages_sent,
        modeled_comm_secs: report.comm.modeled_wire_time.as_secs_f64(),
        max_recv_bytes: report.comm.max_recv_bytes,
        bottleneck_comm_secs: report.comm.bottleneck_wire_time.as_secs_f64(),
        sizes: report.results.iter().map(|r| r.0).collect(),
        ranges: report.results.iter().map(|r| r.1).collect(),
    }
}

/// Runs the Spark-sim `sortByKey` on `workload` and collects results.
pub fn run_spark_sort(workload: &Workload, machines: usize, workers: usize) -> ExpResult {
    let parts = workload.generate(machines);
    let total_keys = parts.iter().map(|p| p.len()).sum();
    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(workers));
    let engine = SparkEngine::default();
    let report = cluster.run(|ctx| {
        let local = parts[ctx.id()].clone();
        let out = engine.sort_by_key(ctx, local);
        let range = out
            .data
            .first()
            .map(|lo| (*lo, *out.data.last().unwrap()));
        (out.data.len(), range)
    });
    ExpResult {
        system: "spark".into(),
        workload: workload.label(),
        sample_factor: 0.0,
        machines,
        workers,
        total_keys,
        wall_secs: report.wall_time.as_secs_f64(),
        step_secs: durations_to_secs(&report.steps, &pgxd_baselines::spark::stages::ALL),
        comm_bytes: report.comm.bytes_sent,
        comm_messages: report.comm.messages_sent,
        modeled_comm_secs: report.comm.modeled_wire_time.as_secs_f64(),
        max_recv_bytes: report.comm.max_recv_bytes,
        bottleneck_comm_secs: report.comm.bottleneck_wire_time.as_secs_f64(),
        sizes: report.results.iter().map(|r| r.0).collect(),
        ranges: report.results.iter().map(|r| r.1).collect(),
    }
}

/// Format a `Duration`-in-seconds compactly for tables.
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.1}µs", secs * 1e6)
    }
}

/// Convenience duration conversion.
pub fn to_secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgxd_run_produces_consistent_result() {
        let workload = Workload::Dist {
            dist: Distribution::Uniform,
            n: 10_000,
            seed: 1,
        };
        let r = run_pgxd_sort(&workload, 4, 1, SortConfig::default());
        assert_eq!(r.total_keys, 10_000);
        assert_eq!(r.sizes.iter().sum::<usize>(), 10_000);
        assert!(r.ranges_ascending());
        assert_eq!(r.step_secs.len(), 6);
        assert!(r.wall_secs > 0.0);
        let shares: f64 = r.shares().iter().sum();
        assert!((shares - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spark_run_produces_consistent_result() {
        let workload = Workload::Dist {
            dist: Distribution::Normal,
            n: 10_000,
            seed: 2,
        };
        let r = run_spark_sort(&workload, 3, 1);
        assert_eq!(r.sizes.iter().sum::<usize>(), 10_000);
        assert!(r.ranges_ascending());
        assert_eq!(r.step_secs.len(), 3);
    }

    #[test]
    fn twitter_workload_generates() {
        let workload = Workload::Twitter {
            scale: 10,
            edge_factor: 4,
            seed: 3,
        };
        let parts = workload.generate(4);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 1024 * 4);
        let r = run_pgxd_sort(&workload, 4, 1, SortConfig::default());
        assert!(r.ranges_ascending());
    }

    #[test]
    fn scaled_time_decreases_with_p_for_same_wall() {
        let mk = |p: usize| ExpResult {
            system: "pgxd".into(),
            workload: "synthetic".into(),
            sample_factor: 1.0,
            machines: p,
            workers: 1,
            total_keys: 0,
            wall_secs: 10.0,
            step_secs: vec![],
            comm_bytes: 0,
            comm_messages: 0,
            modeled_comm_secs: 0.1,
            max_recv_bytes: 0,
            bottleneck_comm_secs: 0.0,
            sizes: vec![],
            ranges: vec![],
        };
        assert!(mk(8).scaled_time() > mk(16).scaled_time());
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(2.5), "2.500s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(0.0000005), "0.5µs");
    }
}
