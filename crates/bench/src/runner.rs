//! Experiment execution: generate a workload, run a sorter on a simulated
//! cluster, collect timing/communication/load results.

use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd::trace::{TraceConfig, TraceLog};
use pgxd_baselines::SparkEngine;
use pgxd_core::{DistSorter, SortConfig};
use pgxd_datagen::{generate_partitioned, partition_even, twitter_like_keys, Distribution};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Seed used by every experiment unless overridden.
pub const DEFAULT_SEED: u64 = 20170529; // IPPS 2017 kickoff, why not

/// Default worker threads per simulated machine.
pub const DEFAULT_WORKERS: usize = 2;

/// What data a run sorts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// `n` keys from one of the Fig. 4 distributions.
    Dist {
        /// Which distribution.
        dist: Distribution,
        /// Total keys across the cluster.
        n: usize,
        /// RNG seed.
        seed: u64,
    },
    /// R-MAT edge-destination keys (the Twitter stand-in, Fig. 8).
    Twitter {
        /// log2 vertex count.
        scale: u32,
        /// Edges per vertex.
        edge_factor: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl Workload {
    /// Human-readable label for tables.
    pub fn label(&self) -> String {
        match self {
            Workload::Dist { dist, n, .. } => format!("{} (n={n})", dist.name()),
            Workload::Twitter { scale, edge_factor, .. } => {
                format!("twitter-like (rmat s={scale} ef={edge_factor})")
            }
        }
    }

    /// Materializes the per-machine input shards.
    pub fn generate(&self, machines: usize) -> Vec<Vec<u64>> {
        match *self {
            Workload::Dist { dist, n, seed } => generate_partitioned(dist, n, machines, seed),
            Workload::Twitter { scale, edge_factor, seed } => {
                let keys = twitter_like_keys(scale, edge_factor, seed);
                partition_even(&keys, machines)
            }
        }
    }
}

/// Everything one run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpResult {
    /// Which sorter ("pgxd" or "spark").
    pub system: String,
    /// Workload label (distribution + size, or twitter config).
    pub workload: String,
    /// Sample-size factor used (PGX.D only; 1.0 = the paper's X rule).
    pub sample_factor: f64,
    /// Machine count.
    pub machines: usize,
    /// Worker threads per machine.
    pub workers: usize,
    /// Total keys sorted.
    pub total_keys: usize,
    /// Measured wall time of the cluster run, seconds.
    pub wall_secs: f64,
    /// Per-step wall time (max across machines), seconds, in step order.
    pub step_secs: Vec<(String, f64)>,
    /// Per-step median across machines, seconds, in step order. Empty in
    /// results recorded before percentile aggregation existed.
    #[serde(default)]
    pub step_secs_p50: Vec<(String, f64)>,
    /// Per-step 95th percentile across machines, seconds, in step order.
    #[serde(default)]
    pub step_secs_p95: Vec<(String, f64)>,
    /// Bytes the fabric carried.
    pub comm_bytes: u64,
    /// Packets the fabric carried.
    pub comm_messages: u64,
    /// Wire time the network model charges for the aggregate traffic,
    /// seconds.
    pub modeled_comm_secs: f64,
    /// Bytes addressed to the most-loaded receiver (hotspot view).
    pub max_recv_bytes: u64,
    /// Wire time of the hotspot receiver's inbound link, seconds — the
    /// Fig. 9 communication-overhead metric (bad splitters overload one
    /// link even when aggregate volume is unchanged).
    pub bottleneck_comm_secs: f64,
    /// Exchange data chunks handed to the fabric. Zero in results recorded
    /// before the pooled exchange pipeline existed.
    #[serde(default)]
    pub exchange_chunks_sent: u64,
    /// Spent chunk buffers returned to the pool after placement.
    #[serde(default)]
    pub exchange_chunks_recycled: u64,
    /// Chunk-buffer acquisitions served from recycled memory.
    #[serde(default)]
    pub exchange_pool_hits: u64,
    /// Chunk-buffer acquisitions that fell back to a fresh allocation.
    #[serde(default)]
    pub exchange_pool_misses: u64,
    /// Payload bytes memcpy-placed into exchange output buffers.
    #[serde(default)]
    pub exchange_bytes_placed: u64,
    /// Bytes addressed to each receiving machine, by id — the Fig. 9
    /// per-receiver skew view. Empty in results recorded before the
    /// metrics plane exported it.
    #[serde(default)]
    pub per_dst_bytes: Vec<u64>,
    /// Final element count per machine (load balance).
    pub sizes: Vec<usize>,
    /// Final `(min, max)` key per machine (`None` = empty machine).
    pub ranges: Vec<Option<(u64, u64)>>,
}

impl ExpResult {
    /// Perfect-overlap scaling model for Fig. 6 shape on small hosts:
    /// `wall / p + modeled_comm`. See the crate docs.
    pub fn scaled_time(&self) -> f64 {
        self.wall_secs / self.machines as f64 + self.modeled_comm_secs
    }

    /// Per-machine shares of the total (Table II).
    pub fn shares(&self) -> Vec<f64> {
        pgxd_core::LoadStats::new(self.sizes.clone()).shares()
    }

    /// Max − min load (Fig. 10).
    pub fn load_difference(&self) -> usize {
        pgxd_core::LoadStats::new(self.sizes.clone()).load_difference()
    }

    /// Sorted-output sanity: ranges ascend with machine id.
    pub fn ranges_ascending(&self) -> bool {
        pgxd_core::RangeStats::new(self.ranges.clone()).is_ascending()
    }

    /// Fraction of chunk-buffer acquisitions served from the pool
    /// (0.0 when the run recorded no pool activity).
    pub fn exchange_pool_hit_rate(&self) -> f64 {
        let total = self.exchange_pool_hits + self.exchange_pool_misses;
        if total == 0 {
            0.0
        } else {
            self.exchange_pool_hits as f64 / total as f64
        }
    }
}

/// One pass over the step report: `(max, p50, p95)` series for `names`,
/// in seconds. All three views come from [`pgxd::StepReport`], which
/// shares its nearest-rank percentile definition with the registry
/// histograms (`pgxd::metrics::nearest_rank_index`) — the bench harness
/// computes no percentiles of its own.
type StepSeries = (
    Vec<(String, f64)>,
    Vec<(String, f64)>,
    Vec<(String, f64)>,
);

fn step_series(steps: &pgxd::StepReport, names: &[&'static str]) -> StepSeries {
    let mut max = Vec::with_capacity(names.len());
    let mut p50 = Vec::with_capacity(names.len());
    let mut p95 = Vec::with_capacity(names.len());
    for &n in names {
        max.push((n.to_string(), steps.max_across_machines(n).as_secs_f64()));
        p50.push((n.to_string(), steps.p50_across_machines(n).as_secs_f64()));
        p95.push((n.to_string(), steps.p95_across_machines(n).as_secs_f64()));
    }
    (max, p50, p95)
}

/// Runs the PGX.D distributed sort on `workload` and collects results.
pub fn run_pgxd_sort(
    workload: &Workload,
    machines: usize,
    workers: usize,
    config: SortConfig,
) -> ExpResult {
    run_pgxd_sort_buf(workload, machines, workers, config, pgxd::DEFAULT_BUFFER_BYTES)
}

/// [`run_pgxd_sort`] with an explicit data-manager buffer size — the
/// §IV-B 256 KiB tuning ablation.
pub fn run_pgxd_sort_buf(
    workload: &Workload,
    machines: usize,
    workers: usize,
    config: SortConfig,
    buffer_bytes: usize,
) -> ExpResult {
    run_pgxd_sort_traced(
        workload,
        machines,
        workers,
        config,
        buffer_bytes,
        TraceConfig::disabled(),
    )
    .0
}

/// [`run_pgxd_sort_buf`] with structured tracing: when `trace` is enabled
/// the returned [`TraceLog`] carries the run's per-machine timeline
/// (`exp trace` and the `--trace` flag feed it to the exporters).
pub fn run_pgxd_sort_traced(
    workload: &Workload,
    machines: usize,
    workers: usize,
    config: SortConfig,
    buffer_bytes: usize,
    trace: TraceConfig,
) -> (ExpResult, Option<TraceLog>) {
    let parts = workload.generate(machines);
    let total_keys = parts.iter().map(|p| p.len()).sum();
    let cluster = Cluster::new(
        ClusterConfig::new(machines)
            .workers_per_machine(workers)
            .buffer_bytes(buffer_bytes)
            .trace(trace),
    );
    let sorter = DistSorter::new(config);
    let report = cluster.run(|ctx| {
        let local = parts[ctx.id()].clone();
        let part = sorter.sort(ctx, local);
        (part.len(), part.range().map(|(a, b)| (*a, *b)))
    });
    let (step_secs, step_secs_p50, step_secs_p95) =
        step_series(&report.steps, &pgxd_core::steps::ALL);
    let result = ExpResult {
        system: "pgxd".into(),
        workload: workload.label(),
        sample_factor: config.sample_factor,
        machines,
        workers,
        total_keys,
        wall_secs: report.wall_time.as_secs_f64(),
        step_secs,
        step_secs_p50,
        step_secs_p95,
        comm_bytes: report.comm.bytes_sent,
        comm_messages: report.comm.messages_sent,
        modeled_comm_secs: report.comm.modeled_wire_time.as_secs_f64(),
        max_recv_bytes: report.comm.max_recv_bytes,
        bottleneck_comm_secs: report.comm.bottleneck_wire_time.as_secs_f64(),
        exchange_chunks_sent: report.comm.exchange.chunks_sent,
        exchange_chunks_recycled: report.comm.exchange.chunks_recycled,
        exchange_pool_hits: report.comm.exchange.pool_hits,
        exchange_pool_misses: report.comm.exchange.pool_misses,
        exchange_bytes_placed: report.comm.exchange.bytes_placed,
        per_dst_bytes: report.per_dst_bytes.clone(),
        sizes: report.results.iter().map(|r| r.0).collect(),
        ranges: report.results.iter().map(|r| r.1).collect(),
    };
    (result, report.trace)
}

/// Runs the Spark-sim `sortByKey` on `workload` and collects results.
pub fn run_spark_sort(workload: &Workload, machines: usize, workers: usize) -> ExpResult {
    let parts = workload.generate(machines);
    let total_keys = parts.iter().map(|p| p.len()).sum();
    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(workers));
    let engine = SparkEngine::default();
    let report = cluster.run(|ctx| {
        let local = parts[ctx.id()].clone();
        let out = engine.sort_by_key(ctx, local);
        let range = out
            .data
            .first()
            .map(|lo| (*lo, *out.data.last().unwrap()));
        (out.data.len(), range)
    });
    let (step_secs, step_secs_p50, step_secs_p95) =
        step_series(&report.steps, &pgxd_baselines::spark::stages::ALL);
    ExpResult {
        system: "spark".into(),
        workload: workload.label(),
        sample_factor: 0.0,
        machines,
        workers,
        total_keys,
        wall_secs: report.wall_time.as_secs_f64(),
        step_secs,
        step_secs_p50,
        step_secs_p95,
        comm_bytes: report.comm.bytes_sent,
        comm_messages: report.comm.messages_sent,
        modeled_comm_secs: report.comm.modeled_wire_time.as_secs_f64(),
        max_recv_bytes: report.comm.max_recv_bytes,
        bottleneck_comm_secs: report.comm.bottleneck_wire_time.as_secs_f64(),
        exchange_chunks_sent: report.comm.exchange.chunks_sent,
        exchange_chunks_recycled: report.comm.exchange.chunks_recycled,
        exchange_pool_hits: report.comm.exchange.pool_hits,
        exchange_pool_misses: report.comm.exchange.pool_misses,
        exchange_bytes_placed: report.comm.exchange.bytes_placed,
        per_dst_bytes: report.per_dst_bytes.clone(),
        sizes: report.results.iter().map(|r| r.0).collect(),
        ranges: report.results.iter().map(|r| r.1).collect(),
    }
}

/// One measured leg of the exchange microbenchmark (`exp exchange`):
/// repeated all-to-all redistributions of a uniform workload through
/// either the pooled/overlapped pipeline or the legacy per-element path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExchangeBenchResult {
    /// "pooled" (production path) or "legacy" (pre-rework reference).
    pub variant: String,
    /// Machine count.
    pub machines: usize,
    /// Worker threads per machine.
    pub workers: usize,
    /// Data-manager buffer capacity, bytes.
    pub buffer_bytes: usize,
    /// Keys redistributed per round (cluster-wide).
    pub total_keys: usize,
    /// Timed rounds (after one untimed warm-up round).
    pub rounds: usize,
    /// Critical-path seconds across machines for all timed rounds.
    pub wall_secs: f64,
    /// Exchange throughput: keys moved per second across timed rounds.
    pub keys_per_sec: f64,
    /// Data chunks handed to the fabric (includes the warm-up round).
    pub chunks_sent: u64,
    /// Spent chunk buffers returned to the pool.
    pub chunks_recycled: u64,
    /// Chunk-buffer acquisitions served from recycled memory.
    pub pool_hits: u64,
    /// Chunk-buffer acquisitions that allocated fresh memory.
    pub pool_misses: u64,
    /// Payload bytes memcpy-placed into output buffers.
    pub bytes_placed: u64,
}

impl ExchangeBenchResult {
    /// Fraction of chunk-buffer acquisitions served from the pool.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }
}

/// Benchmarks the §IV-C offset exchange in isolation: every machine
/// redistributes an even share of a uniform workload to all peers,
/// `rounds` times after one warm-up round (which fills the chunk pool).
/// `legacy = true` routes through the pre-rework per-element path.
pub fn run_exchange_bench(
    n_total: usize,
    machines: usize,
    workers: usize,
    buffer_bytes: usize,
    rounds: usize,
    legacy: bool,
) -> ExchangeBenchResult {
    let parts = generate_partitioned(Distribution::Uniform, n_total, machines, DEFAULT_SEED);
    let total_keys: usize = parts.iter().map(|p| p.len()).sum();
    let cluster = Cluster::new(
        ClusterConfig::new(machines)
            .workers_per_machine(workers)
            .buffer_bytes(buffer_bytes),
    );
    let report = cluster.run(|ctx| {
        let data = parts[ctx.id()].clone();
        let p = ctx.num_machines();
        // Even destination split; the uniform workload keeps receive-side
        // volume balanced too.
        let per = data.len() / p;
        let mut offsets: Vec<usize> = (0..p).map(|j| j * per).collect();
        offsets.push(data.len());
        let run_once = |ctx: &mut pgxd::MachineCtx| {
            let (out, bounds) = if legacy {
                ctx.exchange_by_offsets_legacy(&data, &offsets)
            } else {
                ctx.exchange_by_offsets(&data, &offsets)
            };
            std::hint::black_box((out.len(), bounds.len()))
        };
        run_once(ctx);
        ctx.barrier();
        for _ in 0..rounds {
            ctx.step("exchange_round", |c| run_once(c));
            ctx.barrier();
        }
    });
    let wall = report.steps.max_across_machines("exchange_round").as_secs_f64();
    let ex = report.comm.exchange;
    ExchangeBenchResult {
        variant: if legacy { "legacy" } else { "pooled" }.into(),
        machines,
        workers,
        buffer_bytes,
        total_keys,
        rounds,
        wall_secs: wall,
        keys_per_sec: total_keys as f64 * rounds as f64 / wall.max(1e-12),
        chunks_sent: ex.chunks_sent,
        chunks_recycled: ex.chunks_recycled,
        pool_hits: ex.pool_hits,
        pool_misses: ex.pool_misses,
        bytes_placed: ex.bytes_placed,
    }
}

/// Format a `Duration`-in-seconds compactly for tables.
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.1}µs", secs * 1e6)
    }
}

/// Convenience duration conversion.
pub fn to_secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgxd_run_produces_consistent_result() {
        let workload = Workload::Dist {
            dist: Distribution::Uniform,
            n: 10_000,
            seed: 1,
        };
        let r = run_pgxd_sort(&workload, 4, 1, SortConfig::default());
        assert_eq!(r.total_keys, 10_000);
        assert_eq!(r.sizes.iter().sum::<usize>(), 10_000);
        assert!(r.ranges_ascending());
        assert_eq!(r.step_secs.len(), 6);
        assert!(r.wall_secs > 0.0);
        let shares: f64 = r.shares().iter().sum();
        assert!((shares - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spark_run_produces_consistent_result() {
        let workload = Workload::Dist {
            dist: Distribution::Normal,
            n: 10_000,
            seed: 2,
        };
        let r = run_spark_sort(&workload, 3, 1);
        assert_eq!(r.sizes.iter().sum::<usize>(), 10_000);
        assert!(r.ranges_ascending());
        assert_eq!(r.step_secs.len(), 3);
    }

    #[test]
    fn twitter_workload_generates() {
        let workload = Workload::Twitter {
            scale: 10,
            edge_factor: 4,
            seed: 3,
        };
        let parts = workload.generate(4);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 1024 * 4);
        let r = run_pgxd_sort(&workload, 4, 1, SortConfig::default());
        assert!(r.ranges_ascending());
    }

    #[test]
    fn scaled_time_decreases_with_p_for_same_wall() {
        let mk = |p: usize| ExpResult {
            system: "pgxd".into(),
            workload: "synthetic".into(),
            sample_factor: 1.0,
            machines: p,
            workers: 1,
            total_keys: 0,
            wall_secs: 10.0,
            step_secs: vec![],
            step_secs_p50: vec![],
            step_secs_p95: vec![],
            comm_bytes: 0,
            comm_messages: 0,
            modeled_comm_secs: 0.1,
            max_recv_bytes: 0,
            bottleneck_comm_secs: 0.0,
            exchange_chunks_sent: 0,
            exchange_chunks_recycled: 0,
            exchange_pool_hits: 0,
            exchange_pool_misses: 0,
            exchange_bytes_placed: 0,
            per_dst_bytes: vec![],
            sizes: vec![],
            ranges: vec![],
        };
        assert!(mk(8).scaled_time() > mk(16).scaled_time());
    }

    #[test]
    fn exchange_bench_runs_both_variants() {
        let pooled = run_exchange_bench(8_192, 3, 2, 4 * 1024, 2, false);
        assert_eq!(pooled.variant, "pooled");
        assert_eq!(pooled.total_keys, 8_192);
        assert!(pooled.wall_secs > 0.0 && pooled.keys_per_sec > 0.0);
        assert!(pooled.chunks_sent > 0);
        assert!(pooled.pool_hits > 0, "timed rounds should hit the warm pool");
        assert!(pooled.bytes_placed > 0);
        let legacy = run_exchange_bench(8_192, 3, 2, 4 * 1024, 2, true);
        assert_eq!(legacy.variant, "legacy");
        assert_eq!(legacy.pool_hits + legacy.pool_misses, 0);
    }

    #[test]
    fn pgxd_result_carries_exchange_counters() {
        let workload = Workload::Dist {
            dist: Distribution::Uniform,
            n: 20_000,
            seed: 4,
        };
        let r = run_pgxd_sort(&workload, 4, 2, SortConfig::default());
        assert!(r.exchange_chunks_sent > 0);
        assert!(r.exchange_bytes_placed > 0);
        let rate = r.exchange_pool_hit_rate();
        assert!((0.0..=1.0).contains(&rate));
        // Per-receiver accounting covers every byte the fabric carried.
        assert_eq!(r.per_dst_bytes.len(), 4);
        assert_eq!(r.per_dst_bytes.iter().sum::<u64>(), r.comm_bytes);
    }

    #[test]
    fn percentile_steps_are_ordered_and_aligned() {
        let workload = Workload::Dist {
            dist: Distribution::Uniform,
            n: 10_000,
            seed: 5,
        };
        let r = run_pgxd_sort(&workload, 4, 1, SortConfig::default());
        assert_eq!(r.step_secs_p50.len(), r.step_secs.len());
        assert_eq!(r.step_secs_p95.len(), r.step_secs.len());
        for ((name, max), ((n50, p50), (n95, p95))) in r
            .step_secs
            .iter()
            .zip(r.step_secs_p50.iter().zip(&r.step_secs_p95))
        {
            assert_eq!(name, n50);
            assert_eq!(name, n95);
            assert!(p50 <= p95 && p95 <= max, "{name}: {p50} ≤ {p95} ≤ {max}");
        }
    }

    #[test]
    fn traced_run_captures_all_steps_on_every_machine() {
        let workload = Workload::Dist {
            dist: Distribution::Uniform,
            n: 20_000,
            seed: 6,
        };
        let (r, log) = run_pgxd_sort_traced(
            &workload,
            3,
            2,
            SortConfig::default(),
            pgxd::DEFAULT_BUFFER_BYTES,
            TraceConfig::enabled(),
        );
        assert!(r.ranges_ascending());
        let log = log.expect("enabled tracing must return a log");
        let gantt = log.step_gantt();
        for m in 0..3u32 {
            for step in pgxd_core::steps::ALL {
                assert!(
                    gantt.iter().any(|row| row.machine == m && row.name == step),
                    "machine {m} missing step span {step}"
                );
            }
        }
        // The untraced variant of the same run returns no log.
        let untraced = run_pgxd_sort_traced(
            &workload,
            3,
            2,
            SortConfig::default(),
            pgxd::DEFAULT_BUFFER_BYTES,
            TraceConfig::disabled(),
        );
        assert!(untraced.1.is_none());
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(2.5), "2.500s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(0.0000005), "0.5µs");
    }
}
