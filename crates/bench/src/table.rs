//! Tiny fixed-width table renderer for paper-style console output.

/// A console table: header + rows, auto-sized columns.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders to a string with column alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer-name", "123456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "1" and "123456" start at the same offset.
        let off_a = lines[2].find('1').unwrap();
        let off_b = lines[3].find('1').unwrap();
        assert_eq!(off_a, off_b);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
