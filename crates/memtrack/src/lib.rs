//! Heap-usage accounting for the memory experiments (paper Fig. 11).
//!
//! The paper reports two memory quantities for the sort: the resident set
//! that stays allocated for the duration of the process (RSS, dark blue in
//! Fig. 11) and the *temporary* memory that is allocated during the sort
//! and freed again before it finishes (light blue). We reproduce both with
//! a wrapping global allocator that keeps three counters:
//!
//! - `current` — bytes currently allocated,
//! - `peak` — high-water mark of `current` since the last [`reset_peak`],
//! - `total_allocated` — cumulative bytes ever allocated (monotonic).
//!
//! From a region bracketed by [`MemRegion`], the *retained* bytes are
//! `current_end - current_start` and the *temporary* bytes are
//! `peak - current_end` (memory that was live at the peak but freed by the
//! end), which is exactly the decomposition Fig. 11 plots.
//!
//! The allocator is a passive wrapper around the system allocator; binaries
//! opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: pgxd_memtrack::TrackingAlloc = pgxd_memtrack::TrackingAlloc;
//! ```
//!
//! When the tracking allocator is *not* installed the counters simply stay
//! at zero, so library code can query them unconditionally.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static TOTAL: AtomicUsize = AtomicUsize::new(0);

/// A `GlobalAlloc` wrapper around [`System`] that maintains the module's
/// current/peak/total counters. Install it with `#[global_allocator]`.
pub struct TrackingAlloc;

impl TrackingAlloc {
    #[inline]
    fn record_alloc(size: usize) {
        let cur = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
        TOTAL.fetch_add(size, Ordering::Relaxed);
        // Lock-free peak update: lose races benignly (peak is a watermark).
        let mut peak = PEAK.load(Ordering::Relaxed);
        while cur > peak {
            match PEAK.compare_exchange_weak(peak, cur, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(p) => peak = p,
            }
        }
    }

    #[inline]
    fn record_dealloc(size: usize) {
        CURRENT.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: defers all allocation to `System`; only adds counter updates.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::record_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::record_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            Self::record_dealloc(layout.size());
            Self::record_alloc(new_size);
        }
        p
    }
}

/// Bytes currently allocated through the tracking allocator.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark of [`current_bytes`] since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Cumulative bytes ever allocated (monotonically increasing).
pub fn total_allocated_bytes() -> usize {
    TOTAL.load(Ordering::Relaxed)
}

/// Reset the peak watermark to the current allocation level so a new
/// region's peak can be measured.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Memory statistics for a bracketed region, in the Fig. 11 decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemStats {
    /// Bytes live when the region started.
    pub start_bytes: usize,
    /// Bytes live when the region ended.
    pub end_bytes: usize,
    /// Peak bytes live at any point inside the region.
    pub peak_bytes: usize,
    /// Cumulative allocation churn inside the region.
    pub allocated_bytes: usize,
}

impl MemStats {
    /// Memory retained across the region (the "RSS" component of Fig. 11).
    /// Saturates at zero if the region freed more than it kept.
    pub fn retained(&self) -> usize {
        self.end_bytes.saturating_sub(self.start_bytes)
    }

    /// Temporary memory: live at the peak but released by the end of the
    /// region (the light-blue component of Fig. 11).
    pub fn temporary(&self) -> usize {
        self.peak_bytes.saturating_sub(self.end_bytes)
    }

    /// Peak growth above the starting level.
    pub fn peak_above_start(&self) -> usize {
        self.peak_bytes.saturating_sub(self.start_bytes)
    }
}

/// Measures allocator activity between construction and [`MemRegion::finish`].
///
/// Resets the peak watermark on entry, so `peak_bytes` reflects only this
/// region. Regions must not be nested across threads that also reset the
/// peak; the experiment harness uses a single region at a time.
pub struct MemRegion {
    start_bytes: usize,
    start_total: usize,
}

impl MemRegion {
    /// Start measuring. Resets the global peak watermark.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        reset_peak();
        MemRegion {
            start_bytes: current_bytes(),
            start_total: total_allocated_bytes(),
        }
    }

    /// Stop measuring and return the region's statistics.
    pub fn finish(self) -> MemStats {
        MemStats {
            start_bytes: self.start_bytes,
            end_bytes: current_bytes(),
            peak_bytes: peak_bytes(),
            allocated_bytes: total_allocated_bytes() - self.start_total,
        }
    }
}

/// Pretty-print a byte count with binary units, e.g. `300.0 MiB`.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the tracking allocator is not installed as the global allocator
    // in unit tests, so counter-reading tests exercise the bookkeeping
    // functions directly. The counters are global, so tests that touch
    // them serialize on this lock.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn record_alloc_updates_current_total_and_peak() {
        let _g = LOCK.lock().unwrap();
        let c0 = current_bytes();
        reset_peak();
        TrackingAlloc::record_alloc(1024);
        assert_eq!(current_bytes(), c0 + 1024);
        assert!(peak_bytes() >= c0 + 1024);
        TrackingAlloc::record_dealloc(1024);
        assert_eq!(current_bytes(), c0);
    }

    #[test]
    fn peak_is_watermark_not_current() {
        let _g = LOCK.lock().unwrap();
        reset_peak();
        let c0 = current_bytes();
        TrackingAlloc::record_alloc(4096);
        TrackingAlloc::record_dealloc(4096);
        assert_eq!(current_bytes(), c0);
        assert!(peak_bytes() >= c0 + 4096);
    }

    #[test]
    fn region_decomposition() {
        let _g = LOCK.lock().unwrap();
        let region = MemRegion::new();
        TrackingAlloc::record_alloc(1000); // temporary
        TrackingAlloc::record_alloc(500); // retained
        TrackingAlloc::record_dealloc(1000);
        let stats = region.finish();
        assert_eq!(stats.retained(), 500);
        assert_eq!(stats.temporary(), 1000);
        assert_eq!(stats.peak_above_start(), 1500);
        assert_eq!(stats.allocated_bytes, 1500);
        TrackingAlloc::record_dealloc(500);
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(300 * 1024 * 1024), "300.0 MiB");
        assert_eq!(fmt_bytes(0), "0 B");
    }

    #[test]
    fn memstats_saturating() {
        let s = MemStats {
            start_bytes: 100,
            end_bytes: 50,
            peak_bytes: 40,
            allocated_bytes: 0,
        };
        assert_eq!(s.retained(), 0);
        assert_eq!(s.temporary(), 0);
        assert_eq!(s.peak_above_start(), 0);
    }
}
