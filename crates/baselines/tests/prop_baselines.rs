//! Property tests for the comparison systems: each baseline produces a
//! sorted permutation for arbitrary inputs and machine counts, and the
//! codec round-trips arbitrary records.

use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd_baselines::bitonic::bitonic_sort_dist;
use pgxd_baselines::radix::radix_sort_dist;
use pgxd_baselines::serialize::{decode_all, encode_all};
use pgxd_baselines::SparkEngine;
use pgxd_datagen::partition_even;
use proptest::collection::vec as pvec;
use proptest::prelude::*;

fn sorted_copy(v: &[u64]) -> Vec<u64> {
    let mut s = v.to_vec();
    s.sort_unstable();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn spark_sorts_arbitrary_data(
        data in pvec(any::<u64>(), 0..2500),
        machines in 1usize..6,
        partitions in 1usize..6,
    ) {
        let parts = partition_even(&data, machines);
        let expect = sorted_copy(&data);
        let cluster = Cluster::new(ClusterConfig::new(machines));
        let engine = SparkEngine::new(partitions);
        let report = cluster.run(|ctx| engine.sort_by_key(ctx, parts[ctx.id()].clone()).data);
        prop_assert_eq!(report.results.concat(), expect);
    }

    #[test]
    fn spark_in_memory_matches_disk(
        data in pvec(0u64..1000, 0..1500),
        machines in 1usize..5,
    ) {
        let parts = partition_even(&data, machines);
        let cluster = Cluster::new(ClusterConfig::new(machines));
        let disk = SparkEngine::default();
        let mem = SparkEngine::default().in_memory_shuffle();
        let a = cluster
            .run(|ctx| disk.sort_by_key(ctx, parts[ctx.id()].clone()).data)
            .results
            .concat();
        let b = cluster
            .run(|ctx| mem.sort_by_key(ctx, parts[ctx.id()].clone()).data)
            .results
            .concat();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn bitonic_sorts_power_of_two_clusters(
        data_per_machine in pvec(any::<u64>(), 0..400),
        log_p in 0u32..4,
    ) {
        let p = 1usize << log_p;
        // Equal block sizes required by the classical algorithm.
        let shards: Vec<Vec<u64>> = (0..p)
            .map(|m| {
                data_per_machine
                    .iter()
                    .map(|&x| x.rotate_left(m as u32))
                    .collect()
            })
            .collect();
        let mut expect: Vec<u64> = shards.concat();
        expect.sort_unstable();
        let cluster = Cluster::new(ClusterConfig::new(p));
        let shards_ref = &shards;
        let report = cluster.run(|ctx| bitonic_sort_dist(ctx, shards_ref[ctx.id()].clone()));
        prop_assert_eq!(report.results.concat(), expect);
    }

    #[test]
    fn distributed_radix_sorts_arbitrary_data(
        data in pvec(any::<u64>(), 0..2500),
        machines in 1usize..6,
    ) {
        let parts = partition_even(&data, machines);
        let expect = sorted_copy(&data);
        let cluster = Cluster::new(ClusterConfig::new(machines));
        let report = cluster.run(|ctx| radix_sort_dist(ctx, parts[ctx.id()].clone()));
        prop_assert_eq!(report.results.concat(), expect);
    }

    #[test]
    fn codec_roundtrips(v in pvec(any::<u64>(), 0..500)) {
        prop_assert_eq!(decode_all::<u64>(&encode_all(&v)), v);
    }

    #[test]
    fn codec_roundtrips_pairs(v in pvec(any::<(u64, u64)>(), 0..300)) {
        prop_assert_eq!(decode_all::<(u64, u64)>(&encode_all(&v)), v);
    }
}
