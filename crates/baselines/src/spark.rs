//! A Spark-1.6-style `sortByKey` (the paper's comparison system, §II/§V).
//!
//! Spark's distributed sort runs three bulk-synchronous stages:
//!
//! 1. **sample** — the driver draws samples from every partition and
//!    computes range-partitioner bounds (no duplicate-splitter handling —
//!    repeated bounds leave partitions empty, Spark's real behaviour);
//! 2. **map** — every input partition assigns each record to an output
//!    partition by binary-searching the bounds, and *serializes* it into
//!    that partition's shuffle buffer (the shuffle write);
//! 3. **reduce** — output partitions fetch their shuffle blocks,
//!    *deserialize*, and sort with TimSort.
//!
//! A barrier separates every stage (the bulk-synchronous model the paper
//! contrasts PGX.D's relaxed execution with). All costs are real: records
//! round-trip through the [`Record`] codec, stage results materialize,
//! and no computation overlaps communication.
//!
//! Mapping onto the simulator: each machine hosts
//! [`SparkEngine::partitions_per_machine`] input partitions and owns the
//! same number of output partitions (machine `m` owns output partitions
//! `m·k..(m+1)·k`), so "tasks" parallelize on the machine's worker pool
//! exactly like Spark tasks parallelize on executor cores.

use crate::serialize::{decode_all, encode_all, Record};
use pgxd::machine::MachineCtx;
use pgxd_algos::exec::even_chunk_bounds;
use pgxd_algos::search::upper_bound;
use pgxd_algos::timsort::timsort;

/// Stage names recorded in the machine step timer.
pub mod stages {
    /// Driver sampling + bounds computation.
    pub const SAMPLE: &str = "spark_sample";
    /// Map-side partition + serialized shuffle write.
    pub const MAP_SHUFFLE: &str = "spark_map_shuffle";
    /// Reduce-side fetch + deserialize + TimSort.
    pub const REDUCE_SORT: &str = "spark_reduce_sort";
    /// All three, in order.
    pub const ALL: [&str; 3] = [SAMPLE, MAP_SHUFFLE, REDUCE_SORT];
}

/// The Spark-like engine.
#[derive(Debug, Clone, Copy)]
pub struct SparkEngine {
    /// Input (and output) partitions hosted per machine — Spark tasks per
    /// executor. Defaults to 4.
    pub partitions_per_machine: usize,
    /// Samples drawn per input partition for the range partitioner.
    /// Spark's `sampleSizePerPartitionHint`-ish default: 20.
    pub samples_per_partition: usize,
    /// Materialize shuffle blocks through local files, as Spark's sort
    /// shuffle does (map tasks write shuffle files; reducers fetch them).
    /// Default true; turn off to isolate the serialization/barrier costs.
    pub shuffle_to_disk: bool,
}

impl Default for SparkEngine {
    fn default() -> Self {
        SparkEngine {
            partitions_per_machine: 4,
            samples_per_partition: 20,
            shuffle_to_disk: true,
        }
    }
}

/// Monotonic id so concurrent sorts never share shuffle files.
static SHUFFLE_NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Round-trips one machine's framed shuffle output through local files
/// (one per destination), returning the re-read blocks. Models the map
/// task's shuffle-file write plus the fetch-time read.
fn spill_blocks_to_disk(machine: usize, blocks: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    let nonce = SHUFFLE_NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("pgxd-spark-shuffle-{}", std::process::id()));
    if std::fs::create_dir_all(&dir).is_err() {
        return blocks; // no usable temp dir: degrade to in-memory shuffle
    }
    blocks
        .into_iter()
        .enumerate()
        .map(|(dst, block)| {
            if block.is_empty() {
                return block;
            }
            let path = dir.join(format!("m{machine}-d{dst}-{nonce}.shuffle"));
            match std::fs::write(&path, &block) {
                Ok(()) => {
                    let back = std::fs::read(&path).unwrap_or(block);
                    let _ = std::fs::remove_file(&path);
                    back
                }
                Err(_) => block,
            }
        })
        .collect()
}

/// One machine's slice of the Spark sort output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparkSortResult<R> {
    /// The machine's output partitions, concatenated in partition order
    /// (globally sorted across machines by construction).
    pub data: Vec<R>,
    /// The range-partitioner bounds the driver computed.
    pub bounds: Vec<R>,
}

impl SparkEngine {
    /// Creates an engine with the given partitions per machine.
    pub fn new(partitions_per_machine: usize) -> Self {
        SparkEngine {
            partitions_per_machine: partitions_per_machine.max(1),
            ..Default::default()
        }
    }

    /// Disables the disk round-trip of shuffle blocks.
    pub fn in_memory_shuffle(mut self) -> Self {
        self.shuffle_to_disk = false;
        self
    }

    /// The bulk-synchronous `sortByKey`. SPMD: call from every machine
    /// with its local shard.
    pub fn sort_by_key<R: Record>(&self, ctx: &mut MachineCtx, local: Vec<R>) -> SparkSortResult<R> {
        let p = ctx.num_machines();
        let k = self.partitions_per_machine;
        let num_output = p * k;

        // ---- Stage 1: sample → driver → bounds -------------------------
        let bounds = ctx.step(stages::SAMPLE, |ctx| {
            // Spark's `sortByKey` runs a separate sampling *job* whose
            // `sketch()` fully scans every partition with reservoir
            // sampling — a whole extra pass over the input, which we pay
            // here too (deterministic xorshift stands in for the RNG).
            let mut samples: Vec<R> = Vec::new();
            let chunk_bounds = even_chunk_bounds(local.len(), k);
            for (t, w) in chunk_bounds.windows(2).enumerate() {
                let part = &local[w[0]..w[1]];
                let want = self.samples_per_partition.min(part.len());
                if want == 0 {
                    continue;
                }
                let mut reservoir: Vec<R> = part[..want].to_vec();
                let mut x: u64 = 0x9e3779b97f4a7c15 ^ ((ctx.id() * k + t) as u64);
                for (seen, &record) in part.iter().enumerate().skip(want) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let slot = (x % (seen as u64 + 1)) as usize;
                    if slot < want {
                        reservoir[slot] = record;
                    }
                }
                samples.extend_from_slice(&reservoir);
            }
            // Samples travel serialized, like Spark rows.
            let gathered = ctx.gather_to_master(encode_all(&samples));
            let bounds_bytes = gathered.map(|rows| {
                let mut all: Vec<R> = rows.iter().flat_map(|b| decode_all::<R>(b)).collect();
                timsort(&mut all);
                let m = all.len();
                let bounds: Vec<R> = if m == 0 {
                    Vec::new()
                } else {
                    (0..num_output - 1).map(|j| all[(j + 1) * m / num_output]).collect()
                };
                encode_all(&bounds)
            });
            let bounds = decode_all::<R>(&ctx.broadcast_from_master(bounds_bytes));
            ctx.barrier(); // stage boundary
            bounds
        });

        // ---- Stage 2: map-side partition + shuffle write ---------------
        // Per destination *machine*: framed bytes
        // [u32 partition_id, u64 byte_len, payload]*.
        let shuffle_blocks = ctx.step(stages::MAP_SHUFFLE, |ctx| {
            let chunk_bounds = even_chunk_bounds(local.len(), k);
            // One map task per input partition, on the worker pool.
            let mut per_task: Vec<Vec<Vec<u8>>> = vec![Vec::new(); k];
            {
                let bounds_ref = &bounds;
                let local_ref = &local;
                let cb = &chunk_bounds;
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = per_task
                    .iter_mut()
                    .enumerate()
                    .map(|(t, out)| {
                        Box::new(move || {
                            let part = &local_ref[cb[t]..cb[t + 1]];
                            let mut buffers: Vec<Vec<u8>> = vec![Vec::new(); num_output];
                            for &record in part {
                                // Spark: binary search of the bounds per
                                // record (data is unsorted).
                                let pid = upper_bound(bounds_ref, &record).min(num_output - 1);
                                record.encode(&mut buffers[pid]);
                            }
                            *out = buffers;
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                ctx.tasks().run_tasks(tasks);
            }
            // Frame per destination machine (owner of pid = pid / k).
            let mut framed: Vec<Vec<u8>> = vec![Vec::new(); p];
            for task_buffers in per_task {
                for (pid, payload) in task_buffers.into_iter().enumerate() {
                    if payload.is_empty() {
                        continue;
                    }
                    let dst = pid / k;
                    let frame = &mut framed[dst];
                    frame.extend_from_slice(&(pid as u32).to_le_bytes());
                    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                    frame.extend_from_slice(&payload);
                }
            }
            // Spark's sort shuffle materializes map output as local
            // shuffle files; reducers read them at fetch time.
            let framed = if self.shuffle_to_disk {
                spill_blocks_to_disk(ctx.id(), framed)
            } else {
                framed
            };
            ctx.barrier(); // map stage completes before any fetch
            framed
        });

        // ---- Stage 3: shuffle fetch + deserialize + TimSort ------------
        let data = ctx.step(stages::REDUCE_SORT, |ctx| {
            let blocks = ctx.all_to_all(shuffle_blocks);
            // Parse frames into per-owned-partition byte blobs.
            let my_first_pid = ctx.id() * k;
            let mut per_partition: Vec<Vec<u8>> = vec![Vec::new(); k];
            for block in &blocks {
                let mut cursor = &block[..];
                while !cursor.is_empty() {
                    let mut pid_bytes = [0u8; 4];
                    pid_bytes.copy_from_slice(&cursor[..4]);
                    let pid = u32::from_le_bytes(pid_bytes) as usize;
                    let mut len_bytes = [0u8; 8];
                    len_bytes.copy_from_slice(&cursor[4..12]);
                    let len = u64::from_le_bytes(len_bytes) as usize;
                    per_partition[pid - my_first_pid].extend_from_slice(&cursor[12..12 + len]);
                    cursor = &cursor[12 + len..];
                }
            }
            // One reduce task per owned partition: deserialize + TimSort.
            let mut sorted_parts: Vec<Vec<R>> = vec![Vec::new(); k];
            {
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = sorted_parts
                    .iter_mut()
                    .zip(per_partition.iter())
                    .map(|(out, blob)| {
                        Box::new(move || {
                            let mut records = decode_all::<R>(blob);
                            timsort(&mut records);
                            *out = records;
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                ctx.tasks().run_tasks(tasks);
            }
            ctx.barrier(); // job end
            sorted_parts.concat()
        });

        SparkSortResult { data, bounds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgxd::cluster::{Cluster, ClusterConfig};
    use pgxd_datagen::{generate_partitioned, Distribution};

    fn run_spark(
        machines: usize,
        dist: Distribution,
        n: usize,
        seed: u64,
    ) -> (Vec<Vec<u64>>, Vec<u64>, pgxd::CommSummary) {
        let parts = generate_partitioned(dist, n, machines, seed);
        let mut expect: Vec<u64> = parts.concat();
        expect.sort_unstable();
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let engine = SparkEngine::default();
        let report = cluster.run(|ctx| {
            let local = parts[ctx.id()].clone();
            engine.sort_by_key(ctx, local).data
        });
        (report.results, expect, report.comm)
    }

    #[test]
    fn sorts_all_distributions() {
        for dist in Distribution::ALL {
            let (results, expect, _) = run_spark(4, dist, 20_000, 3);
            assert_eq!(results.concat(), expect, "{}", dist.name());
        }
    }

    #[test]
    fn sorts_various_machine_counts() {
        for machines in [1usize, 2, 3, 5, 8] {
            let (results, expect, _) = run_spark(machines, Distribution::Uniform, 10_000, 5);
            assert_eq!(results.concat(), expect, "p={machines}");
        }
    }

    #[test]
    fn all_equal_keys_collapse_to_one_partition() {
        // Spark's range partitioner has no investigator: every record goes
        // to the single partition owning the repeated bound.
        let machines = 4;
        let parts: Vec<Vec<u64>> = (0..machines).map(|_| vec![7u64; 1000]).collect();
        let cluster = Cluster::new(ClusterConfig::new(machines));
        let engine = SparkEngine::default();
        let report = cluster.run(|ctx| {
            let local = parts[ctx.id()].clone();
            engine.sort_by_key(ctx, local).data.len()
        });
        let max = *report.results.iter().max().unwrap();
        assert_eq!(max, machines * 1000, "{:?}", report.results);
    }

    #[test]
    fn tiny_inputs() {
        for n in [0usize, 1, 5] {
            let (results, expect, _) = run_spark(3, Distribution::Uniform, n, 7);
            assert_eq!(results.concat(), expect, "n={n}");
        }
    }

    #[test]
    fn records_stage_times() {
        let parts = generate_partitioned(Distribution::Uniform, 5000, 2, 9);
        let cluster = Cluster::new(ClusterConfig::new(2));
        let engine = SparkEngine::default();
        let report = cluster.run(|ctx| {
            let _ = engine.sort_by_key(ctx, parts[ctx.id()].clone());
        });
        let names = report.steps.step_names();
        for s in stages::ALL {
            assert!(names.contains(&s), "missing stage {s}");
        }
    }

    #[test]
    fn shuffle_bytes_exceed_payload() {
        // Serialization + framing: the shuffle must move at least the raw
        // payload volume of the records that changed machines.
        let n = 40_000;
        let (results, expect, comm) = run_spark(4, Distribution::Uniform, n, 11);
        assert_eq!(results.concat(), expect);
        // ~3/4 of records cross machines on uniform data.
        assert!(comm.bytes_sent as usize > n / 2 * 8, "{comm:?}");
    }

    #[test]
    fn disk_and_memory_shuffle_agree() {
        let machines = 3;
        let parts = generate_partitioned(Distribution::RightSkewed, 9000, machines, 21);
        let cluster = Cluster::new(ClusterConfig::new(machines));
        let disk = SparkEngine::default();
        let mem = SparkEngine::default().in_memory_shuffle();
        let via_disk = cluster
            .run(|ctx| disk.sort_by_key(ctx, parts[ctx.id()].clone()).data)
            .results
            .concat();
        let via_mem = cluster
            .run(|ctx| mem.sort_by_key(ctx, parts[ctx.id()].clone()).data)
            .results
            .concat();
        assert_eq!(via_disk, via_mem);
        let mut expect: Vec<u64> = parts.concat();
        expect.sort_unstable();
        assert_eq!(via_disk, expect);
    }

    #[test]
    fn pairs_sort_by_key_component() {
        let machines = 3;
        let parts = generate_partitioned(Distribution::Normal, 6000, machines, 13);
        let cluster = Cluster::new(ClusterConfig::new(machines));
        let engine = SparkEngine::default();
        let report = cluster.run(|ctx| {
            let local: Vec<(u64, u64)> = parts[ctx.id()]
                .iter()
                .map(|&x| (x, x ^ 0xabcd))
                .collect();
            engine.sort_by_key(ctx, local).data
        });
        let flat: Vec<(u64, u64)> = report.results.concat();
        assert_eq!(flat.len(), 6000);
        assert!(flat.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(flat.iter().all(|&(k, v)| v == k ^ 0xabcd));
    }
}
