//! Partitioned parallel radix sort (§II's second classical baseline).
//!
//! Keys are bucketed by their high-order bits (after shifting off the
//! globally unused prefix), the global bucket histogram is all-gathered,
//! buckets are assigned to machines greedily so counts come out as even
//! as the bucket granularity allows, keys are exchanged, and every machine
//! finishes with a local LSD radix sort.
//!
//! The paper's criticism shows up measurably: when the data is heavily
//! duplicated, single buckets exceed the ideal per-machine share and no
//! bucket assignment can balance the load — the harness's ablation bench
//! demonstrates exactly that.

use pgxd::machine::MachineCtx;
use pgxd_algos::radix::radix_sort;

/// Step names for the timer.
pub mod stages {
    /// Histogram + assignment.
    pub const HISTOGRAM: &str = "radix_histogram";
    /// Key exchange.
    pub const EXCHANGE: &str = "radix_exchange";
    /// Final local radix sort.
    pub const LOCAL_SORT: &str = "radix_local_sort";
}

/// Number of high-order bits used for bucketing (1024 buckets).
const BUCKET_BITS: u32 = 10;
const NUM_BUCKETS: usize = 1 << BUCKET_BITS;

/// Distributed radix sort over `u64` keys. SPMD.
pub fn radix_sort_dist(ctx: &mut MachineCtx, local: Vec<u64>) -> Vec<u64> {
    let p = ctx.num_machines();

    // --- histogram + bucket→machine assignment --------------------------
    let (grouped, offsets) = ctx.step(stages::HISTOGRAM, |ctx| {
        // Shift off the globally unused high bits so bucketing has
        // resolution even for small-range keys.
        let local_max = local.iter().copied().max().unwrap_or(0);
        let global_max = ctx
            .all_gather(vec![local_max])
            .into_iter()
            .map(|v| v[0])
            .max()
            .unwrap_or(0);
        let used_bits = 64 - global_max.leading_zeros();
        let shift = used_bits.saturating_sub(BUCKET_BITS);

        let mut hist = vec![0u64; NUM_BUCKETS];
        for &k in &local {
            hist[(k >> shift) as usize] += 1;
        }
        let rows = ctx.all_gather(hist.clone());
        let mut global = vec![0u64; NUM_BUCKETS];
        for row in &rows {
            for (g, &c) in global.iter_mut().zip(row) {
                *g += c;
            }
        }
        let total: u64 = global.iter().sum();
        // Greedy contiguous assignment: walk buckets, cut when the running
        // count reaches the ideal share.
        let ideal = total as f64 / p as f64;
        let mut assignment = vec![0usize; NUM_BUCKETS];
        let mut machine = 0usize;
        let mut running = 0u64;
        for (b, &c) in global.iter().enumerate() {
            assignment[b] = machine;
            running += c;
            if (running as f64) >= ideal * (machine + 1) as f64 && machine + 1 < p {
                machine += 1;
            }
        }

        // Group local keys by destination machine (counting sort by
        // assignment), producing contiguous send ranges.
        let mut dest_counts = vec![0usize; p];
        for &k in &local {
            dest_counts[assignment[(k >> shift) as usize]] += 1;
        }
        let mut offsets = Vec::with_capacity(p + 1);
        offsets.push(0usize);
        for d in 0..p {
            offsets.push(offsets[d] + dest_counts[d]);
        }
        let mut cursor = offsets.clone();
        let mut grouped = vec![0u64; local.len()];
        for &k in &local {
            let d = assignment[(k >> shift) as usize];
            grouped[cursor[d]] = k;
            cursor[d] += 1;
        }
        (grouped, offsets)
    });

    // --- exchange --------------------------------------------------------
    let (mut received, _bounds) =
        ctx.step(stages::EXCHANGE, |ctx| ctx.exchange_by_offsets(&grouped, &offsets));
    drop(grouped);

    // --- final local sort --------------------------------------------------
    ctx.step(stages::LOCAL_SORT, |_| radix_sort(&mut received));
    received
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgxd::cluster::{Cluster, ClusterConfig};
    use pgxd_datagen::{generate_partitioned, Distribution};

    fn run_radix(machines: usize, dist: Distribution, n: usize, seed: u64) -> Vec<Vec<u64>> {
        let parts = generate_partitioned(dist, n, machines, seed);
        let mut expect: Vec<u64> = parts.concat();
        expect.sort_unstable();
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let report = cluster.run(|ctx| radix_sort_dist(ctx, parts[ctx.id()].clone()));
        assert_eq!(report.results.concat(), expect, "{} p={machines}", dist.name());
        report.results
    }

    #[test]
    fn sorts_all_distributions() {
        for dist in Distribution::ALL {
            run_radix(4, dist, 20_000, 3);
        }
    }

    #[test]
    fn sorts_various_machine_counts() {
        for machines in [1usize, 2, 3, 5, 8] {
            run_radix(machines, Distribution::Uniform, 10_000, machines as u64);
        }
    }

    #[test]
    fn uniform_keys_balance_well() {
        let results = run_radix(4, Distribution::Uniform, 40_000, 7);
        let sizes: Vec<usize> = results.iter().map(|r| r.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max < min + 40_000 / 8, "{sizes:?}");
    }

    #[test]
    fn all_equal_keys_collapse() {
        // One bucket holds everything: no assignment can split it — the
        // §II irregularity criticism.
        let machines = 4;
        let parts: Vec<Vec<u64>> = (0..machines).map(|_| vec![42u64; 1000]).collect();
        let cluster = Cluster::new(ClusterConfig::new(machines));
        let report = cluster.run(|ctx| radix_sort_dist(ctx, parts[ctx.id()].clone()).len());
        let max = *report.results.iter().max().unwrap();
        assert_eq!(max, machines * 1000);
    }

    #[test]
    fn zero_and_tiny_inputs() {
        run_radix(3, Distribution::Uniform, 0, 1);
        run_radix(3, Distribution::Uniform, 2, 1);
    }
}
