//! Distributed Batcher bitonic sort (§II's first classical baseline).
//!
//! Block-bitonic on a hypercube: every machine sorts its block locally,
//! then runs the `log²p` compare-split schedule, where each step ships the
//! machine's *entire current block* to its partner — the "often needs to
//! exchange the entire data assigned to each processor" communication
//! behaviour the paper criticizes. Requires a power-of-two machine count
//! and equal block sizes (the classical algorithm's precondition).

use pgxd::machine::MachineCtx;
use pgxd_algos::bitonic::compare_split;
use pgxd_algos::merge::sort_chunks_and_merge;
use pgxd_algos::quicksort::quicksort;
use pgxd_algos::Key;

/// Step names for the timer.
pub mod stages {
    /// Initial local sort.
    pub const LOCAL_SORT: &str = "bitonic_local_sort";
    /// All compare-split exchange stages combined.
    pub const COMPARE_SPLIT: &str = "bitonic_compare_split";
}

/// Distributed bitonic sort. SPMD.
///
/// # Panics
/// If the machine count is not a power of two, or block sizes differ.
pub fn bitonic_sort_dist<K: Key>(ctx: &mut MachineCtx, local: Vec<K>) -> Vec<K> {
    let p = ctx.num_machines();
    assert!(p.is_power_of_two(), "bitonic needs a power-of-two machine count");
    let workers = ctx.workers();

    // Equal-block precondition.
    let sizes = ctx.all_gather(vec![local.len()]);
    let first = sizes[0][0];
    assert!(
        sizes.iter().all(|s| s[0] == first),
        "bitonic requires equal block sizes per machine"
    );

    let mut block = ctx.step(stages::LOCAL_SORT, move |_| {
        sort_chunks_and_merge(local, workers, |c| quicksort(c))
    });

    if p == 1 {
        return block;
    }

    let id = ctx.id();
    let log_p = p.trailing_zeros();
    ctx.step(stages::COMPARE_SPLIT, |ctx| {
        for i in 0..log_p {
            for j in (0..=i).rev() {
                let partner = id ^ (1usize << j);
                // Block direction for this merge stage: ascending when the
                // (i+1)-th bit of the id is clear. For the final stage that
                // bit is beyond the id range, so everything merges
                // ascending — the network's overall output order.
                let ascending = id & (1usize << (i + 1)) == 0;

                // Ship the whole block both ways (the expensive part).
                let mut parts: Vec<Vec<K>> = (0..p).map(|_| Vec::new()).collect();
                parts[partner] = block.clone();
                let mut received = ctx.all_to_all(parts);
                let partner_block = std::mem::take(&mut received[partner]);

                // In an ascending pair the lower id keeps the small half.
                let keep_low = (id < partner) == ascending;
                let (low, high) = if id < partner {
                    compare_split(&block, &partner_block)
                } else {
                    compare_split(&partner_block, &block)
                };
                block = if keep_low { low } else { high };
            }
        }
    });
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgxd::cluster::{Cluster, ClusterConfig};
    use pgxd_datagen::{generate_partitioned, Distribution};

    fn run_bitonic(machines: usize, n: usize, dist: Distribution, seed: u64) {
        let parts = generate_partitioned(dist, n, machines, seed);
        let mut expect: Vec<u64> = parts.concat();
        expect.sort_unstable();
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let report = cluster.run(|ctx| bitonic_sort_dist(ctx, parts[ctx.id()].clone()));
        assert_eq!(report.results.concat(), expect, "p={machines} n={n}");
    }

    #[test]
    fn sorts_power_of_two_machines() {
        for machines in [1usize, 2, 4, 8] {
            // n divisible by p so blocks are equal.
            run_bitonic(machines, 8 * 1024, Distribution::Uniform, machines as u64);
        }
    }

    #[test]
    fn sorts_duplicate_heavy() {
        run_bitonic(4, 8000, Distribution::Exponential, 3);
        run_bitonic(4, 8000, Distribution::RightSkewed, 4);
    }

    #[test]
    // The assertion fires inside the machine threads; the cluster
    // propagates it as a join failure.
    #[should_panic(expected = "machine thread panicked")]
    fn rejects_non_power_of_two() {
        let cluster = Cluster::new(ClusterConfig::new(3));
        let _ = cluster.run(|ctx| bitonic_sort_dist(ctx, vec![1u64]));
    }

    #[test]
    fn communication_exchanges_whole_blocks() {
        // Each compare-split ships the full block both directions; with
        // p = 4 the schedule has 3 stages, so traffic far exceeds the
        // one-pass traffic a sample sort needs.
        let machines = 4;
        let n = 40_000;
        let parts = generate_partitioned(Distribution::Uniform, n, machines, 5);
        let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
        let report = cluster.run(|ctx| bitonic_sort_dist(ctx, parts[ctx.id()].clone()));
        // 3 stages × n keys × 8 bytes of total traffic (every key moves
        // every stage, both directions count once as sends).
        assert!(
            report.comm.bytes_sent >= 3 * (n as u64) * 8,
            "{:?}",
            report.comm
        );
    }
}
