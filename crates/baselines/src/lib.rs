//! Comparators for the evaluation.
//!
//! - [`spark`] — a Spark-1.6-style bulk-synchronous `sortByKey`: sample →
//!   map (range partition + serialized shuffle write) → reduce (shuffle
//!   fetch + TimSort), with a stage barrier between each. This is the
//!   baseline Figs. 6 and 8 compare against; its costs (serialization,
//!   materialization, barriers, no duplicate-splitter handling) are paid
//!   for real, not modeled.
//! - [`bitonic`] — distributed Batcher bitonic sort (§II): hypercube
//!   compare-split stages that exchange *entire* machine blocks each step,
//!   reproducing the communication blow-up the paper criticizes.
//! - [`radix`] — partitioned parallel LSD radix sort (§II): top-byte
//!   histogram partitioning plus local radix, which loses balance on
//!   skewed/duplicated keys exactly as the paper describes.
//! - [`serialize`] — the fixed-width record codec the Spark baseline pays
//!   for at every stage boundary.
//!
//! The *naive sample sort* ablation (no investigator, Fig. 3b) does not
//! live here: it is `pgxd_core::SortConfig::investigator(false)`.

#![forbid(unsafe_code)]

pub mod bitonic;
pub mod radix;
pub mod serialize;
pub mod spark;

pub use spark::{SparkEngine, SparkSortResult};
