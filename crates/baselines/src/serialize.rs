//! Fixed-width record codec for the Spark baseline.
//!
//! Spark pays (de)serialization at every shuffle boundary; PGX.D moves
//! native memory. To keep that comparison honest the Spark baseline
//! round-trips every record through this codec at the map→reduce boundary,
//! while the PGX.D path ships `Vec<T>` by ownership.

use bytes::{Buf, BufMut};

/// Records with a fixed-width byte encoding whose decoded form compares
/// like the original.
pub trait Record: Copy + Ord + Send + Sync + 'static {
    /// Encoded width in bytes.
    const WIDTH: usize;
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one record from the front of `buf`, advancing it.
    fn decode(buf: &mut &[u8]) -> Self;
}

impl Record for u64 {
    const WIDTH: usize = 8;
    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u64_le(*self);
    }
    fn decode(buf: &mut &[u8]) -> Self {
        buf.get_u64_le()
    }
}

impl Record for u32 {
    const WIDTH: usize = 4;
    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u32_le(*self);
    }
    fn decode(buf: &mut &[u8]) -> Self {
        buf.get_u32_le()
    }
}

impl Record for i64 {
    const WIDTH: usize = 8;
    fn encode(&self, out: &mut Vec<u8>) {
        out.put_i64_le(*self);
    }
    fn decode(buf: &mut &[u8]) -> Self {
        buf.get_i64_le()
    }
}

impl Record for (u64, u64) {
    const WIDTH: usize = 16;
    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u64_le(self.0);
        out.put_u64_le(self.1);
    }
    fn decode(buf: &mut &[u8]) -> Self {
        (buf.get_u64_le(), buf.get_u64_le())
    }
}

/// Encodes a slice of records.
pub fn encode_all<R: Record>(records: &[R]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * R::WIDTH);
    for r in records {
        r.encode(&mut out);
    }
    out
}

/// Decodes a whole buffer of records (must be a multiple of the width).
pub fn decode_all<R: Record>(mut buf: &[u8]) -> Vec<R> {
    assert_eq!(buf.len() % R::WIDTH, 0, "truncated record buffer");
    let mut out = Vec::with_capacity(buf.len() / R::WIDTH);
    while !buf.is_empty() {
        out.push(R::decode(&mut buf));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let v = vec![0u64, 1, u64::MAX, 0xdead_beef];
        assert_eq!(decode_all::<u64>(&encode_all(&v)), v);
    }

    #[test]
    fn u32_and_i64_roundtrip() {
        let v = vec![0u32, 7, u32::MAX];
        assert_eq!(decode_all::<u32>(&encode_all(&v)), v);
        let w = vec![-5i64, 0, i64::MAX, i64::MIN];
        assert_eq!(decode_all::<i64>(&encode_all(&w)), w);
    }

    #[test]
    fn pair_roundtrip() {
        let v = vec![(1u64, 2u64), (u64::MAX, 0)];
        assert_eq!(decode_all::<(u64, u64)>(&encode_all(&v)), v);
    }

    #[test]
    fn empty_roundtrip() {
        assert!(decode_all::<u64>(&encode_all::<u64>(&[])).is_empty());
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_buffer_rejected() {
        let bytes = encode_all(&[1u64, 2]);
        let _ = decode_all::<u64>(&bytes[..9]);
    }

    #[test]
    fn width_matches_encoding() {
        let one = encode_all(&[42u64]);
        assert_eq!(one.len(), <u64 as Record>::WIDTH);
    }
}
