//! Structured runtime tracing: lock-free per-machine event rings, a
//! cluster-level collector, and Chrome-trace/JSONL exporters.
//!
//! The paper's whole evaluation (§V) is an observability exercise —
//! per-step wall times, communication volume, load balance — but
//! end-of-run aggregates ([`CommSummary`](crate::metrics::CommSummary),
//! [`StepReport`](crate::metrics::StepReport)) cannot *show* the §IV-C
//! send-while-receive overlap or where a bad splitter stalls one machine.
//! This module records timestamped spans and instant events at every
//! interesting runtime edge (step begin/end, barrier enter/leave, task
//! start/end, chunk flush/send/receive/place, pool hit/miss, protocol
//! checker verdicts) and merges them on one clock so a whole cluster run
//! can be replayed event-by-event in `chrome://tracing` / Perfetto.
//!
//! # Overhead budget
//!
//! Tracing is off by default ([`TraceConfig::disabled`]). Every emission
//! site in the runtime holds an `Option<Arc<MachineTrace>>` that is `None`
//! when tracing is off, so a release run without tracing pays ~one
//! predictable branch per event site and touches no shared state. With
//! tracing on, an emission is one `fetch_add` to claim a ring slot plus
//! seven uncontended atomic stores — no locks, no allocation.
//!
//! # Ring overflow policy
//!
//! Each machine owns a small set of fixed-capacity rings (one per lane:
//! lane 0 is the machine's mainline thread, lanes 1.. its worker tasks).
//! A ring never blocks a producer: when it is full the **oldest** event is
//! overwritten (the newest events are the ones a post-mortem wants), and
//! the loss is accounted — `emitted - collected = dropped`, reported in
//! the [`TraceLog`]. Writers claim a monotonically increasing sequence
//! number with `fetch_add`; each slot carries a seqlock-style version so
//! a drain concurrent with emission either reads a consistent event or
//! skips the slot (counted as dropped), never a torn mix. The whole ring
//! is built from [`crate::sync::atomic`] — no `unsafe`, and `--cfg loom`
//! model-checks the emit/drain handoff (`tests/loom_trace.rs`).

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{thread, Mutex};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Lane index of a machine's mainline (SPMD closure) thread.
pub const LANE_MAIN: u32 = 0;

/// Protocol-checker verdict codes carried in the `a` payload of
/// [`EventKind::Checker`] instants.
pub mod violation {
    /// A packet surfaced that was never sent (tag mismatch / duplicate).
    pub const PHANTOM_DELIVERY: u64 = 1;
    /// A pool handed the same allocation out twice.
    pub const DOUBLE_ACQUIRE: u64 = 2;
    /// A chunk was released into a pool free list twice.
    pub const DOUBLE_RELEASE: u64 = 3;
    /// Quiescence check found sent-but-unreceived packets.
    pub const UNDELIVERED_PACKETS: u64 = 4;
    /// Quiescence check found chunks checked out but never released.
    pub const LEAKED_CHUNKS: u64 = 5;
    /// §IV-C offset ledger: two spans overlapped.
    pub const OFFSET_OVERLAP: u64 = 6;
    /// §IV-C offset ledger: a gap was never written.
    pub const OFFSET_GAP: u64 = 7;

    /// Human-readable label for a verdict code.
    pub fn label(code: u64) -> &'static str {
        match code {
            PHANTOM_DELIVERY => "phantom_delivery",
            DOUBLE_ACQUIRE => "double_acquire",
            DOUBLE_RELEASE => "double_release",
            UNDELIVERED_PACKETS => "undelivered_packets",
            LEAKED_CHUNKS => "leaked_chunks",
            OFFSET_OVERLAP => "offset_overlap",
            OFFSET_GAP => "offset_gap",
            _ => "unknown_violation",
        }
    }
}

/// Tracing configuration, carried by
/// [`ClusterConfig`](crate::cluster::ClusterConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether the runtime emits events at all.
    pub enabled: bool,
    /// Capacity (events) of each per-lane ring. Zero keeps the drop
    /// accounting but retains no events.
    pub ring_capacity: usize,
}

impl TraceConfig {
    /// Default per-lane ring capacity: 64 Ki events (~3 MiB per lane).
    pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

    /// Tracing off (the default): emission sites fold to one branch.
    pub fn disabled() -> Self {
        TraceConfig {
            enabled: false,
            ring_capacity: 0,
        }
    }

    /// Tracing on with the default ring capacity.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            ring_capacity: Self::DEFAULT_RING_CAPACITY,
        }
    }

    /// Sets the per-lane ring capacity in events.
    pub fn ring_capacity(mut self, events: usize) -> Self {
        self.ring_capacity = events;
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::disabled()
    }
}

/// What one trace event describes. Span kinds carry a duration; instant
/// kinds mark a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// One §IV algorithm step (`a` = interned name id). Span.
    Step,
    /// One barrier crossing, enter→leave (`a` = per-machine barrier
    /// index, matching across machines in SPMD order). Span.
    Barrier,
    /// One task-manager task (`a` = caller-supplied label, e.g. the
    /// destination of an exchange send task; `b` = task index). Span.
    Task,
    /// The exchange receive loop, first wait→ledger close. Span.
    RecvLoop,
    /// A request buffer flushed a chunk (`a` = dst, `b` = payload bytes).
    ChunkFlush,
    /// A chunk entered the fabric (`a` = dst, `b` = wire bytes).
    ChunkSend,
    /// A chunk arrived at this machine (`a` = src, `b` = payload bytes).
    ChunkRecv,
    /// A chunk was memcpy-placed (`a` = element offset, `b` = bytes).
    ChunkPlace,
    /// A pool acquisition served from recycled memory (`a` = bytes).
    PoolHit,
    /// A pool acquisition that allocated fresh memory (`a` = bytes).
    PoolMiss,
    /// A protocol-checker verdict (`a` = [`violation`] code), emitted
    /// just before the checker panics.
    Checker,
    /// One local-sort phase within a step (`a` = interned name id,
    /// `b` = kind-specific detail in nanoseconds for aggregated notes).
    /// Span when emitted via `span_since`, instant for accumulated notes.
    SortPhase,
}

impl EventKind {
    fn as_u64(self) -> u64 {
        match self {
            EventKind::Step => 1,
            EventKind::Barrier => 2,
            EventKind::Task => 3,
            EventKind::RecvLoop => 4,
            EventKind::ChunkFlush => 5,
            EventKind::ChunkSend => 6,
            EventKind::ChunkRecv => 7,
            EventKind::ChunkPlace => 8,
            EventKind::PoolHit => 9,
            EventKind::PoolMiss => 10,
            EventKind::Checker => 11,
            EventKind::SortPhase => 12,
        }
    }

    fn from_u64(v: u64) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::Step,
            2 => EventKind::Barrier,
            3 => EventKind::Task,
            4 => EventKind::RecvLoop,
            5 => EventKind::ChunkFlush,
            6 => EventKind::ChunkSend,
            7 => EventKind::ChunkRecv,
            8 => EventKind::ChunkPlace,
            9 => EventKind::PoolHit,
            10 => EventKind::PoolMiss,
            11 => EventKind::Checker,
            12 => EventKind::SortPhase,
            _ => return None,
        })
    }

    /// Whether this kind is a span (has a meaningful duration).
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::Step
                | EventKind::Barrier
                | EventKind::Task
                | EventKind::RecvLoop
                | EventKind::SortPhase
        )
    }

    /// Stable lowercase label (JSONL `kind` field, Chrome fallback name).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Step => "step",
            EventKind::Barrier => "barrier",
            EventKind::Task => "task",
            EventKind::RecvLoop => "recv_loop",
            EventKind::ChunkFlush => "chunk_flush",
            EventKind::ChunkSend => "chunk_send",
            EventKind::ChunkRecv => "chunk_recv",
            EventKind::ChunkPlace => "chunk_place",
            EventKind::PoolHit => "pool_hit",
            EventKind::PoolMiss => "pool_miss",
            EventKind::Checker => "checker",
            EventKind::SortPhase => "sort_phase",
        }
    }

    /// Chrome trace category.
    fn category(self) -> &'static str {
        match self {
            EventKind::Step => "step",
            EventKind::Barrier => "barrier",
            EventKind::Task | EventKind::RecvLoop => "exchange",
            EventKind::ChunkFlush
            | EventKind::ChunkSend
            | EventKind::ChunkRecv
            | EventKind::ChunkPlace => "chunk",
            EventKind::PoolHit | EventKind::PoolMiss => "pool",
            EventKind::Checker => "checker",
            EventKind::SortPhase => "step",
        }
    }

    /// Names for the `a`/`b` payloads in exported args.
    fn arg_names(self) -> (&'static str, &'static str) {
        match self {
            EventKind::Step => ("name_id", "unused"),
            EventKind::Barrier => ("barrier_index", "unused"),
            EventKind::Task => ("label", "task_index"),
            EventKind::RecvLoop => ("expected_elems", "unused"),
            EventKind::ChunkFlush | EventKind::ChunkSend => ("dst", "bytes"),
            EventKind::ChunkRecv => ("src", "bytes"),
            EventKind::ChunkPlace => ("offset", "bytes"),
            EventKind::PoolHit | EventKind::PoolMiss => ("bytes", "unused"),
            EventKind::Checker => ("violation", "unused"),
            EventKind::SortPhase => ("name_id", "detail_ns"),
        }
    }
}

/// One recorded event: a span (`dur_ns > 0` or a span [`EventKind`]) or an
/// instant, on machine `machine`, lane `lane`, with two kind-specific
/// payload words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the cluster's trace epoch (span start time).
    pub t_ns: u64,
    /// Span duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Machine id.
    pub machine: u32,
    /// Lane: 0 = mainline thread, 1.. = worker/destination lanes.
    pub lane: u32,
    /// Event kind.
    pub kind: EventKind,
    /// First payload word (meaning depends on `kind`).
    pub a: u64,
    /// Second payload word (meaning depends on `kind`).
    pub b: u64,
}

impl TraceEvent {
    fn encode(&self) -> [u64; 6] {
        [
            self.t_ns,
            self.dur_ns,
            (u64::from(self.machine) << 32) | u64::from(self.lane),
            self.kind.as_u64(),
            self.a,
            self.b,
        ]
    }

    fn decode(words: &[u64; 6]) -> Option<TraceEvent> {
        Some(TraceEvent {
            t_ns: words[0],
            dur_ns: words[1],
            machine: (words[2] >> 32) as u32,
            lane: (words[2] & 0xffff_ffff) as u32,
            kind: EventKind::from_u64(words[3])?,
            a: words[4],
            b: words[5],
        })
    }

    /// End time of the event (`t_ns + dur_ns`).
    pub fn end_ns(&self) -> u64 {
        self.t_ns.saturating_add(self.dur_ns)
    }
}

/// One ring slot: a seqlock-style version word plus the encoded event.
///
/// Version protocol (`seq` = the event's global sequence number):
/// `0` = never written, `2*seq + 1` = a writer for `seq` is mid-write,
/// `2*seq + 2` = the event for `seq` is published. Writers claim a slot
/// by CAS from an even (quiescent) version to their odd one, so payload
/// writes are exclusive; readers validate the version around their copy.
struct Slot {
    version: AtomicU64,
    words: [AtomicU64; 6],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// Snapshot returned by [`TraceRing::drain`].
#[derive(Debug, Clone)]
pub struct RingDrain {
    /// Events recovered, oldest first.
    pub events: Vec<TraceEvent>,
    /// Total events ever emitted to the ring (including dropped ones).
    pub emitted: u64,
}

impl RingDrain {
    /// Events lost to overwrite (oldest-dropped) or skipped mid-write.
    pub fn dropped(&self) -> u64 {
        self.emitted.saturating_sub(self.events.len() as u64)
    }
}

/// A lock-free fixed-capacity MPMC event ring with oldest-overwritten
/// overflow. Built entirely from [`crate::sync::atomic`]; see the module
/// docs for the slot protocol and `tests/loom_trace.rs` for the model
/// check of the emit/drain handoff.
pub struct TraceRing {
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl TraceRing {
    /// A ring retaining up to `capacity` events. Capacity 0 counts
    /// emissions but retains nothing.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::new()).collect(),
        }
    }

    /// Retention capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever emitted (including overwritten ones).
    pub fn emitted(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Records `ev`, overwriting the oldest retained event when full.
    /// Never blocks beyond waiting out another writer's seven stores to
    /// the same (lapped) slot.
    pub fn emit(&self, ev: TraceEvent) {
        // analyze: allow(atomics-ordering): monotone slot-claim counter on
        // a single-writer ring — the event payload is published by the
        // per-slot seqlock version `store(Release)` below, never by
        // `head`; `head` only sizes reader snapshots.
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let cap = self.slots.len();
        if cap == 0 {
            return;
        }
        let slot = &self.slots[(seq % cap as u64) as usize];
        let begin = seq * 2 + 1;
        let end = begin + 1;
        loop {
            let v = slot.version.load(Ordering::Acquire);
            if v >= end {
                // A writer with a newer sequence already owns this slot:
                // our event is the older of the two, so it is the one the
                // oldest-dropped policy discards (head still counts it).
                return;
            }
            if v % 2 == 1 {
                // An older writer is mid-publish; let it finish.
                thread::yield_now();
                continue;
            }
            if slot
                .version
                .compare_exchange(v, begin, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
        // Exclusive until the version flips even again: only the writer
        // that installed `begin` stores the payload.
        let words = ev.encode();
        for (w, &val) in slot.words.iter().zip(words.iter()) {
            w.store(val, Ordering::Release);
        }
        slot.version.store(end, Ordering::Release);
    }

    /// Snapshot of the retained events, oldest first, with the emission
    /// total. Safe to call while producers are still emitting: slots
    /// mid-write (or overwritten during the copy) are skipped and show up
    /// in the drop count instead of as torn events.
    pub fn drain(&self) -> RingDrain {
        let emitted = self.head.load(Ordering::Acquire);
        let mut tagged: Vec<(u64, TraceEvent)> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 == 0 || v1 % 2 == 1 {
                continue;
            }
            let mut words = [0u64; 6];
            for (out, w) in words.iter_mut().zip(slot.words.iter()) {
                *out = w.load(Ordering::Acquire);
            }
            let v2 = slot.version.load(Ordering::Acquire);
            if v1 != v2 {
                continue; // overwritten mid-copy
            }
            let seq = v1 / 2 - 1;
            if let Some(ev) = TraceEvent::decode(&words) {
                tagged.push((seq, ev));
            }
        }
        tagged.sort_unstable_by_key(|(seq, _)| *seq);
        RingDrain {
            events: tagged.into_iter().map(|(_, e)| e).collect(),
            emitted,
        }
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("emitted", &self.emitted())
            .finish()
    }
}

/// Cluster-shared intern table for step names (step spans carry a name id
/// in their `a` payload so ring slots stay fixed-size POD).
#[derive(Default)]
struct NameTable {
    names: Mutex<Vec<&'static str>>,
}

impl NameTable {
    fn intern(&self, name: &'static str) -> u64 {
        let mut names = self.names.lock();
        if let Some(i) = names.iter().position(|n| *n == name) {
            return i as u64;
        }
        names.push(name);
        (names.len() - 1) as u64
    }

    fn snapshot(&self) -> Vec<String> {
        self.names.lock().iter().map(|n| n.to_string()).collect()
    }
}

/// One machine's trace sink: per-lane event rings on the cluster's
/// unified clock. Shared by `Arc` between the machine's mainline thread,
/// its send workers, its comm sender clones, its chunk pool, and the
/// protocol checker.
pub struct MachineTrace {
    machine: u32,
    epoch: Instant,
    rings: Vec<TraceRing>,
    names: Arc<NameTable>,
    barrier_seq: AtomicU64,
}

impl MachineTrace {
    /// Nanoseconds since the cluster's trace epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// This sink's machine id.
    pub fn machine(&self) -> u32 {
        self.machine
    }

    /// Interns a step name, returning the id step spans carry.
    pub fn intern(&self, name: &'static str) -> u64 {
        self.names.intern(name)
    }

    /// The next barrier index on this machine (SPMD order makes index `k`
    /// the same barrier on every machine).
    pub fn next_barrier_index(&self) -> u64 {
        // analyze: allow(atomics-ordering): per-machine label counter —
        // SPMD order makes index `k` the same barrier everywhere; no data
        // is published through it.
        self.barrier_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Emits an instant event at the current time.
    pub fn instant(&self, lane: u32, kind: EventKind, a: u64, b: u64) {
        self.emit(TraceEvent {
            t_ns: self.now_ns(),
            dur_ns: 0,
            machine: self.machine,
            lane,
            kind,
            a,
            b,
        });
    }

    /// Emits a span that started at `start_ns` (from [`now_ns`]) and ends
    /// now.
    ///
    /// [`now_ns`]: MachineTrace::now_ns
    pub fn span_since(&self, lane: u32, kind: EventKind, start_ns: u64, a: u64, b: u64) {
        self.emit(TraceEvent {
            t_ns: start_ns,
            dur_ns: self.now_ns().saturating_sub(start_ns),
            machine: self.machine,
            lane,
            kind,
            a,
            b,
        });
    }

    /// Emits a fully formed event (lane routing: `lane % ring count`).
    pub fn emit(&self, ev: TraceEvent) {
        let ring = &self.rings[ev.lane as usize % self.rings.len()];
        ring.emit(ev);
    }
}

impl std::fmt::Debug for MachineTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MachineTrace")
            .field("machine", &self.machine)
            .field("lanes", &self.rings.len())
            .finish()
    }
}

/// The cluster-level collector: owns one [`MachineTrace`] per machine and
/// merges their rings into a [`TraceLog`] after (or during) a run.
pub struct TraceCollector {
    config: TraceConfig,
    machines: Vec<Arc<MachineTrace>>,
}

impl TraceCollector {
    /// A collector for `machines` machines with `lanes` rings each
    /// (lane 0 = mainline, 1.. = workers), sharing one epoch and name
    /// table. The epoch is `Instant::now()` at construction.
    pub fn new(machines: usize, lanes: usize, config: TraceConfig) -> Self {
        let epoch = Instant::now();
        let names = Arc::new(NameTable::default());
        let lanes = lanes.max(1);
        TraceCollector {
            config,
            machines: (0..machines)
                .map(|m| {
                    Arc::new(MachineTrace {
                        machine: m as u32,
                        epoch,
                        rings: (0..lanes)
                            .map(|_| TraceRing::new(config.ring_capacity))
                            .collect(),
                        names: names.clone(),
                        barrier_seq: AtomicU64::new(0),
                    })
                })
                .collect(),
        }
    }

    /// The sink for machine `id`.
    pub fn machine(&self, id: usize) -> Arc<MachineTrace> {
        self.machines[id].clone()
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    /// Drains every ring and merges the events on the unified clock.
    pub fn collect(&self) -> TraceLog {
        let mut events = Vec::new();
        let mut emitted = 0u64;
        let mut per_machine_dropped = vec![0u64; self.machines.len()];
        for (m, mt) in self.machines.iter().enumerate() {
            for ring in &mt.rings {
                let drained = ring.drain();
                emitted += drained.emitted;
                per_machine_dropped[m] += drained.dropped();
                events.extend(drained.events);
            }
        }
        events.sort_by_key(|e| (e.t_ns, e.machine, e.lane));
        let dropped = per_machine_dropped.iter().sum();
        let names = self
            .machines
            .first()
            .map(|mt| mt.names.snapshot())
            .unwrap_or_default();
        TraceLog {
            machines: self.machines.len(),
            ring_capacity: self.config.ring_capacity,
            events,
            names,
            emitted,
            dropped,
            per_machine_dropped,
        }
    }
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector")
            .field("machines", &self.machines.len())
            .field("config", &self.config)
            .finish()
    }
}

/// One row of the per-machine step Gantt view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GanttRow {
    /// Machine id.
    pub machine: u32,
    /// Step name.
    pub name: String,
    /// Span start, ns since the trace epoch.
    pub start_ns: u64,
    /// Span duration in ns.
    pub dur_ns: u64,
}

/// A merged, clock-unified event log for one cluster run, with exporters
/// and derived analytics.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// Number of machines in the traced cluster.
    pub machines: usize,
    /// Per-lane ring capacity the run used.
    pub ring_capacity: usize,
    /// All recovered events, sorted by start time.
    pub events: Vec<TraceEvent>,
    /// Interned step names (`Step` events index this with `a`).
    pub names: Vec<String>,
    /// Total events emitted across all rings.
    pub emitted: u64,
    /// Events lost to ring overflow (oldest-dropped) or concurrent drain.
    pub dropped: u64,
    /// Drop counts per machine.
    pub per_machine_dropped: Vec<u64>,
}

impl TraceLog {
    /// Display name of an event: the interned step name for step spans,
    /// a destination-qualified label for tasks, the violation label for
    /// checker instants, the kind label otherwise.
    pub fn event_name(&self, ev: &TraceEvent) -> String {
        match ev.kind {
            EventKind::Step | EventKind::SortPhase => self
                .names
                .get(ev.a as usize)
                .cloned()
                .unwrap_or_else(|| format!("step#{}", ev.a)),
            EventKind::Task => format!("send→{}", ev.a),
            EventKind::Checker => format!("checker:{}", violation::label(ev.a)),
            k => k.label().to_string(),
        }
    }

    /// The run's step spans as Gantt rows, in event order.
    pub fn step_gantt(&self) -> Vec<GanttRow> {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Step)
            .map(|e| GanttRow {
                machine: e.machine,
                name: self.event_name(e),
                start_ns: e.t_ns,
                dur_ns: e.dur_ns,
            })
            .collect()
    }

    /// Per-machine exchange overlap ratio: the time a machine spent both
    /// sending (a [`EventKind::Task`] span live) *and* receiving
    /// ([`EventKind::RecvLoop`] span live), over the time it spent doing
    /// either. `> 0` demonstrates §IV-C send-while-receive; `0` for
    /// machines with no exchange activity.
    pub fn exchange_overlap_ratios(&self) -> Vec<f64> {
        (0..self.machines as u32)
            .map(|m| {
                let send = union_intervals(self.spans_of(m, EventKind::Task));
                let recv = union_intervals(self.spans_of(m, EventKind::RecvLoop));
                let both = intersect_len(&send, &recv);
                let either = union_len(&send, &recv);
                if either == 0 {
                    0.0
                } else {
                    both as f64 / either as f64
                }
            })
            .collect()
    }

    /// Barrier wait skew: for each barrier index `k`, the spread between
    /// the first and the last machine *arriving* at it (max enter − min
    /// enter, ns). Sorted by index.
    pub fn barrier_skews(&self) -> Vec<(u64, u64)> {
        let mut arrivals: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for e in self.events.iter().filter(|e| e.kind == EventKind::Barrier) {
            let entry = arrivals.entry(e.a).or_insert((u64::MAX, 0));
            entry.0 = entry.0.min(e.t_ns);
            entry.1 = entry.1.max(e.t_ns);
        }
        arrivals
            .into_iter()
            .map(|(k, (min, max))| (k, max.saturating_sub(min)))
            .collect()
    }

    /// Per-`(src, dst)` cumulative byte timelines from
    /// [`EventKind::ChunkSend`] events: each point is `(t_ns, cumulative
    /// bytes src has sent to dst)`.
    pub fn per_destination_byte_timelines(&self) -> BTreeMap<(u32, u32), Vec<(u64, u64)>> {
        let mut out: BTreeMap<(u32, u32), Vec<(u64, u64)>> = BTreeMap::new();
        for e in self.events.iter().filter(|e| e.kind == EventKind::ChunkSend) {
            let series = out.entry((e.machine, e.a as u32)).or_default();
            let cum = series.last().map(|&(_, c)| c).unwrap_or(0) + e.b;
            series.push((e.t_ns, cum));
        }
        out
    }

    /// Spans of `kind` on machine `m` as `(start, end)` ns intervals.
    fn spans_of(&self, m: u32, kind: EventKind) -> Vec<(u64, u64)> {
        self.events
            .iter()
            .filter(|e| e.machine == m && e.kind == kind && e.dur_ns > 0)
            .map(|e| (e.t_ns, e.end_ns()))
            .collect()
    }

    /// Exports the Chrome `trace_event` JSON format (the "JSON Array
    /// wrapped in an object" flavor), loadable in `chrome://tracing` and
    /// Perfetto: spans as `ph:"X"` complete events, instants as `ph:"i"`,
    /// `pid` = machine, `tid` = lane, timestamps in microseconds.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 160 + 1024);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let push = |s: String, out: &mut String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
        };
        for m in 0..self.machines {
            push(
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{m},\"tid\":0,\
                     \"args\":{{\"name\":\"machine {m}\"}}}}"
                ),
                &mut out,
                &mut first,
            );
        }
        for ev in &self.events {
            let name = escape_json(&self.event_name(ev));
            let (an, bn) = ev.kind.arg_names();
            let args = format!("{{\"{an}\":{},\"{bn}\":{}}}", ev.a, ev.b);
            let ts = ev.t_ns as f64 / 1000.0;
            let line = if ev.kind.is_span() {
                let dur = ev.dur_ns as f64 / 1000.0;
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts:.3},\
                     \"dur\":{dur:.3},\"pid\":{},\"tid\":{},\"args\":{args}}}",
                    ev.kind.category(),
                    ev.machine,
                    ev.lane,
                )
            } else {
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts:.3},\"pid\":{},\"tid\":{},\"args\":{args}}}",
                    ev.kind.category(),
                    ev.machine,
                    ev.lane,
                )
            };
            push(line, &mut out, &mut first);
        }
        out.push_str("]}");
        out
    }

    /// Exports one JSON object per line (compact machine-readable log).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 120);
        for ev in &self.events {
            let (an, bn) = ev.kind.arg_names();
            out.push_str(&format!(
                "{{\"t_ns\":{},\"dur_ns\":{},\"machine\":{},\"lane\":{},\
                 \"kind\":\"{}\",\"name\":\"{}\",\"{an}\":{},\"{bn}\":{}}}\n",
                ev.t_ns,
                ev.dur_ns,
                ev.machine,
                ev.lane,
                ev.kind.label(),
                escape_json(&self.event_name(ev)),
                ev.a,
                ev.b,
            ));
        }
        out
    }

    /// Events of a given kind (convenience for validations).
    pub fn events_of_kind(&self, kind: EventKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Merges overlapping `(start, end)` intervals.
fn union_intervals(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(v.len());
    for (s, e) in v {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of the intersection of two merged interval lists.
fn intersect_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Total length of the union of two merged interval lists.
fn union_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let merged = union_intervals(a.iter().chain(b.iter()).copied().collect());
    merged.iter().map(|(s, e)| e - s).sum()
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn ev(t: u64, a: u64) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            dur_ns: 0,
            machine: 0,
            lane: 0,
            kind: EventKind::ChunkSend,
            a,
            b: 10_000 - a,
        }
    }

    #[test]
    fn ring_roundtrips_events_in_order() {
        let ring = TraceRing::new(8);
        for i in 0..5 {
            ring.emit(ev(i * 10, i));
        }
        let d = ring.drain();
        assert_eq!(d.emitted, 5);
        assert_eq!(d.dropped(), 0);
        assert_eq!(d.events.len(), 5);
        for (i, e) in d.events.iter().enumerate() {
            assert_eq!(e.a, i as u64);
            assert_eq!(e.b, 10_000 - i as u64);
        }
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let ring = TraceRing::new(4);
        for i in 0..10 {
            ring.emit(ev(i, i));
        }
        let d = ring.drain();
        assert_eq!(d.emitted, 10);
        assert_eq!(d.events.len(), 4);
        assert_eq!(d.dropped(), 6);
        // The survivors are exactly the newest four, oldest first.
        let kept: Vec<u64> = d.events.iter().map(|e| e.a).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn zero_capacity_ring_counts_but_retains_nothing() {
        let ring = TraceRing::new(0);
        for i in 0..3 {
            ring.emit(ev(i, i));
        }
        let d = ring.drain();
        assert_eq!(d.emitted, 3);
        assert!(d.events.is_empty());
        assert_eq!(d.dropped(), 3);
    }

    #[test]
    fn concurrent_emitters_never_produce_torn_events() {
        // 4 threads × 500 events into a 64-slot ring: heavy overwrite
        // traffic. Every drained event must have a coherent (a, b) pair.
        let ring = std::sync::Arc::new(TraceRing::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = ring.clone();
                s.spawn(move || {
                    for i in 0..500 {
                        ring.emit(ev(i, t * 500 + i));
                    }
                });
            }
        });
        let d = ring.drain();
        assert_eq!(d.emitted, 2000);
        assert_eq!(d.events.len(), 64);
        for e in &d.events {
            assert_eq!(e.b, 10_000 - e.a, "torn event: a={} b={}", e.a, e.b);
        }
    }

    #[test]
    fn drain_while_emitting_is_coherent() {
        let ring = std::sync::Arc::new(TraceRing::new(16));
        std::thread::scope(|s| {
            let r2 = ring.clone();
            s.spawn(move || {
                for i in 0..2000 {
                    r2.emit(ev(i, i % 500));
                }
            });
            for _ in 0..50 {
                for e in &ring.drain().events {
                    assert_eq!(e.b, 10_000 - e.a, "torn event under concurrent drain");
                }
            }
        });
    }

    #[test]
    fn collector_merges_machines_on_one_clock() {
        let c = TraceCollector::new(2, 2, TraceConfig::enabled().ring_capacity(16));
        let m0 = c.machine(0);
        let m1 = c.machine(1);
        let id = m0.intern("local_sort");
        assert_eq!(m1.intern("local_sort"), id, "name table is shared");
        m0.instant(LANE_MAIN, EventKind::PoolMiss, 64, 0);
        m1.instant(1, EventKind::PoolHit, 128, 0);
        let start = m0.now_ns();
        m0.span_since(LANE_MAIN, EventKind::Step, start, id, 0);
        let log = c.collect();
        assert_eq!(log.machines, 2);
        assert_eq!(log.events.len(), 3);
        assert_eq!(log.dropped, 0);
        assert_eq!(log.names, vec!["local_sort"]);
        let gantt = log.step_gantt();
        assert_eq!(gantt.len(), 1);
        assert_eq!(gantt[0].name, "local_sort");
        // Sorted on the unified clock.
        assert!(log.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn chrome_export_shapes_spans_and_instants() {
        let c = TraceCollector::new(1, 1, TraceConfig::enabled().ring_capacity(8));
        let m = c.machine(0);
        let id = m.intern("exchange");
        m.emit(TraceEvent {
            t_ns: 1000,
            dur_ns: 2000,
            machine: 0,
            lane: 0,
            kind: EventKind::Step,
            a: id,
            b: 0,
        });
        m.instant(LANE_MAIN, EventKind::ChunkSend, 3, 4096);
        let json = c.collect().to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"exchange\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"dst\":3,\"bytes\":4096"));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let c = TraceCollector::new(1, 1, TraceConfig::enabled().ring_capacity(8));
        let m = c.machine(0);
        m.instant(LANE_MAIN, EventKind::PoolHit, 256, 0);
        m.instant(LANE_MAIN, EventKind::PoolMiss, 512, 0);
        let jsonl = c.collect().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
            assert!(l.contains("\"kind\":\"pool_"));
        }
    }

    #[test]
    fn overlap_ratio_from_synthetic_spans() {
        let mk = |kind, t, d| TraceEvent {
            t_ns: t,
            dur_ns: d,
            machine: 0,
            lane: 0,
            kind,
            a: 0,
            b: 0,
        };
        let log = TraceLog {
            machines: 2,
            events: vec![
                // Machine 0: send [0,100), recv [50,150): both during
                // [50,100) = 50; either = 150.
                mk(EventKind::Task, 0, 100),
                mk(EventKind::RecvLoop, 50, 100),
            ],
            ..Default::default()
        };
        let ratios = log.exchange_overlap_ratios();
        assert!((ratios[0] - 50.0 / 150.0).abs() < 1e-9);
        assert_eq!(ratios[1], 0.0, "machine with no exchange activity");
    }

    #[test]
    fn barrier_skew_spreads_arrivals() {
        let mk = |m, t| TraceEvent {
            t_ns: t,
            dur_ns: 5,
            machine: m,
            lane: 0,
            kind: EventKind::Barrier,
            a: 0,
            b: 0,
        };
        let log = TraceLog {
            machines: 3,
            events: vec![mk(0, 100), mk(1, 170), mk(2, 130)],
            ..Default::default()
        };
        assert_eq!(log.barrier_skews(), vec![(0, 70)]);
    }

    #[test]
    fn byte_timelines_accumulate_per_destination() {
        let mk = |t, dst, bytes| TraceEvent {
            t_ns: t,
            dur_ns: 0,
            machine: 0,
            lane: 0,
            kind: EventKind::ChunkSend,
            a: dst,
            b: bytes,
        };
        let log = TraceLog {
            machines: 2,
            events: vec![mk(10, 1, 100), mk(20, 1, 50), mk(15, 2, 7)],
            ..Default::default()
        };
        let tl = log.per_destination_byte_timelines();
        assert_eq!(tl[&(0, 1)], vec![(10, 100), (20, 150)]);
        assert_eq!(tl[&(0, 2)], vec![(15, 7)]);
    }

    #[test]
    fn interval_math() {
        assert_eq!(
            union_intervals(vec![(5, 10), (0, 6), (20, 30)]),
            vec![(0, 10), (20, 30)]
        );
        assert_eq!(intersect_len(&[(0, 10)], &[(5, 20)]), 5);
        assert_eq!(intersect_len(&[(0, 5)], &[(5, 10)]), 0);
        assert_eq!(union_len(&[(0, 10)], &[(5, 20), (30, 40)]), 30);
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn event_kind_codes_roundtrip() {
        for k in [
            EventKind::Step,
            EventKind::Barrier,
            EventKind::Task,
            EventKind::RecvLoop,
            EventKind::ChunkFlush,
            EventKind::ChunkSend,
            EventKind::ChunkRecv,
            EventKind::ChunkPlace,
            EventKind::PoolHit,
            EventKind::PoolMiss,
            EventKind::Checker,
            EventKind::SortPhase,
        ] {
            assert_eq!(EventKind::from_u64(k.as_u64()), Some(k));
        }
        assert_eq!(EventKind::from_u64(0), None);
        assert_eq!(EventKind::from_u64(999), None);
    }

    #[test]
    fn sort_phase_spans_resolve_names_but_stay_off_step_gantt() {
        let c = TraceCollector::new(1, 1, TraceConfig::enabled().ring_capacity(8));
        let m = c.machine(0);
        let step_id = m.intern("local_sort");
        let phase_id = m.intern("local.classify");
        let t0 = m.now_ns();
        m.span_since(LANE_MAIN, EventKind::SortPhase, t0, phase_id, 0);
        m.span_since(LANE_MAIN, EventKind::Step, t0, step_id, 0);
        m.instant(LANE_MAIN, EventKind::SortPhase, phase_id, 1234);
        let log = c.collect();
        assert_eq!(log.events.len(), 3);
        let phase_spans: Vec<&TraceEvent> = log
            .events
            .iter()
            .filter(|e| e.kind == EventKind::SortPhase)
            .collect();
        assert_eq!(phase_spans.len(), 2);
        for e in &phase_spans {
            assert_eq!(log.event_name(e), "local.classify");
        }
        // The step Gantt view stays a pure §IV step view.
        let gantt = log.step_gantt();
        assert_eq!(gantt.len(), 1);
        assert_eq!(gantt[0].name, "local_sort");
        // Instants carry the aggregated nanoseconds in the detail payload.
        let note = log
            .events
            .iter()
            .find(|e| e.kind == EventKind::SortPhase && e.dur_ns == 0)
            .expect("phase note present");
        assert_eq!(note.b, 1234);
    }
}
