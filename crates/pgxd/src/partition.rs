//! Graph loading and partitioning (§III, data manager).
//!
//! PGX.D's data manager distributes graph data at load time with two
//! mechanisms the paper credits for its low communication overhead and
//! balanced workloads:
//!
//! - **Ghost-node selection** — high in-degree vertices are replicated on
//!   every machine ("ghosts"), so the many edges pointing at them stop
//!   being cross-machine edges. On power-law graphs a handful of ghosts
//!   removes a large share of crossing edges.
//! - **Edge chunking** — each machine's edge set is cut into chunks of
//!   (almost) equal edge count for the task manager, *splitting the edge
//!   lists of high-degree vertices across chunks* so one hub vertex
//!   cannot serialize a worker.
//!
//! The distributed sort itself only needs key arrays, but the library is
//! a graph library first: the Fig. 8 experiment and the graph examples
//! load R-MAT data through this path.

use crate::csr::Csr;

/// Partitioning knobs.
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Number of machines.
    pub machines: usize,
    /// Vertices whose in-degree is at least this fraction of the total
    /// edge count become ghosts (replicated everywhere). PGX.D uses a
    /// degree-based cutoff; 0.001 (0.1% of all edges) is a reasonable
    /// default for power-law graphs.
    pub ghost_in_degree_fraction: f64,
    /// Target edges per task chunk.
    pub chunk_target_edges: usize,
}

impl PartitionConfig {
    /// Defaults for `machines` machines.
    pub fn new(machines: usize) -> Self {
        PartitionConfig {
            machines,
            ghost_in_degree_fraction: 0.001,
            chunk_target_edges: 4096,
        }
    }

    /// Sets the ghost in-degree cutoff fraction.
    pub fn ghost_fraction(mut self, fraction: f64) -> Self {
        self.ghost_in_degree_fraction = fraction;
        self
    }

    /// Sets the target edges per chunk.
    pub fn chunk_edges(mut self, edges: usize) -> Self {
        self.chunk_target_edges = edges.max(1);
        self
    }
}

/// One contiguous piece of a machine's edge set, sized for one task.
/// Covers the half-open local-vertex span `first_vertex..=last_vertex`,
/// starting `edge_offset_in_first` edges into the first vertex's list and
/// ending `edge_end_in_last` edges into the last vertex's list — i.e. a
/// hub's edge list may be split across several chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeChunk {
    /// First local vertex (inclusive).
    pub first_vertex: usize,
    /// Edge offset within `first_vertex`'s adjacency where this chunk
    /// begins.
    pub edge_offset_in_first: usize,
    /// Last local vertex (inclusive).
    pub last_vertex: usize,
    /// Edge offset within `last_vertex`'s adjacency where this chunk ends
    /// (exclusive).
    pub edge_end_in_last: usize,
    /// Total edges in the chunk.
    pub edges: usize,
}

/// One machine's share of a partitioned graph.
#[derive(Debug, Clone)]
pub struct GraphPartition {
    /// The machine owning this partition.
    pub machine: usize,
    /// Owned global vertex ids: `vertex_base..vertex_base + csr.num_vertices()`.
    pub vertex_base: usize,
    /// Local CSR over the owned vertices' out-edges (columns are global
    /// vertex ids).
    pub csr: Csr,
    /// Globally replicated high-in-degree vertices.
    pub ghosts: Vec<u32>,
    /// Out-edges whose destination is neither owned nor a ghost — the
    /// edges that still cost communication.
    pub crossing_edges: usize,
    /// Balanced task chunks over the local edge set.
    pub chunks: Vec<EdgeChunk>,
}

impl GraphPartition {
    /// Number of owned vertices.
    pub fn num_owned(&self) -> usize {
        self.csr.num_vertices()
    }

    /// `true` if this machine owns global vertex `v`.
    pub fn owns(&self, v: usize) -> bool {
        v >= self.vertex_base && v < self.vertex_base + self.num_owned()
    }
}

/// Partitions `edges` over `num_vertices` vertices across the machines in
/// `config`: contiguous even vertex ownership, ghost selection by global
/// in-degree, per-machine CSR construction, and edge chunking.
pub fn partition_graph(
    num_vertices: usize,
    edges: &[(u32, u32)],
    config: &PartitionConfig,
) -> Vec<GraphPartition> {
    let p = config.machines.max(1);

    // Global in-degrees for ghost selection.
    let mut in_degree = vec![0u64; num_vertices];
    for &(_, dst) in edges {
        in_degree[dst as usize] += 1;
    }
    let cutoff = ((edges.len() as f64) * config.ghost_in_degree_fraction).max(1.0) as u64;
    let ghosts: Vec<u32> = (0..num_vertices)
        .filter(|&v| in_degree[v] >= cutoff)
        .map(|v| v as u32)
        .collect();
    let ghost_set: std::collections::HashSet<u32> = ghosts.iter().copied().collect();

    // Contiguous even vertex ownership.
    let base = num_vertices / p;
    let extra = num_vertices % p;
    let mut starts = Vec::with_capacity(p + 1);
    starts.push(0usize);
    for m in 0..p {
        starts.push(starts[m] + base + usize::from(m < extra));
    }
    let owner_of = |v: usize| -> usize {
        // Binary search over the p+1 boundaries.
        match starts.binary_search(&v) {
            Ok(i) => i.min(p - 1),
            Err(i) => i - 1,
        }
    };

    // Bucket edges by the owner of their source vertex.
    let mut per_machine_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); p];
    for &(src, dst) in edges {
        per_machine_edges[owner_of(src as usize)].push((src, dst));
    }

    per_machine_edges
        .into_iter()
        .enumerate()
        .map(|(m, mut local_edges)| {
            let vertex_base = starts[m];
            let owned = starts[m + 1] - vertex_base;
            // Rebase sources to local ids for the local CSR.
            for e in &mut local_edges {
                e.0 -= vertex_base as u32;
            }
            let csr = Csr::from_edges(owned, &local_edges);
            let crossing_edges = local_edges
                .iter()
                .filter(|&&(_, dst)| {
                    let d = dst as usize;
                    let remote = d < vertex_base || d >= starts[m + 1];
                    remote && !ghost_set.contains(&dst)
                })
                .count();
            let chunks = chunk_edges(&csr, config.chunk_target_edges);
            GraphPartition {
                machine: m,
                vertex_base,
                csr,
                ghosts: ghosts.clone(),
                crossing_edges,
                chunks,
            }
        })
        .collect()
}

/// Cuts a CSR's edge set into chunks of at most `target` edges, splitting
/// within a vertex's adjacency when needed (the §III edge chunking that
/// keeps hub vertices from serializing one worker).
pub fn chunk_edges(csr: &Csr, target: usize) -> Vec<EdgeChunk> {
    let target = target.max(1);
    let mut chunks = Vec::new();
    let n = csr.num_vertices();
    let mut v = 0usize;
    let mut off = 0usize; // edge offset within v's adjacency
    while v < n {
        // Skip leading exhausted vertices.
        if off >= csr.degree(v) {
            v += 1;
            off = 0;
            continue;
        }
        let first_vertex = v;
        let edge_offset_in_first = off;
        let mut remaining = target;
        let mut last_vertex = v;
        let mut edge_end_in_last = off;
        let mut edges_taken = 0usize;
        while v < n && remaining > 0 {
            let avail = csr.degree(v) - off;
            if avail == 0 {
                // Zero-degree (or exhausted) vertex: skip without
                // extending the chunk's bounds.
                v += 1;
                off = 0;
                continue;
            }
            let take = avail.min(remaining);
            remaining -= take;
            edges_taken += take;
            last_vertex = v;
            edge_end_in_last = off + take;
            if take == avail {
                v += 1;
                off = 0;
            } else {
                off += take;
            }
        }
        if edges_taken > 0 {
            chunks.push(EdgeChunk {
                first_vertex,
                edge_offset_in_first,
                last_vertex,
                edge_end_in_last,
                edges: edges_taken,
            });
        }
    }
    chunks
}

/// Total crossing edges if *no* ghosts were selected — the baseline the
/// ghost mechanism is measured against.
pub fn crossing_edges_without_ghosts(
    num_vertices: usize,
    edges: &[(u32, u32)],
    machines: usize,
) -> usize {
    let p = machines.max(1);
    let base = num_vertices / p;
    let extra = num_vertices % p;
    let mut starts = Vec::with_capacity(p + 1);
    starts.push(0usize);
    for m in 0..p {
        starts.push(starts[m] + base + usize::from(m < extra));
    }
    let owner_of = |v: usize| -> usize {
        match starts.binary_search(&v) {
            Ok(i) => i.min(p - 1),
            Err(i) => i - 1,
        }
    };
    edges
        .iter()
        .filter(|&&(src, dst)| owner_of(src as usize) != owner_of(dst as usize))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A star graph: every vertex points at vertex 0.
    fn star(n: usize) -> Vec<(u32, u32)> {
        (1..n as u32).map(|v| (v, 0)).collect()
    }

    #[test]
    fn partitions_cover_all_vertices_and_edges() {
        let edges = vec![(0u32, 1u32), (1, 2), (2, 3), (3, 0), (5, 2), (7, 7)];
        let parts = partition_graph(8, &edges, &PartitionConfig::new(3));
        assert_eq!(parts.len(), 3);
        let total_vertices: usize = parts.iter().map(|p| p.num_owned()).sum();
        assert_eq!(total_vertices, 8);
        let total_edges: usize = parts.iter().map(|p| p.csr.num_edges()).sum();
        assert_eq!(total_edges, edges.len());
        // Ownership is contiguous and disjoint.
        for w in parts.windows(2) {
            assert_eq!(w[0].vertex_base + w[0].num_owned(), w[1].vertex_base);
        }
    }

    #[test]
    fn ghost_selection_catches_the_hub() {
        let edges = star(1000);
        let config = PartitionConfig::new(4).ghost_fraction(0.01);
        let parts = partition_graph(1000, &edges, &config);
        // Vertex 0 receives 999 of 999 edges: it must be a ghost.
        assert!(parts[0].ghosts.contains(&0));
        // With the hub ghosted, no crossing edges remain.
        assert_eq!(parts.iter().map(|p| p.crossing_edges).sum::<usize>(), 0);
    }

    #[test]
    fn ghosting_reduces_crossing_edges_on_power_law() {
        // Without ghosts the star graph crosses for every edge whose
        // source lives off machine 0.
        let edges = star(1000);
        let before = crossing_edges_without_ghosts(1000, &edges, 4);
        assert!(before > 700, "star should cross heavily: {before}");
        let parts = partition_graph(1000, &edges, &PartitionConfig::new(4).ghost_fraction(0.01));
        let after: usize = parts.iter().map(|p| p.crossing_edges).sum();
        assert!(after < before / 10, "ghosting must cut crossings: {after} vs {before}");
    }

    #[test]
    fn no_ghosts_when_degrees_are_flat() {
        // A ring: every vertex has in-degree 1; with a 1% cutoff over 100
        // edges the cutoff is 1, so everything ghosts — use a higher
        // fraction to show the flat case selects nothing unusual.
        let edges: Vec<(u32, u32)> = (0..100u32).map(|v| (v, (v + 1) % 100)).collect();
        let parts = partition_graph(100, &edges, &PartitionConfig::new(4).ghost_fraction(0.05));
        // cutoff = 5 edges in-degree; nobody qualifies.
        assert!(parts[0].ghosts.is_empty());
    }

    #[test]
    fn chunks_tile_the_edge_set_exactly() {
        let edges = star(500); // all edges from distinct sources
        let parts = partition_graph(500, &edges, &PartitionConfig::new(2).chunk_edges(64));
        for part in &parts {
            let total: usize = part.chunks.iter().map(|c| c.edges).sum();
            assert_eq!(total, part.csr.num_edges());
            for c in &part.chunks {
                assert!(c.edges <= 64);
                assert!(c.first_vertex <= c.last_vertex);
            }
            // Chunks are contiguous: each begins where the previous ended.
            for w in part.chunks.windows(2) {
                let (a, b) = (&w[0], &w[1]);
                if a.edge_end_in_last < part.csr.degree(a.last_vertex) {
                    assert_eq!(b.first_vertex, a.last_vertex);
                    assert_eq!(b.edge_offset_in_first, a.edge_end_in_last);
                } else {
                    assert!(b.first_vertex > a.last_vertex);
                    assert_eq!(b.edge_offset_in_first, 0);
                }
            }
        }
    }

    #[test]
    fn hub_adjacency_splits_across_chunks() {
        // One vertex with 1000 out-edges must split into ~8 chunks of 128.
        let edges: Vec<(u32, u32)> = (0..1000u32).map(|i| (0, i % 64)).collect();
        let parts = partition_graph(64, &edges, &PartitionConfig::new(1).chunk_edges(128));
        let chunks = &parts[0].chunks;
        assert_eq!(chunks.len(), 8);
        assert!(chunks.iter().all(|c| c.edges == 128 || c.edges == 104));
        assert!(chunks.iter().all(|c| c.first_vertex == 0 && c.last_vertex == 0));
        let total: usize = chunks.iter().map(|c| c.edges).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn empty_graph_partitions_cleanly() {
        let parts = partition_graph(10, &[], &PartitionConfig::new(3));
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.csr.num_edges() == 0 && p.chunks.is_empty()));
    }

    #[test]
    fn single_machine_owns_everything() {
        let edges = star(50);
        let parts = partition_graph(50, &edges, &PartitionConfig::new(1));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].num_owned(), 50);
        assert_eq!(parts[0].crossing_edges, 0);
        assert!(parts[0].owns(49));
        assert!(!parts[0].owns(50));
    }

    #[test]
    fn owner_boundaries_are_respected() {
        let edges = vec![(9u32, 0u32)];
        let parts = partition_graph(10, &edges, &PartitionConfig::new(3));
        // 10 vertices over 3 machines: 4, 3, 3 → vertex 9 owned by m2.
        assert_eq!(parts[2].csr.num_edges(), 1);
        assert_eq!(parts[0].csr.num_edges(), 0);
        assert_eq!(parts[0].num_owned(), 4);
        assert_eq!(parts[2].vertex_base, 7);
    }
}
