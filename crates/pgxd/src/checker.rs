//! Debug-mode protocol checker: a per-fabric ledger that turns rare
//! communication races into deterministic panics.
//!
//! The paper's correctness story rests on invariants the type system
//! cannot see: every packet sent is eventually received by a matching
//! tag (§IV-B/§IV-C collective sequence discipline), every pooled chunk
//! released exactly once, and the precomputed write offsets of
//! [`exchange_by_offsets`](crate::machine::MachineCtx::exchange_by_offsets)
//! tiling each destination buffer exactly once (§IV-C). A violation of
//! any of these shows up — if at all — as a rare hang, a corrupted output
//! permutation, or a use-after-free that only Miri notices. This module
//! makes each one a loud panic with machine/tag context, at the moment the
//! fabric can first prove it happened: a [`barrier`] or fabric teardown.
//!
//! One [`ProtocolChecker`] is shared by every machine of a fabric (created
//! inside [`CommManager::fabric`](crate::comm::CommManager::fabric)). The
//! hooks are compiled to no-ops unless `debug_assertions` or the `checker`
//! feature is on — release benchmarks pay nothing, `cargo test` and the
//! CI debug jobs get the full ledger.
//!
//! Quiescence checks run between *two* barrier waits (see
//! [`MachineCtx::barrier`]): after the first wait every machine is parked
//! inside barrier code, so no send or receive can race the ledger scan;
//! the verdict is computed from shared state, so either every machine
//! passes or every machine panics — a failed check can never deadlock the
//! fabric by killing only one member.
//!
//! [`barrier`]: crate::machine::MachineCtx::barrier
//! [`MachineCtx::barrier`]: crate::machine::MachineCtx::barrier

use crate::comm::Tag;
use crate::sync::Mutex;
use crate::trace::{violation, EventKind, MachineTrace, LANE_MAIN};
use std::collections::HashMap;
// std Arc for the same reason as the pool's checker handle: plain shared
// ownership of non-loom-modeled state, handed around as std::sync::Arc.
// The abort flag is a monotonic disarm switch, never a synchronization
// point, so it stays on std atomics like the metrics counters.
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Whether the checker hooks are compiled in. `const`, so the hot-path
/// call sites fold to nothing in release builds without the `checker`
/// feature.
pub const ENABLED: bool = cfg!(any(debug_assertions, feature = "checker"));

/// What one parked pool chunk looks like in the ledger.
#[derive(Debug, Clone, Copy)]
struct ChunkInfo {
    /// Machine whose pool currently owns the allocation.
    machine: usize,
    /// Byte capacity of the allocation.
    cap_bytes: usize,
}

#[derive(Default)]
struct Ledger {
    /// Outstanding packets: `(src, dst, tag) → count` of sent-but-not-yet-
    /// received packets. Entries are removed when the count reaches zero so
    /// the map stays bounded by the number of *in-flight* packets, not the
    /// number ever sent.
    in_flight: HashMap<(usize, usize, Tag), usize>,
    /// Pool chunks checked out of a pool and not yet released, keyed by
    /// allocation address.
    live_chunks: HashMap<usize, ChunkInfo>,
    /// Pool chunks currently parked in a pool free list, keyed by
    /// allocation address — releasing one of these again is the
    /// double-release diagnostic.
    parked_chunks: HashMap<usize, ChunkInfo>,
}

/// Fabric-wide ledger of sends, receives, and pool chunk custody. All
/// hooks are cheap (one mutex, one hash op) and compiled out entirely when
/// [`ENABLED`] is false.
pub struct ProtocolChecker {
    machines: usize,
    ledger: Mutex<Ledger>,
    /// Per-machine trace sinks for traced runs: every verdict below is
    /// emitted as an [`EventKind::Checker`] instant *before* the panic,
    /// so the violation is visible in the exported timeline at the moment
    /// the fabric proved it.
    traces: Mutex<HashMap<usize, Arc<MachineTrace>>>,
    /// Set when the run is aborted (a machine failed or a step timed
    /// out): quiescence checks stand down, because a run that died
    /// mid-exchange legitimately strands packets and chunk custody. The
    /// stranded state is still reported — as
    /// [`RunError::residual`](crate::fault::RunError) via
    /// [`ProtocolChecker::residual`] — instead of panicking over it.
    aborted: AtomicBool,
}

/// Checker-ledger debris counted after an aborted run: what the fabric
/// still held when the surviving machines tore down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResidualReport {
    /// Packets sent but never consumed.
    pub in_flight_packets: usize,
    /// Chunks checked out of a pool and never released.
    pub live_chunks: usize,
    /// Chunks parked in pool free lists (normal at teardown; reported for
    /// completeness).
    pub parked_chunks: usize,
}

impl ProtocolChecker {
    /// A checker for a fabric of `machines` machines.
    pub fn new(machines: usize) -> Self {
        ProtocolChecker {
            machines,
            ledger: Mutex::new(Ledger::default()),
            traces: Mutex::new(HashMap::new()),
            aborted: AtomicBool::new(false),
        }
    }

    /// Disarms the quiescence checks: the run is unwinding after a
    /// failure, so stranded ledger state is expected, not a protocol bug.
    /// Irreversible for this fabric (each run builds a fresh one).
    pub fn set_aborted(&self) {
        self.aborted.store(true, Ordering::Release);
    }

    /// `true` once [`set_aborted`](ProtocolChecker::set_aborted) ran.
    pub fn aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Counts the ledger state a failed run left behind (packets never
    /// consumed, chunk custody never returned). Meaningful after teardown
    /// of an aborted run; all zeros for a clean one.
    pub fn residual(&self) -> ResidualReport {
        let ledger = self.ledger.lock();
        ResidualReport {
            in_flight_packets: ledger.in_flight.values().sum(),
            live_chunks: ledger.live_chunks.len(),
            parked_chunks: ledger.parked_chunks.len(),
        }
    }

    /// Number of machines on the fabric this checker watches.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Registers `machine`'s trace sink so this checker's verdicts land in
    /// the run's timeline ([`MachineCtx::new`](crate::machine::MachineCtx)
    /// calls this on traced runs).
    pub fn attach_trace(&self, machine: usize, trace: Arc<MachineTrace>) {
        self.traces.lock().insert(machine, trace);
    }

    /// Emits a [`violation`] code as a checker instant on `machine`'s
    /// timeline (every registered timeline when the verdict is
    /// fabric-wide). Rings are drained on unwind by
    /// [`TraceCollector::collect`](crate::trace::TraceCollector::collect)
    /// via caught panics in tests, so the event survives the panic that
    /// follows it.
    fn trace_violation(&self, machine: Option<usize>, code: u64) {
        let traces = self.traces.lock();
        match machine {
            Some(m) => {
                if let Some(t) = traces.get(&m) {
                    t.instant(LANE_MAIN, EventKind::Checker, code, 0);
                }
            }
            None => {
                for t in traces.values() {
                    t.instant(LANE_MAIN, EventKind::Checker, code, 0);
                }
            }
        }
    }

    /// Records a packet entering the fabric.
    pub fn packet_sent(&self, src: usize, dst: usize, tag: Tag) {
        if !ENABLED {
            return;
        }
        *self.ledger.lock().in_flight.entry((src, dst, tag)).or_insert(0) += 1;
    }

    /// Records a packet being consumed by its receiver. Panics if no
    /// matching send was recorded — that is the tag-mismatch diagnostic
    /// (a packet surfacing under a tag nobody sent to this machine).
    pub fn packet_delivered(&self, src: usize, dst: usize, tag: Tag) {
        if !ENABLED {
            return;
        }
        let mut ledger = self.ledger.lock();
        let remaining = ledger.in_flight.get_mut(&(src, dst, tag)).map(|n| {
            *n -= 1;
            *n
        });
        match remaining {
            Some(0) => {
                ledger.in_flight.remove(&(src, dst, tag));
            }
            Some(_) => {}
            None => {
                drop(ledger);
                self.trace_violation(Some(dst), violation::PHANTOM_DELIVERY);
                panic!(
                    "protocol checker: machine {dst} received a packet from machine {src} \
                     with tag {tag:?} that was never sent (tag mismatch or duplicate delivery)"
                );
            }
        }
    }

    /// Records a chunk allocation leaving a pool (`machine`'s pool handed
    /// out the buffer at `addr`).
    pub fn chunk_acquired(&self, machine: usize, addr: usize, cap_bytes: usize) {
        if !ENABLED {
            return;
        }
        let mut ledger = self.ledger.lock();
        ledger.parked_chunks.remove(&addr);
        if let Some(prev) = ledger
            .live_chunks
            .insert(addr, ChunkInfo { machine, cap_bytes })
        {
            drop(ledger);
            self.trace_violation(Some(machine), violation::DOUBLE_ACQUIRE);
            panic!(
                "protocol checker: machine {machine} acquired chunk {addr:#x} \
                 ({cap_bytes} B) which machine {} already holds live ({} B) — \
                 pool handed out one allocation twice",
                prev.machine, prev.cap_bytes
            );
        }
    }

    /// Records a chunk allocation returning to `machine`'s pool. `parked`
    /// is true when the pool actually kept the allocation on a free list
    /// (false when it was dropped at the retention bound — the allocation
    /// is gone, so its address may be legitimately reused later).
    ///
    /// Panics on a double release: the address is already parked in a pool
    /// free list.
    pub fn chunk_released(&self, machine: usize, addr: usize, cap_bytes: usize, parked: bool) {
        if !ENABLED {
            return;
        }
        let mut ledger = self.ledger.lock();
        if let Some(prev) = ledger.parked_chunks.get(&addr) {
            let prev_machine = prev.machine;
            drop(ledger);
            self.trace_violation(Some(machine), violation::DOUBLE_RELEASE);
            panic!(
                "protocol checker: machine {machine} double-released chunk {addr:#x} \
                 ({cap_bytes} B) — already parked in machine {prev_machine}'s pool"
            );
        }
        ledger.live_chunks.remove(&addr);
        if parked {
            ledger
                .parked_chunks
                .insert(addr, ChunkInfo { machine, cap_bytes });
        }
    }

    /// Forgets a parked chunk whose allocation a pool is about to free
    /// (pool drop). The address may be reused by a future allocation.
    pub fn chunk_freed(&self, addr: usize) {
        if !ENABLED {
            return;
        }
        self.ledger.lock().parked_chunks.remove(&addr);
    }

    /// Verifies the fabric is quiescent: no packet sent but unreceived, no
    /// chunk checked out of a pool but never released. Called with every
    /// machine parked (between the two waits of
    /// [`MachineCtx::barrier`](crate::machine::MachineCtx::barrier)) or at
    /// fabric teardown. `context` names the call site for the diagnostic;
    /// `machine` is the reporting machine, if the check is machine-local.
    ///
    /// The verdict depends only on the shared ledger, so concurrent
    /// callers all agree.
    // analyze: allow(hot-path-alloc): diagnostic assembly for a protocol
    // violation — the listing is built only on the panic path (or once at
    // teardown), never in a steady-state step.
    pub fn check_quiescent(&self, context: &str, machine: Option<usize>) {
        if !ENABLED {
            return;
        }
        if self.aborted() {
            // The run died mid-protocol; stranded state is expected and
            // reported through residual() instead.
            return;
        }
        let ledger = self.ledger.lock();
        let who = match machine {
            Some(m) => format!("machine {m}"),
            None => "fabric".to_string(),
        };
        if !ledger.in_flight.is_empty() {
            let mut undelivered: Vec<_> = ledger
                .in_flight
                .iter()
                .map(|(&(src, dst, tag), &n)| (src, dst, tag, n))
                .collect();
            undelivered.sort();
            let listing: Vec<String> = undelivered
                .iter()
                .map(|(src, dst, tag, n)| format!("{n}× {src}→{dst} tag {tag:?}"))
                .collect();
            drop(ledger);
            self.trace_violation(machine, violation::UNDELIVERED_PACKETS);
            panic!(
                "protocol checker: undelivered packet(s) at {context} ({who}): [{}]",
                listing.join(", ")
            );
        }
        if !ledger.live_chunks.is_empty() {
            let mut leaked: Vec<_> = ledger
                .live_chunks
                .iter()
                .map(|(&addr, info)| (info.machine, addr, info.cap_bytes))
                .collect();
            leaked.sort();
            let listing: Vec<String> = leaked
                .iter()
                .map(|(m, addr, b)| format!("machine {m} chunk {addr:#x} ({b} B)"))
                .collect();
            drop(ledger);
            self.trace_violation(machine, violation::LEAKED_CHUNKS);
            panic!(
                "protocol checker: leaked chunk(s) at {context} ({who}): [{}] — \
                 acquired from a pool but never released",
                listing.join(", ")
            );
        }
    }

    /// A ledger for one machine's side of an offset exchange: records the
    /// `(offset, len)` spans written into a destination buffer and, at
    /// [`finish`](OffsetLedger::finish), verifies they tile `[0, total)`
    /// exactly once.
    // analyze: allow(hot-path-alloc): one span ledger per offset exchange
    // (O(p) entries), allocated at collective granularity, not per chunk.
    pub fn offset_ledger(&self, machine: usize, tag: Tag, total: usize) -> OffsetLedger {
        OffsetLedger {
            machine,
            tag,
            total,
            spans: Vec::new(),
            enabled: ENABLED,
            trace: self.traces.lock().get(&machine).cloned(),
        }
    }
}

/// Collects the `(offset, len)` spans one machine writes into its
/// assembled output during
/// [`exchange_by_offsets`](crate::machine::MachineCtx::exchange_by_offsets),
/// then proves they tile the destination exactly once (§IV-C: the
/// precomputed write offsets must be disjoint and complete).
///
/// Machine-local — no locking; the receive loop owns it.
pub struct OffsetLedger {
    machine: usize,
    tag: Tag,
    total: usize,
    spans: Vec<(usize, usize)>,
    enabled: bool,
    /// The owning machine's trace sink: tiling verdicts are emitted as
    /// checker instants before the panic.
    trace: Option<Arc<MachineTrace>>,
}

impl OffsetLedger {
    /// A standalone ledger (tests); production code gets one from
    /// [`ProtocolChecker::offset_ledger`].
    pub fn new(machine: usize, tag: Tag, total: usize) -> Self {
        OffsetLedger {
            machine,
            tag,
            total,
            spans: Vec::new(),
            enabled: ENABLED,
            trace: None,
        }
    }

    /// Emits `code` on the owning machine's timeline, if traced.
    fn trace_violation(&self, code: u64) {
        if let Some(t) = &self.trace {
            t.instant(LANE_MAIN, EventKind::Checker, code, 0);
        }
    }

    /// Records one span written at element offset `offset`, `len` elements
    /// long. Empty spans are ignored (an empty chunk writes nothing).
    pub fn record(&mut self, offset: usize, len: usize) {
        if !self.enabled || len == 0 {
            return;
        }
        self.spans.push((offset, len));
    }

    /// Verifies the recorded spans tile `[0, total)` exactly once. Panics
    /// with machine/tag context on an overlap or a gap.
    pub fn finish(mut self) {
        if !self.enabled {
            return;
        }
        self.spans.sort_unstable();
        let mut expected = 0usize;
        for &(offset, len) in &self.spans {
            if offset < expected {
                self.trace_violation(violation::OFFSET_OVERLAP);
                panic!(
                    "protocol checker: overlapping offset range on machine {} tag {:?}: \
                     span [{offset}, {}) overlaps previously written [.., {expected})",
                    self.machine,
                    self.tag,
                    offset + len,
                );
            }
            if offset > expected {
                self.trace_violation(violation::OFFSET_GAP);
                panic!(
                    "protocol checker: gap in offset ranges on machine {} tag {:?}: \
                     [{expected}, {offset}) never written",
                    self.machine, self.tag,
                );
            }
            expected = offset + len;
        }
        if expected != self.total {
            self.trace_violation(violation::OFFSET_GAP);
            panic!(
                "protocol checker: gap in offset ranges on machine {} tag {:?}: \
                 [{expected}, {}) never written",
                self.machine, self.tag, self.total,
            );
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn tag() -> Tag {
        Tag::user(0, 0)
    }

    #[test]
    fn balanced_traffic_is_quiescent() {
        let c = ProtocolChecker::new(2);
        c.packet_sent(0, 1, tag());
        c.packet_sent(0, 1, tag());
        c.packet_delivered(0, 1, tag());
        c.packet_delivered(0, 1, tag());
        c.check_quiescent("test", None);
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "checker"))]
    #[should_panic(expected = "undelivered packet")]
    fn unreceived_packet_reported() {
        let c = ProtocolChecker::new(2);
        c.packet_sent(0, 1, tag());
        c.check_quiescent("test", Some(1));
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "checker"))]
    #[should_panic(expected = "never sent")]
    fn phantom_delivery_reported() {
        let c = ProtocolChecker::new(2);
        c.packet_delivered(0, 1, tag());
    }

    #[test]
    fn chunk_custody_roundtrip() {
        let c = ProtocolChecker::new(1);
        c.chunk_acquired(0, 0x1000, 256);
        c.chunk_released(0, 0x1000, 256, true);
        c.chunk_acquired(0, 0x1000, 256);
        c.chunk_released(0, 0x1000, 256, false);
        c.check_quiescent("test", None);
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "checker"))]
    #[should_panic(expected = "leaked chunk")]
    fn leaked_chunk_reported() {
        let c = ProtocolChecker::new(1);
        c.chunk_acquired(0, 0x2000, 64);
        c.check_quiescent("test", Some(0));
    }

    #[test]
    fn offset_ledger_accepts_exact_tiling() {
        let mut l = OffsetLedger::new(0, tag(), 10);
        l.record(4, 6);
        l.record(0, 4);
        l.record(7, 0); // empty span: ignored
        l.finish();
    }

    #[test]
    fn offset_ledger_accepts_empty_total() {
        OffsetLedger::new(0, tag(), 0).finish();
    }

    #[test]
    fn aborted_checker_stands_down_and_reports_residual() {
        let c = ProtocolChecker::new(2);
        c.packet_sent(0, 1, tag());
        c.chunk_acquired(0, 0x3000, 128);
        c.set_aborted();
        assert!(c.aborted());
        // Would panic on both counts if the check were still armed.
        c.check_quiescent("teardown after abort", None);
        let r = c.residual();
        if ENABLED {
            assert_eq!(r.in_flight_packets, 1);
            assert_eq!(r.live_chunks, 1);
        }
    }
}
