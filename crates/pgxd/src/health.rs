//! In-flight health monitoring: an optional sampler over the always-on
//! [`MetricsRegistry`](crate::metrics::MetricsRegistry) that watches a
//! run *while it executes* and turns registry deltas into structured
//! verdicts.
//!
//! # How it samples
//!
//! Two triggers share one evaluation path ([`HealthMonitor::sample`]):
//!
//! - **Step boundaries.** [`MachineCtx::step`](crate::machine::MachineCtx)
//!   notifies the monitor when a step starts and ends, and
//!   [`barrier`](crate::machine::MachineCtx::barrier) crossings refresh
//!   the machine's progress clock. Boundary-driven samples catch skew
//!   between machines at the moments the algorithm itself considers
//!   significant.
//! - **An interval watchdog.** A thread spawned through
//!   [`crate::sync::thread`] wakes every
//!   [`HealthConfig::interval`] and samples, so a run that has stopped
//!   making progress (a straggler stuck mid-step, a deadlocked exchange)
//!   is still observed — nothing else is running to trigger a boundary
//!   sample precisely when one is most needed.
//!
//! # Verdicts
//!
//! - [`HealthVerdict::StalledStep`]: a machine has made no progress for
//!   [`HealthConfig::stall_after`] while some peer progressed recently —
//!   the relative condition distinguishes "one machine is stuck" from
//!   "the whole cluster is inside a long compute step".
//! - [`HealthVerdict::Straggler`]: a completed step took one machine
//!   [`HealthConfig::straggler_ratio`]× the cluster median.
//! - [`HealthVerdict::PoolMissStorm`]: a sampling window in which
//!   [`ChunkPool`](crate::pool::ChunkPool) acquisitions mostly missed —
//!   buffers are not being recycled (undersized pool, leak, or a
//!   placement bug).
//! - [`HealthVerdict::DstByteSkew`]: one receiver's inbound bytes exceed
//!   [`HealthConfig::skew_ratio`]× the per-machine mean — the splitter
//!   produced an unbalanced partition (the hotspot Fig. 9 quantifies).
//!
//! Each verdict is recorded once (deduplicated per machine/step) into the
//! [`HealthReport`] attached to
//! [`RunReport::health`](crate::cluster::RunReport::health), and to
//! [`RunError::health`](crate::fault::RunError) when the run aborts.
//!
//! # Ordering policy
//!
//! Progress clocks and done-flags are `std::sync::atomic` `Relaxed`
//! statistics like the rest of the metrics plane (see
//! [`crate::metrics`]): a late-observed tick can only delay a verdict by
//! one sample, never corrupt control flow. The shutdown handshake with
//! the watchdog thread is real synchronization and goes through the
//! [`crate::sync`] shim.

use crate::metrics::{
    labeled, CommStats, ExchangeSummary, Gauge, MetricsSnapshot, SharedMetrics,
};
use crate::sync::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the in-flight health monitor. Disabled by default;
/// [`HealthConfig::enabled`] turns it on with thresholds sized for the
/// bench workloads, and the builder methods tune individual detectors.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Master switch: when false, no monitor (and no watchdog thread) is
    /// created and the only run cost is one branch per step hook.
    pub enabled: bool,
    /// Watchdog sampling interval.
    pub interval: Duration,
    /// A machine with no progress for this long — while a peer progressed
    /// within half this window — is flagged as stalled.
    pub stall_after: Duration,
    /// A completed step is a straggler verdict when one machine took more
    /// than this multiple of the cluster median.
    pub straggler_ratio: f64,
    /// Straggler floor: steps whose slowest machine is under this are
    /// never flagged (median noise on tiny steps is meaningless).
    pub straggler_min: Duration,
    /// Pool-miss storm: miss fraction a sampling window must exceed.
    pub miss_storm_rate: f64,
    /// Pool-miss storm: minimum misses in the window (ignore cold-start
    /// windows where every acquisition legitimately allocates).
    pub miss_storm_min: u64,
    /// Per-destination byte skew: max/mean ratio that flags a receiver.
    pub skew_ratio: f64,
    /// Skew floor in bytes: receivers under this are never flagged.
    pub skew_min_bytes: u64,
}

impl HealthConfig {
    /// Monitoring off (the default).
    pub fn disabled() -> Self {
        HealthConfig {
            enabled: false,
            ..HealthConfig::enabled()
        }
    }

    /// Monitoring on with default thresholds.
    pub fn enabled() -> Self {
        HealthConfig {
            enabled: true,
            interval: Duration::from_millis(5),
            stall_after: Duration::from_millis(150),
            straggler_ratio: 1.75,
            straggler_min: Duration::from_millis(10),
            miss_storm_rate: 0.5,
            miss_storm_min: 64,
            skew_ratio: 2.0,
            skew_min_bytes: 1 << 20,
        }
    }

    /// Sets the watchdog sampling interval.
    pub fn interval(mut self, interval: Duration) -> Self {
        self.interval = interval.max(Duration::from_micros(100));
        self
    }

    /// Sets the stall threshold.
    pub fn stall_after(mut self, after: Duration) -> Self {
        self.stall_after = after;
        self
    }

    /// Sets the straggler ratio and floor.
    pub fn straggler(mut self, ratio: f64, min: Duration) -> Self {
        self.straggler_ratio = ratio.max(1.0);
        self.straggler_min = min;
        self
    }

    /// Sets the pool-miss storm rate and floor.
    pub fn miss_storm(mut self, rate: f64, min: u64) -> Self {
        self.miss_storm_rate = rate.clamp(0.0, 1.0);
        self.miss_storm_min = min;
        self
    }

    /// Sets the per-destination skew ratio and byte floor.
    pub fn skew(mut self, ratio: f64, min_bytes: u64) -> Self {
        self.skew_ratio = ratio.max(1.0);
        self.skew_min_bytes = min_bytes;
        self
    }
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig::disabled()
    }
}

/// One detector firing. Ratios are fixed-point ×100 so verdicts stay
/// `Eq`-comparable in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthVerdict {
    /// A completed step where `machine` took `slowdown_x100 / 100`× the
    /// cluster median.
    Straggler {
        /// The slow machine.
        machine: usize,
        /// The step it lagged on.
        step: &'static str,
        /// Its duration over the cluster median, ×100.
        slowdown_x100: u64,
    },
    /// `machine` made no progress for `stalled_for` while a peer was
    /// still moving.
    StalledStep {
        /// The quiet machine.
        machine: usize,
        /// The step it was last seen in (`"startup"` before its first).
        step: &'static str,
        /// How long it had been quiet when flagged.
        stalled_for: Duration,
    },
    /// A sampling window dominated by pool misses.
    PoolMissStorm {
        /// Misses in the window.
        misses: u64,
        /// Miss fraction of the window's acquisitions, ×100.
        rate_x100: u64,
    },
    /// One receiver drawing far more bytes than the per-machine mean.
    DstByteSkew {
        /// The overloaded receiver.
        machine: usize,
        /// Bytes addressed to it so far.
        bytes: u64,
        /// Mean bytes per receiver at the same instant.
        mean_bytes: u64,
    },
}

impl HealthVerdict {
    /// Stable kind tag (used by the JSON export and CI validation).
    pub fn kind(&self) -> &'static str {
        match self {
            HealthVerdict::Straggler { .. } => "straggler",
            HealthVerdict::StalledStep { .. } => "stalled_step",
            HealthVerdict::PoolMissStorm { .. } => "pool_miss_storm",
            HealthVerdict::DstByteSkew { .. } => "dst_byte_skew",
        }
    }

    /// The machine the verdict names, when it names one.
    pub fn machine(&self) -> Option<usize> {
        match self {
            HealthVerdict::Straggler { machine, .. }
            | HealthVerdict::StalledStep { machine, .. }
            | HealthVerdict::DstByteSkew { machine, .. } => Some(*machine),
            HealthVerdict::PoolMissStorm { .. } => None,
        }
    }

    /// The step the verdict names, when it names one.
    pub fn step(&self) -> Option<&'static str> {
        match self {
            HealthVerdict::Straggler { step, .. }
            | HealthVerdict::StalledStep { step, .. } => Some(step),
            _ => None,
        }
    }

    fn to_json(&self) -> String {
        match self {
            HealthVerdict::Straggler {
                machine,
                step,
                slowdown_x100,
            } => format!(
                "{{\"kind\":\"straggler\",\"machine\":{machine},\"step\":\"{step}\",\"slowdown_x100\":{slowdown_x100}}}"
            ),
            HealthVerdict::StalledStep {
                machine,
                step,
                stalled_for,
            } => format!(
                "{{\"kind\":\"stalled_step\",\"machine\":{machine},\"step\":\"{step}\",\"stalled_for_ns\":{}}}",
                stalled_for.as_nanos()
            ),
            HealthVerdict::PoolMissStorm { misses, rate_x100 } => format!(
                "{{\"kind\":\"pool_miss_storm\",\"misses\":{misses},\"rate_x100\":{rate_x100}}}"
            ),
            HealthVerdict::DstByteSkew {
                machine,
                bytes,
                mean_bytes,
            } => format!(
                "{{\"kind\":\"dst_byte_skew\",\"machine\":{machine},\"bytes\":{bytes},\"mean_bytes\":{mean_bytes}}}"
            ),
        }
    }
}

impl std::fmt::Display for HealthVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthVerdict::Straggler {
                machine,
                step,
                slowdown_x100,
            } => write!(
                f,
                "machine {machine} straggled on step `{step}` ({}.{:02}x the cluster median)",
                slowdown_x100 / 100,
                slowdown_x100 % 100
            ),
            HealthVerdict::StalledStep {
                machine,
                step,
                stalled_for,
            } => write!(
                f,
                "machine {machine} stalled in step `{step}` for {stalled_for:?} while peers progressed"
            ),
            HealthVerdict::PoolMissStorm { misses, rate_x100 } => write!(
                f,
                "pool-miss storm: {misses} misses ({rate_x100}% of acquisitions) in one sampling window"
            ),
            HealthVerdict::DstByteSkew {
                machine,
                bytes,
                mean_bytes,
            } => write!(
                f,
                "receiver skew: machine {machine} drew {bytes} bytes vs a {mean_bytes}-byte mean"
            ),
        }
    }
}

/// What the monitor concluded about a run. Attached to
/// [`RunReport::health`](crate::cluster::RunReport::health) on success
/// and to [`RunError::health`](crate::fault::RunError) on abort, so the
/// flight-recorder view survives the crash it is most useful for.
#[derive(Debug, Clone, Default)]
pub struct HealthReport {
    /// Evaluation passes taken (boundary- plus watchdog-driven).
    pub samples: u64,
    /// Every detector firing, in detection order, deduplicated.
    pub verdicts: Vec<HealthVerdict>,
    /// The registry as the monitor last saw it (the final snapshot on a
    /// clean finish; the last pre-abort view on failure).
    pub metrics: MetricsSnapshot,
}

impl HealthReport {
    /// `true` when no detector fired.
    pub fn is_quiet(&self) -> bool {
        self.verdicts.is_empty()
    }

    /// The straggler verdicts.
    pub fn stragglers(&self) -> impl Iterator<Item = &HealthVerdict> {
        self.verdicts
            .iter()
            .filter(|v| matches!(v, HealthVerdict::Straggler { .. }))
    }

    /// The stalled-step verdicts.
    pub fn stalls(&self) -> impl Iterator<Item = &HealthVerdict> {
        self.verdicts
            .iter()
            .filter(|v| matches!(v, HealthVerdict::StalledStep { .. }))
    }

    /// JSON export (schema `pgxd-health/1`): samples, verdicts, and the
    /// embedded metrics snapshot.
    pub fn to_json(&self) -> String {
        let verdicts: Vec<String> = self.verdicts.iter().map(|v| v.to_json()).collect();
        format!(
            "{{\"schema\":\"pgxd-health/1\",\"samples\":{},\"verdicts\":[{}],\"metrics\":{}}}",
            self.samples,
            verdicts.join(","),
            self.metrics.to_json()
        )
    }
}

impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.verdicts.is_empty() {
            return write!(f, "healthy ({} samples, no verdicts)", self.samples);
        }
        write!(f, "{} verdicts over {} samples:", self.verdicts.len(), self.samples)?;
        for v in &self.verdicts {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

/// Aggregated mutable monitor state, one lock.
struct MonitorState {
    samples: u64,
    verdicts: Vec<HealthVerdict>,
    /// `(machine, step)` step durations as machines complete them.
    step_ns: Vec<(usize, &'static str, u64)>,
    /// Last step each machine entered (`None` before its first).
    current_step: Vec<Option<&'static str>>,
    /// Dedup: machines already flagged as stalled.
    stall_flagged: Vec<bool>,
    /// Dedup: `(machine, step)` pairs already flagged as stragglers.
    straggler_flagged: Vec<(usize, &'static str)>,
    /// Dedup: receivers already flagged for byte skew.
    skew_flagged: Vec<bool>,
    /// Dedup: one storm verdict per run.
    storm_flagged: bool,
    /// Exchange counters at the previous sample (window deltas).
    last_exchange: ExchangeSummary,
}

/// The in-flight sampler: shared between every machine's hooks and the
/// watchdog thread. Created by the cluster when
/// [`HealthConfig::enabled`] is set.
pub struct HealthMonitor {
    cfg: HealthConfig,
    p: usize,
    registry: SharedMetrics,
    stats: Arc<CommStats>,
    /// Per-machine progress clock: registry-ns of the last step/barrier
    /// boundary. Relaxed statistics — see the module docs.
    progress_ns: Vec<AtomicU64>,
    /// Per-machine "closure returned" flags: a finished machine is
    /// excluded from stall detection.
    done: Vec<AtomicBool>,
    /// Per-machine "parked at a barrier" flags: a parked machine is a
    /// *victim* of a stall, not a suspect — and its parked peers are the
    /// strongest evidence the quiet machine really is stuck (their
    /// progress clocks stop too, so clocks alone cannot tell a straggler
    /// from a cluster-wide long step).
    waiting: Vec<AtomicBool>,
    /// Mirrors of the progress clocks in the registry (exported).
    progress_gauges: Vec<Gauge>,
    verdict_counter: crate::metrics::Counter,
    state: Mutex<MonitorState>,
    shutdown: Mutex<bool>,
    wake: Condvar,
}

impl std::fmt::Debug for HealthMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthMonitor")
            .field("p", &self.p)
            .finish_non_exhaustive()
    }
}

impl HealthMonitor {
    /// A monitor over `p` machines sampling `registry` and `stats`.
    pub(crate) fn new(
        cfg: HealthConfig,
        p: usize,
        registry: SharedMetrics,
        stats: Arc<CommStats>,
    ) -> Self {
        let progress_gauges = (0..p)
            .map(|m| {
                let m = m.to_string();
                registry.gauge(&labeled("pgxd_machine_progress_ns", &[("machine", &m)]))
            })
            .collect();
        let verdict_counter = registry.counter("pgxd_health_verdicts_total");
        HealthMonitor {
            cfg,
            p,
            stats,
            progress_ns: (0..p).map(|_| AtomicU64::new(0)).collect(),
            done: (0..p).map(|_| AtomicBool::new(false)).collect(),
            waiting: (0..p).map(|_| AtomicBool::new(false)).collect(),
            progress_gauges,
            verdict_counter,
            state: Mutex::new(MonitorState {
                samples: 0,
                verdicts: Vec::new(),
                step_ns: Vec::new(),
                current_step: vec![None; p],
                stall_flagged: vec![false; p],
                straggler_flagged: Vec::new(),
                skew_flagged: vec![false; p],
                storm_flagged: false,
                last_exchange: ExchangeSummary::default(),
            }),
            shutdown: Mutex::new(false),
            wake: Condvar::new(),
            registry,
        }
    }

    /// Marks machine `machine` as making progress *now*.
    // analyze: allow(atomics-ordering): progress clock is a statistic; a
    // stale read delays a verdict by one sample at most.
    pub(crate) fn note_progress(&self, machine: usize) {
        let now = self.registry.now_ns();
        self.progress_ns[machine].store(now, Ordering::Relaxed);
        self.progress_gauges[machine].set(now);
    }

    /// A step began on `machine`.
    pub(crate) fn note_step_start(&self, machine: usize, step: &'static str) {
        self.note_progress(machine);
        self.state.lock().current_step[machine] = Some(step);
    }

    /// A step completed on `machine` in `elapsed` — records the duration
    /// for straggler analysis and runs a boundary-driven sample.
    pub(crate) fn note_step_end(&self, machine: usize, step: &'static str, elapsed: Duration) {
        self.note_progress(machine);
        {
            let mut st = self.state.lock();
            st.step_ns
                .push((machine, step, elapsed.as_nanos().min(u64::MAX as u128) as u64));
        }
        self.sample();
    }

    /// Machine `machine` is about to park at a cluster barrier.
    // analyze: allow(atomics-ordering): advisory flag for the stall
    // detector; a stale read shifts a verdict by one sample at most.
    pub(crate) fn note_wait_begin(&self, machine: usize) {
        self.note_progress(machine);
        self.waiting[machine].store(true, Ordering::Relaxed);
    }

    /// Machine `machine` was released from the barrier.
    // analyze: allow(atomics-ordering): advisory flag for the stall
    // detector; a stale read shifts a verdict by one sample at most.
    pub(crate) fn note_wait_end(&self, machine: usize) {
        self.waiting[machine].store(false, Ordering::Relaxed);
        self.note_progress(machine);
    }

    /// Machine `machine`'s closure returned (or unwound): stop expecting
    /// progress from it.
    // analyze: allow(atomics-ordering): done-flag is advisory; a racing
    // sampler at worst evaluates the machine once more.
    pub(crate) fn note_done(&self, machine: usize) {
        self.done[machine].store(true, Ordering::Relaxed);
        self.note_progress(machine);
    }

    /// One evaluation pass over the current registry/stat state. Called
    /// from step boundaries and the watchdog; also exposed for tests.
    // analyze: allow(atomics-ordering): reads of progress/done statistic
    // cells; the stall detector tolerates staleness by construction.
    // analyze: allow(hot-path-alloc): sampling-cadence snapshot — runs once
    // per step end / watchdog tick, O(p) cells, never per element.
    pub fn sample(&self) {
        let now = self.registry.now_ns();
        let stall_ns = self.cfg.stall_after.as_nanos().min(u64::MAX as u128) as u64;
        let progress: Vec<(bool, bool, u64)> = (0..self.p)
            .map(|m| {
                (
                    self.done[m].load(Ordering::Relaxed),
                    self.waiting[m].load(Ordering::Relaxed),
                    self.progress_ns[m].load(Ordering::Relaxed),
                )
            })
            .collect();
        let exchange = self.stats.exchange.summary();
        let per_dst = self.stats.per_dst_snapshot();

        let mut st = self.state.lock();
        st.samples += 1;

        // Stalls: a quiet machine is stuck only relative to its peers —
        // either some peer progressed recently, or peers are parked at a
        // barrier this machine never reached. (Parked peers' progress
        // clocks stop too, so the second clause is what catches a
        // long-stuck straggler; without it, everyone quiet would be
        // indistinguishable from a cluster-wide long compute step.)
        let freshest_peer_age = |skip: usize| {
            progress
                .iter()
                .enumerate()
                .filter(|(m, _)| *m != skip)
                .map(|(_, (done, _, at))| if *done { 0 } else { now.saturating_sub(*at) })
                .min()
                .unwrap_or(u64::MAX)
        };
        let peer_parked = |skip: usize| {
            progress
                .iter()
                .enumerate()
                .any(|(m, (done, waiting, _))| m != skip && !done && *waiting)
        };
        for m in 0..self.p {
            let (done, waiting, at) = progress[m];
            if done || waiting || st.stall_flagged[m] {
                continue;
            }
            let age = now.saturating_sub(at);
            if age >= stall_ns && (freshest_peer_age(m) <= stall_ns / 2 || peer_parked(m)) {
                st.stall_flagged[m] = true;
                let step = st.current_step[m].unwrap_or("startup");
                let v = HealthVerdict::StalledStep {
                    machine: m,
                    step,
                    stalled_for: Duration::from_nanos(age),
                };
                self.push_verdict(&mut st, v);
            }
        }

        // Pool-miss storm over the window since the previous sample.
        let delta = exchange.delta_since(&st.last_exchange);
        st.last_exchange = exchange;
        let acquisitions = delta.pool_hits + delta.pool_misses;
        if !st.storm_flagged
            && delta.pool_misses >= self.cfg.miss_storm_min
            && acquisitions > 0
            && delta.pool_misses as f64 / acquisitions as f64 > self.cfg.miss_storm_rate
        {
            st.storm_flagged = true;
            let v = HealthVerdict::PoolMissStorm {
                misses: delta.pool_misses,
                rate_x100: delta.pool_misses * 100 / acquisitions,
            };
            self.push_verdict(&mut st, v);
        }

        // Per-destination byte skew.
        if self.p > 1 {
            let total: u64 = per_dst.iter().sum();
            let mean = total / self.p as u64;
            for (m, &bytes) in per_dst.iter().enumerate() {
                if st.skew_flagged[m] || bytes < self.cfg.skew_min_bytes || mean == 0 {
                    continue;
                }
                if bytes as f64 > self.cfg.skew_ratio * mean as f64 {
                    st.skew_flagged[m] = true;
                    let v = HealthVerdict::DstByteSkew {
                        machine: m,
                        bytes,
                        mean_bytes: mean,
                    };
                    self.push_verdict(&mut st, v);
                }
            }
        }

        // Stragglers over fully-reported steps.
        self.eval_stragglers(&mut st);
    }

    fn push_verdict(&self, st: &mut MonitorState, v: HealthVerdict) {
        self.verdict_counter.inc();
        st.verdicts.push(v);
    }

    /// Flags steps where one machine took `straggler_ratio`× the median.
    /// Only evaluates steps every machine has reported, so a step still
    /// running somewhere is not judged on partial data.
    // analyze: allow(hot-path-alloc): straggler evaluation scratch — O(p)
    // per sampled step at watchdog cadence, not on the data path.
    fn eval_stragglers(&self, st: &mut MonitorState) {
        let min_ns = self.cfg.straggler_min.as_nanos().min(u64::MAX as u128) as u64;
        let mut steps: Vec<&'static str> = Vec::new();
        for (_, s, _) in &st.step_ns {
            if !steps.contains(s) {
                steps.push(s);
            }
        }
        let mut fired: Vec<(usize, &'static str, u64)> = Vec::new();
        for step in steps {
            let mut per_machine = vec![0u64; self.p];
            let mut reported = vec![false; self.p];
            for (m, s, ns) in &st.step_ns {
                if *s == step {
                    per_machine[*m] += ns;
                    reported[*m] = true;
                }
            }
            if self.p < 2 || !reported.iter().all(|&r| r) {
                continue;
            }
            let mut sorted = per_machine.clone();
            sorted.sort_unstable();
            // Lower median: with an even machine count the upper middle
            // may BE the straggler (p = 2 degenerates to max), which
            // could never exceed a ratio of itself.
            let median = sorted[(self.p - 1) / 2].max(1);
            for (m, &ns) in per_machine.iter().enumerate() {
                if ns >= min_ns
                    && ns as f64 > self.cfg.straggler_ratio * median as f64
                    && !st.straggler_flagged.contains(&(m, step))
                {
                    fired.push((m, step, ns * 100 / median));
                }
            }
        }
        for (m, step, slowdown) in fired {
            st.straggler_flagged.push((m, step));
            let v = HealthVerdict::Straggler {
                machine: m,
                step,
                slowdown_x100: slowdown,
            };
            self.push_verdict(st, v);
        }
    }

    /// The watchdog body: sample every `interval` until shut down.
    pub(crate) fn watchdog_loop(&self) {
        let mut g = self.shutdown.lock();
        while !*g {
            // analyze: allow(blocking-under-lock): condvar wait releases
            // the shutdown lock for the sleep; no other lock is held.
            let (g2, timed_out) = self.wake.wait_for(g, self.cfg.interval);
            g = g2;
            if *g {
                return;
            }
            if timed_out {
                drop(g);
                self.sample();
                // analyze: allow(loop-discipline): deliberate re-acquire —
                // sample() must run with the shutdown lock dropped, so the
                // guard cannot be hoisted out of the iteration.
                g = self.shutdown.lock();
            }
        }
    }

    /// Tells the watchdog to exit (idempotent).
    pub(crate) fn request_shutdown(&self) {
        *self.shutdown.lock() = true;
        self.wake.notify_all();
    }

    /// Final evaluation + report. Call after the watchdog has been shut
    /// down and joined.
    pub(crate) fn report(&self) -> HealthReport {
        self.sample();
        // Snapshot before taking the state lock: the registry has its own
        // internal lock and nothing orders it against `state`.
        let metrics = self.registry.snapshot();
        let st = self.state.lock();
        HealthReport {
            samples: st.samples,
            verdicts: st.verdicts.clone(),
            metrics,
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::net::NetworkModel;

    fn monitor(p: usize, cfg: HealthConfig) -> (HealthMonitor, Arc<CommStats>) {
        let registry = Arc::new(MetricsRegistry::new());
        let stats = Arc::new(CommStats::new(p, NetworkModel::default()));
        stats.register_into(&registry);
        (HealthMonitor::new(cfg, p, registry, stats.clone()), stats)
    }

    #[test]
    fn quiet_run_yields_quiet_report() {
        let (mon, _stats) = monitor(2, HealthConfig::enabled());
        for m in 0..2 {
            mon.note_step_start(m, "work");
            mon.note_step_end(m, "work", Duration::from_millis(20));
            mon.note_done(m);
        }
        let report = mon.report();
        assert!(report.is_quiet(), "verdicts: {:?}", report.verdicts);
        assert!(report.samples >= 2);
        assert!(report.metrics.counter("pgxd_health_verdicts_total").is_some());
    }

    #[test]
    fn straggler_step_is_flagged_with_machine_and_step() {
        let cfg = HealthConfig::enabled().straggler(1.5, Duration::from_millis(1));
        let (mon, _stats) = monitor(4, cfg);
        for m in 0..4 {
            let ms = if m == 2 { 400 } else { 20 };
            mon.note_step_start(m, "local_sort");
            mon.note_step_end(m, "local_sort", Duration::from_millis(ms));
        }
        let report = mon.report();
        let straggler = report.stragglers().next().expect("straggler flagged");
        assert_eq!(straggler.machine(), Some(2));
        assert_eq!(straggler.step(), Some("local_sort"));
        // Deduplicated: sampling again does not re-flag.
        mon.sample();
        assert_eq!(mon.report().stragglers().count(), 1);
    }

    #[test]
    fn straggler_needs_full_step_reports() {
        let cfg = HealthConfig::enabled().straggler(1.5, Duration::from_millis(1));
        let (mon, _stats) = monitor(3, cfg);
        mon.note_step_end(0, "s", Duration::from_millis(100));
        mon.note_step_end(1, "s", Duration::from_millis(5));
        // Machine 2 has not reported: no judgment on partial data.
        assert!(mon.report().is_quiet());
        mon.note_step_end(2, "s", Duration::from_millis(5));
        assert_eq!(mon.report().stragglers().count(), 1);
    }

    #[test]
    fn stall_requires_moving_peer() {
        let cfg = HealthConfig::enabled().stall_after(Duration::from_millis(20));
        let (mon, _stats) = monitor(2, cfg);
        mon.note_step_start(0, "exchange");
        mon.note_step_start(1, "exchange");
        std::thread::sleep(Duration::from_millis(40));
        // Both quiet: the whole cluster is inside a long step — no stall.
        mon.sample();
        assert_eq!(mon.report().stalls().count(), 0);
        // Peer 1 moves; machine 0 still quiet → stall names machine 0.
        mon.note_progress(1);
        mon.sample();
        let report = mon.report();
        let stall = report.stalls().next().expect("stall flagged");
        assert_eq!(stall.machine(), Some(0));
        assert_eq!(stall.step(), Some("exchange"));
        // Once flagged, stays flagged once.
        mon.sample();
        assert_eq!(mon.report().stalls().count(), 1);
    }

    #[test]
    fn parked_peers_expose_the_holdout() {
        let cfg = HealthConfig::enabled().stall_after(Duration::from_millis(20));
        let (mon, _stats) = monitor(3, cfg);
        mon.note_step_start(0, "exchange");
        mon.note_wait_begin(1);
        mon.note_wait_begin(2);
        std::thread::sleep(Duration::from_millis(45));
        // Nobody's clock moved — but two machines are parked at a barrier
        // machine 0 never reached, which convicts machine 0.
        mon.sample();
        let report = mon.report();
        let stall = report.stalls().next().expect("stall flagged");
        assert_eq!(stall.machine(), Some(0));
        assert_eq!(stall.step(), Some("exchange"));
        // The parked victims themselves are not flagged.
        assert_eq!(report.stalls().count(), 1);
    }

    #[test]
    fn finished_machines_do_not_stall() {
        let cfg = HealthConfig::enabled().stall_after(Duration::from_millis(10));
        let (mon, _stats) = monitor(2, cfg);
        mon.note_done(0);
        std::thread::sleep(Duration::from_millis(25));
        mon.note_progress(1);
        mon.sample();
        assert_eq!(mon.report().stalls().count(), 0);
    }

    #[test]
    fn pool_miss_storm_fires_on_windowed_delta() {
        let cfg = HealthConfig::enabled().miss_storm(0.5, 10);
        let (mon, stats) = monitor(2, cfg);
        // Window 1: healthy — mostly hits.
        for _ in 0..100 {
            stats.exchange.record_pool_hit();
        }
        stats.exchange.record_pool_miss();
        mon.sample();
        assert!(mon.report().is_quiet());
        // Window 2: storm — all misses.
        for _ in 0..50 {
            stats.exchange.record_pool_miss();
        }
        mon.sample();
        let report = mon.report();
        assert_eq!(
            report
                .verdicts
                .iter()
                .filter(|v| v.kind() == "pool_miss_storm")
                .count(),
            1
        );
    }

    #[test]
    fn dst_byte_skew_names_the_receiver() {
        let cfg = HealthConfig::enabled().skew(2.0, 1000);
        let (mon, stats) = monitor(4, cfg);
        for dst in 0..4 {
            stats.record_packet(1000, dst);
        }
        stats.record_packet(20_000, 3);
        mon.sample();
        let report = mon.report();
        let skew = report
            .verdicts
            .iter()
            .find(|v| v.kind() == "dst_byte_skew")
            .expect("skew flagged");
        assert_eq!(skew.machine(), Some(3));
    }

    #[test]
    fn watchdog_samples_until_shutdown() {
        let cfg = HealthConfig::enabled().interval(Duration::from_millis(2));
        let (mon, _stats) = monitor(2, cfg);
        let mon = Arc::new(mon);
        let m2 = mon.clone();
        let h = crate::sync::thread::spawn(move || m2.watchdog_loop());
        std::thread::sleep(Duration::from_millis(30));
        mon.request_shutdown();
        h.join().unwrap();
        assert!(mon.report().samples >= 3, "watchdog sampled while idle");
    }

    #[test]
    fn report_json_is_balanced_and_tagged() {
        let cfg = HealthConfig::enabled().straggler(1.5, Duration::from_millis(1));
        let (mon, _stats) = monitor(2, cfg);
        mon.note_step_end(0, "s", Duration::from_millis(50));
        mon.note_step_end(1, "s", Duration::from_millis(2));
        let json = mon.report().to_json();
        assert!(json.starts_with("{\"schema\":\"pgxd-health/1\""));
        assert!(json.contains("\"verdicts\":["));
        assert!(json.contains("\"kind\":\"straggler\""));
        assert!(json.contains("\"metrics\":{\"schema\":\"pgxd-metrics/1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
