//! Per-machine execution context: identity, managers, collectives, and
//! step timing.
//!
//! A [`MachineCtx`] is handed to the SPMD closure for each simulated
//! machine. Collectives follow MPI-style semantics: every machine must
//! call the same collectives in the same order (an internal sequence
//! number enforces packet matching across consecutive collectives).

use crate::buffer::RequestBuffer;
use crate::checker;
use crate::comm::{kinds, CommManager, Tag};
use crate::fault::{BarrierWait, ClusterBarrier, FaultInjector, InjectedFailure};
use crate::health::HealthMonitor;
use crate::metrics::{labeled, CommSummary, Counter, Histogram, SharedCommStats, SharedMetrics, StepTimer};
use crate::pool::ChunkPool;
use crate::task::{self, TaskManager};
use crate::trace::{EventKind, MachineTrace, LANE_MAIN};
use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::Arc;

/// The master machine's id (the paper's "Master" is processor 0).
pub const MASTER: usize = 0;

/// Context for one simulated machine inside a running cluster.
pub struct MachineCtx {
    id: usize,
    p: usize,
    comm: CommManager,
    task: TaskManager,
    timer: StepTimer,
    barrier: Arc<ClusterBarrier>,
    buffer_bytes: usize,
    stats: SharedCommStats,
    /// The run's fault plane; `None` (one branch per site) when no
    /// [`FaultPlan`](crate::fault::FaultPlan) is armed.
    fault: Option<Arc<FaultInjector>>,
    /// Recycled chunk backing stores for the exchange pipeline, shared
    /// between this machine's receive thread and its send workers.
    pool: Arc<ChunkPool>,
    /// This machine's trace sink; `None` (one branch per event site) when
    /// the run is untraced.
    trace: Option<Arc<MachineTrace>>,
    /// The run's always-on metrics registry (see [`crate::metrics`]).
    registry: SharedMetrics,
    /// The in-flight health monitor; `None` (one branch per hook) when
    /// [`HealthConfig`](crate::health::HealthConfig) is disabled.
    health: Option<Arc<HealthMonitor>>,
    /// `pgxd_steps_total{machine}` — steps this machine completed.
    steps_counter: Counter,
    /// `pgxd_barriers_total{machine}` — barriers this machine crossed.
    barriers_counter: Counter,
    /// Cached `pgxd_step_ns{step}` histogram handles, one per step name
    /// seen, so steady-state steps record without re-rendering the
    /// labeled metric name or taking the registry lock.
    step_hists: Vec<(&'static str, Histogram)>,
    collective_seq: u64,
}

impl Drop for MachineCtx {
    /// Publishes this machine's failure *before* its fabric receiver is
    /// torn down. `Drop` on the struct runs ahead of the field drops, so
    /// when this machine is unwinding, the abort flag and barrier wake-up
    /// become visible to peers before their sends to the now-dead inbox
    /// start erroring — otherwise a survivor mid-send would panic on the
    /// dropped receiver and masquerade as a failure of its own, instead
    /// of unwinding as [`InjectedFailure::PeerAborted`].
    fn drop(&mut self) {
        if let Some(h) = &self.health {
            // Exited (returned or unwound) either way: stop expecting
            // progress from this machine.
            h.note_done(self.id);
        }
        if std::thread::panicking() {
            self.comm.checker().set_aborted();
            self.barrier.abort();
        }
    }
}

impl MachineCtx {
    pub(crate) fn new(
        mut comm: CommManager,
        mut task: TaskManager,
        barrier: Arc<ClusterBarrier>,
        buffer_bytes: usize,
        stats: SharedCommStats,
        trace: Option<Arc<MachineTrace>>,
        registry: SharedMetrics,
        health: Option<Arc<HealthMonitor>>,
    ) -> Self {
        let mut pool = ChunkPool::with_checker(stats.clone(), comm.checker().clone(), comm.id());
        if let Some(t) = &trace {
            // Attach the sink before the pool is shared and before any
            // sender clones are handed out, so every copy carries it.
            pool.set_trace(t.clone());
            comm.set_trace(t.clone());
            comm.checker().attach_trace(comm.id(), t.clone());
        }
        // Receives must observe peer aborts and the plan's step timeout.
        comm.set_control(barrier.clone());
        let fault = comm.fault().cloned();
        let pool = Arc::new(pool);
        let id_label = comm.id().to_string();
        let steps_counter =
            registry.counter(&labeled("pgxd_steps_total", &[("machine", &id_label)]));
        let barriers_counter =
            registry.counter(&labeled("pgxd_barriers_total", &[("machine", &id_label)]));
        task.set_pickup_counter(
            registry.counter(&labeled("pgxd_task_pickups_total", &[("machine", &id_label)])),
        );
        if let Some(h) = &health {
            h.note_progress(comm.id());
        }
        MachineCtx {
            id: comm.id(),
            p: comm.num_machines(),
            comm,
            task,
            timer: StepTimer::new(),
            barrier,
            buffer_bytes,
            pool,
            stats,
            fault,
            trace,
            registry,
            health,
            steps_counter,
            barriers_counter,
            step_hists: Vec::new(),
            collective_seq: 0,
        }
    }

    /// This machine's id in `0..num_machines()`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of machines in the cluster.
    pub fn num_machines(&self) -> usize {
        self.p
    }

    /// `true` on the master machine (id 0).
    pub fn is_master(&self) -> bool {
        self.id == MASTER
    }

    /// The machine's task manager (worker pool).
    pub fn tasks(&self) -> &TaskManager {
        &self.task
    }

    /// Number of worker threads on this machine.
    pub fn workers(&self) -> usize {
        self.task.workers()
    }

    /// The data manager's read/request buffer size in bytes (§IV-B).
    pub fn buffer_bytes(&self) -> usize {
        self.buffer_bytes
    }

    /// This machine's chunk pool (recycled exchange buffers).
    pub fn pool(&self) -> &Arc<ChunkPool> {
        &self.pool
    }

    /// Mutable access to the raw communication manager, for protocols the
    /// collectives don't cover.
    pub fn comm_mut(&mut self) -> &mut CommManager {
        &mut self.comm
    }

    /// Times `f` under `name` in this machine's step timer. Traced runs
    /// also get a [`EventKind::Step`] span on the mainline lane, so the
    /// six §IV steps appear as Gantt rows without the algorithm layer
    /// knowing about tracing.
    pub fn step<R>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> R) -> R {
        if let Some(f) = &self.fault {
            // Pause/resume at the step boundary (straggler machines).
            f.step_pause(self.id);
        }
        if let Some(h) = &self.health {
            h.note_step_start(self.id, name);
        }
        let pre = self.trace.as_ref().map(|t| (t.intern(name), t.now_ns()));
        let start = std::time::Instant::now();
        let out = f(self);
        let elapsed = start.elapsed();
        self.timer.record(name, elapsed);
        self.record_step_metrics(name, elapsed);
        if let Some((name_id, t0)) = pre {
            if let Some(t) = &self.trace {
                t.span_since(LANE_MAIN, EventKind::Step, t0, name_id, 0);
            }
        }
        out
    }

    /// Records an externally measured duration.
    pub fn record_step(&mut self, name: &'static str, elapsed: std::time::Duration) {
        self.timer.record(name, elapsed);
        self.record_step_metrics(name, elapsed);
    }

    /// Publishes one completed step to the registry (the cluster-wide
    /// `pgxd_step_ns{step}` histogram and this machine's step counter)
    /// and to the health monitor's straggler detector.
    fn record_step_metrics(&mut self, name: &'static str, elapsed: std::time::Duration) {
        self.steps_counter.inc();
        if let Some((_, h)) = self.step_hists.iter().find(|(n, _)| *n == name) {
            h.record_duration(elapsed);
        } else {
            // analyze: allow(hot-path-alloc): first-use registry miss —
            // the handle is cached, so steady-state steps never build
            // the label string or take the registry lock.
            let h = self.registry.histogram(&labeled("pgxd_step_ns", &[("step", name)]));
            h.record_duration(elapsed);
            self.step_hists.push((name, h));
        }
        if let Some(h) = &self.health {
            h.note_step_end(self.id, name, elapsed);
        }
    }

    /// Times `f` as a [`EventKind::SortPhase`] span under `name` on the
    /// mainline lane — a sub-step phase (classify/permute/merge) nested
    /// inside a [`Self::step`] Gantt row. Free when tracing is off.
    pub fn phase_scope<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let start = std::time::Instant::now();
        let out = if let Some(t) = &self.trace {
            let name_id = t.intern(name);
            let t0 = t.now_ns();
            let out = f();
            t.span_since(LANE_MAIN, EventKind::SortPhase, t0, name_id, 0);
            out
        } else {
            f()
        };
        self.registry
            .histogram(&labeled("pgxd_sort_phase_ns", &[("phase", name)]))
            .record_duration(start.elapsed());
        out
    }

    /// Records an already-aggregated phase duration (e.g. classify time
    /// summed across worker chunks) as a [`EventKind::SortPhase`] instant
    /// with the nanoseconds in the detail payload. No-op when tracing is
    /// off.
    pub fn phase_note(&self, name: &'static str, ns: u64) {
        self.registry
            .histogram(&labeled("pgxd_sort_phase_ns", &[("phase", name)]))
            .record(ns);
        if let Some(t) = &self.trace {
            let name_id = t.intern(name);
            t.instant(LANE_MAIN, EventKind::SortPhase, name_id, ns);
        }
    }

    /// This machine's recorded step timings.
    pub fn timer(&self) -> &StepTimer {
        &self.timer
    }

    pub(crate) fn take_timer(&mut self) -> StepTimer {
        std::mem::take(&mut self.timer)
    }

    /// Snapshot of the cluster-wide communication counters (useful for
    /// bracketing a step: snapshot before and after, subtract).
    pub fn comm_summary(&self) -> CommSummary {
        self.stats.summary()
    }

    /// The run's always-on metrics registry — algorithm layers (the
    /// sorter's load statistics, custom workloads) register their own
    /// counters/gauges/histograms here; they show up in the run's
    /// exported snapshot alongside the runtime's.
    pub fn metrics(&self) -> &SharedMetrics {
        &self.registry
    }

    /// Synchronizes all machines.
    ///
    /// In debug builds (or with the `checker` feature) the barrier also
    /// verifies the fabric is quiescent: a barrier is the one point where
    /// every packet sent must have been consumed and every pooled chunk
    /// returned, so an undelivered packet or a leaked chunk here is a
    /// protocol bug. The check runs between two waits — after the first,
    /// every machine is parked inside this function, so the ledger cannot
    /// change under the scan; the verdict is computed from shared state,
    /// so all machines agree (a failure panics everywhere at once instead
    /// of deadlocking the survivors).
    pub fn barrier(&self) {
        // The span covers enter → leave; `a` is the per-machine barrier
        // index, which SPMD ordering makes comparable across machines
        // (barrier wait skew in the trace's derived views).
        let pre = self
            .trace
            .as_ref()
            .map(|t| (t.now_ns(), t.next_barrier_index()));
        if let Some(h) = &self.health {
            // Parked waiters are stall victims, not suspects — and their
            // parked state is the detector's evidence against the machine
            // they are waiting on.
            h.note_wait_begin(self.id);
        }
        self.wait_or_unwind();
        if checker::ENABLED {
            self.comm.checker().check_quiescent("barrier", Some(self.id));
            self.wait_or_unwind();
        }
        self.barriers_counter.inc();
        if let Some(h) = &self.health {
            h.note_wait_end(self.id);
        }
        if let Some((t0, index)) = pre {
            if let Some(t) = &self.trace {
                t.span_since(LANE_MAIN, EventKind::Barrier, t0, index, 0);
            }
        }
    }

    /// One abortable barrier wait. A peer's failure (or this machine's own
    /// step timeout) unwinds with a typed payload instead of deadlocking
    /// the cluster; [`Cluster::try_run`](crate::cluster::Cluster::try_run)
    /// converts the payload into a structured [`RunError`](crate::fault::RunError).
    // analyze: allow(panic-surface): the only way out of a barrier whose
    // peers are dead is to unwind; the typed payload keeps the failure
    // attributable.
    fn wait_or_unwind(&self) {
        match self.barrier.wait() {
            BarrierWait::Released => {}
            BarrierWait::Aborted => std::panic::panic_any(InjectedFailure::PeerAborted),
            BarrierWait::TimedOut => std::panic::panic_any(InjectedFailure::Timeout {
                machine: self.id,
                context: "at barrier".to_string(),
            }),
        }
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.collective_seq;
        self.collective_seq += 1;
        s
    }

    /// Gathers one `Vec<T>` from every machine onto the master. Returns
    /// `Some(per_source)` on the master (indexed by source id), `None`
    /// elsewhere.
    // analyze: allow(panic-surface): collective indexing is bounded by the
    // machine count and a missing packet is a protocol bug worth a panic.
    // analyze: allow(hot-path-alloc): O(p) control-plane allocations per
    // collective call — gather/broadcast bookkeeping scales with the
    // machine count, not the element count, and the payloads escape to
    // the caller.
    pub fn gather_to_master<T: Send + 'static>(&mut self, data: Vec<T>) -> Option<Vec<Vec<T>>> {
        let tag = Tag {
            kind: kinds::GATHER,
            seq: self.next_seq(),
        };
        if self.id != MASTER {
            self.comm.send_vec(MASTER, tag, data);
            return None;
        }
        let mut parts: Vec<Option<Vec<T>>> = (0..self.p).map(|_| None).collect();
        parts[MASTER] = Some(data);
        for _ in 1..self.p {
            let (src, v) = self.comm.recv_vec::<T>(tag);
            debug_assert!(parts[src].is_none(), "duplicate gather from {src}");
            parts[src] = Some(v);
        }
        Some(parts.into_iter().map(|v| v.expect("missing gather part")).collect())
    }

    /// Broadcasts a `Vec<T>` from the master to everyone. The master
    /// passes `Some(data)`, everyone else `None`; all machines return the
    /// broadcast value.
    ///
    /// The payload ships as one shared `Arc<Vec<T>>` — the master does not
    /// clone it per receiver; wire-byte accounting still charges every
    /// receiver the full payload.
    pub fn broadcast_from_master<T: Send + Sync + Clone + 'static>(
        &mut self,
        data: Option<Vec<T>>,
    ) -> Vec<T> {
        let tag = Tag {
            kind: kinds::BROADCAST,
            seq: self.next_seq(),
        };
        self.broadcast_shared(MASTER, data, tag)
    }

    /// Broadcasts a `Vec<T>` from an arbitrary `root` to everyone. The
    /// root passes `Some(data)`, everyone else `None`; all machines
    /// return the broadcast value. Ships one shared payload like
    /// [`broadcast_from_master`](MachineCtx::broadcast_from_master).
    pub fn broadcast_from<T: Send + Sync + Clone + 'static>(
        &mut self,
        root: usize,
        data: Option<Vec<T>>,
    ) -> Vec<T> {
        assert!(root < self.p, "broadcast root out of range");
        let tag = Tag {
            kind: kinds::BROADCAST,
            seq: self.next_seq(),
        };
        self.broadcast_shared(root, data, tag)
    }

    // analyze: allow(panic-surface): a missing broadcast packet is a
    // protocol bug; crashing beats silently desynchronizing the step.
    // analyze: allow(hot-path-alloc): O(p) control-plane allocations per
    // collective call — gather/broadcast bookkeeping scales with the
    // machine count, not the element count, and the payloads escape to
    // the caller.
    fn broadcast_shared<T: Send + Sync + Clone + 'static>(
        &mut self,
        root: usize,
        data: Option<Vec<T>>,
        tag: Tag,
    ) -> Vec<T> {
        if self.id == root {
            let data = data.expect("broadcast root must supply data");
            let shared = Arc::new(data);
            let sender = self.comm.sender();
            for dst in 0..self.p {
                if dst != root {
                    sender.send_shared_vec(dst, tag, shared.clone());
                }
            }
            // Usually receivers still hold their handles, costing the root
            // one local clone — instead of the p − 1 clones an owned
            // broadcast pays.
            Arc::try_unwrap(shared).unwrap_or_else(|a| (*a).clone())
        } else {
            let (src, v) = self.comm.recv_shared_vec::<T>(tag);
            debug_assert_eq!(src, root);
            v
        }
    }

    /// Simple all-to-all: machine `i` sends `parts[j]` to machine `j`;
    /// returns the `p` vectors received, indexed by source.
    // analyze: allow(panic-surface): indexing is by machine id < p
    // (asserted on entry) and a missing packet is a protocol bug.
    // analyze: allow(hot-path-alloc): O(p) control-plane allocations per
    // collective call — gather/broadcast bookkeeping scales with the
    // machine count, not the element count, and the payloads escape to
    // the caller.
    pub fn all_to_all<T: Send + 'static>(&mut self, parts: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(parts.len(), self.p, "one part per destination required");
        let tag = Tag {
            kind: kinds::ALL_TO_ALL,
            seq: self.next_seq(),
        };
        let mut received: Vec<Option<Vec<T>>> = (0..self.p).map(|_| None).collect();
        let mut parts = parts;
        // Stagger destinations so machine 0 isn't everyone's first target.
        for step in 1..self.p {
            let dst = (self.id + step) % self.p;
            let payload = std::mem::take(&mut parts[dst]);
            self.comm.send_vec(dst, tag, payload);
        }
        received[self.id] = Some(std::mem::take(&mut parts[self.id]));
        for _ in 1..self.p {
            let (src, v) = self.comm.recv_vec::<T>(tag);
            debug_assert!(received[src].is_none());
            received[src] = Some(v);
        }
        received
            .into_iter()
            .map(|v| v.expect("missing all_to_all part"))
            .collect()
    }

    /// All-gather: everyone contributes a `Vec<T>` and receives all `p`
    /// contributions, indexed by source. Each contribution ships as one
    /// shared payload (no per-receiver clone on the contributor).
    pub fn all_gather<T: Send + Sync + Clone + 'static>(&mut self, data: Vec<T>) -> Vec<Vec<T>> {
        let tag = Tag {
            kind: kinds::ALL_GATHER,
            seq: self.next_seq(),
        };
        self.all_gather_with_tag(data, tag)
    }

    /// The §IV-C asynchronous exchange. `data` is this machine's local
    /// array; `send_offsets` (`p + 1` entries) assigns
    /// `data[send_offsets[j]..send_offsets[j+1]]` to destination `j`.
    ///
    /// Semantics reproduced from the paper:
    /// 1. per-destination element counts are exchanged first, so every
    ///    receiver can preallocate its output and every sender knows the
    ///    receiver-side offset to address its chunks at;
    /// 2. data moves in data-manager buffer-sized chunks
    ///    ([`MachineCtx::buffer_bytes`]) addressed to absolute offsets, so
    ///    the receiver writes each arriving chunk straight into place
    ///    while still sending its own outgoing data (no barrier between
    ///    send and receive);
    /// 3. returns `(assembled, source_bounds)` where
    ///    `assembled[source_bounds[s]..source_bounds[s+1]]` is the run
    ///    received from machine `s` (runs stay contiguous so the final
    ///    merge can consume them and provenance stays recoverable).
    // analyze: allow(panic-surface): offset arithmetic is verified by the
    // count phase (and the debug checker's offset tiling); bounds checks
    // panicking here catch corruption rather than writing stray bytes.
    pub fn exchange_by_offsets<T: Copy + Send + Sync + 'static>(
        &mut self,
        data: &[T],
        send_offsets: &[usize],
    ) -> (Vec<T>, Vec<usize>) {
        assert_eq!(send_offsets.len(), self.p + 1, "need p+1 send offsets");
        assert_eq!(*send_offsets.last().unwrap(), data.len());

        // --- 1. count exchange ------------------------------------------------
        let counts_tag = Tag {
            kind: kinds::EXCHANGE_COUNTS,
            seq: self.next_seq(),
        };
        let (matrix, source_bounds, my_base_at) =
            self.exchange_count_phase(send_offsets, counts_tag);
        let total = source_bounds[self.p];

        // --- 2. overlapped send/receive --------------------------------------
        let data_tag = Tag {
            kind: kinds::EXCHANGE_DATA,
            seq: self.next_seq(),
        };
        let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(total);
        // SAFETY: MaybeUninit slots carry no validity invariant; every slot
        // is written exactly once below (self-copy + per-source chunks tile
        // [0, total) by construction of the count matrix), asserted by the
        // placement accounting before the final transmute (and verified
        // span-by-span by the protocol checker's offset ledger in debug
        // builds).
        unsafe { out.set_len(total) };
        let mut ledger = self.comm.checker().offset_ledger(self.id, data_tag, total);

        // Self part: one memcpy straight into place, no fabric involved.
        let self_len = {
            let self_slice = &data[send_offsets[self.id]..send_offsets[self.id + 1]];
            let base = source_bounds[self.id];
            // SAFETY: `base + len <= total` by construction of
            // `source_bounds`; `MaybeUninit<T>` is layout-identical to `T`,
            // and `data` cannot alias the freshly allocated `out`.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    self_slice.as_ptr(),
                    out.as_mut_ptr().add(base).cast::<T>(),
                    self_slice.len(),
                );
            }
            self.stats
                .exchange
                .record_bytes_placed(std::mem::size_of_val(self_slice));
            ledger.record(base, self_slice.len());
            if let Some(t) = &self.trace {
                t.instant(
                    LANE_MAIN,
                    EventKind::ChunkPlace,
                    base as u64,
                    std::mem::size_of_val(self_slice) as u64,
                );
            }
            self_slice.len()
        };

        let expected_remote = total - (matrix[self.id][self.id] as usize);
        let sender = self.comm.sender();
        // analyze: allow(hot-path-alloc): one worker-pool handle clone per
        // exchange — the Arc bump detaches the manager from `self` so the
        // receive loop below can borrow the comm manager mutably.
        let task = self.task.clone();
        let buffer_bytes = self.buffer_bytes;
        let (id, p) = (self.id, self.p);

        // One send task per destination (staggered so machine 0 is not
        // everyone's first target). The workers run these while the
        // receive loop below drains arrivals — true send-while-receive.
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
            Vec::with_capacity(p.saturating_sub(1));
        for step in 1..p {
            let dst = (id + step) % p;
            let slice = &data[send_offsets[dst]..send_offsets[dst + 1]];
            if slice.is_empty() {
                continue;
            }
            // analyze: allow(hot-path-alloc): one fabric-handle clone per
            // destination task, O(p) per exchange.
            let sender = sender.clone();
            // analyze: allow(hot-path-alloc): one pool-handle clone per
            // destination task; the chunks inside are recycled, not allocated.
            let pool = self.pool.clone();
            let base = my_base_at[dst];
            let lane = 1 + tasks.len() as u32;
            let index = tasks.len() as u64;
            tasks.push(task::traced_task(
                // analyze: allow(hot-path-alloc): per-task trace-sink handle,
                // O(p) per exchange, None-cheap when untraced.
                self.trace.clone(),
                lane,
                dst as u64,
                index,
                // analyze: allow(hot-path-alloc): one boxed send task per
                // destination per exchange — task granularity, not chunk.
                Box::new(move || {
                    let mut buf: RequestBuffer<T> =
                        RequestBuffer::with_pool(dst, data_tag, buffer_bytes, base, pool);
                    buf.push_slice(slice, &sender);
                    buf.finish(&sender);
                    // Fault plans may have parked a chunk of this stream
                    // (drop-with-redelivery); the stream is over, so force
                    // it out. No-op without a plan.
                    sender.flush_held_chunks(dst, data_tag);
                }),
            ));
        }

        // The receive loop: place each arriving chunk with one memcpy and
        // hand its backing store to the pool, where this machine's send
        // tasks (and the next exchange) pick it back up. Arriving chunks
        // were acquired from the *sender's* pool, hence `release_inbound`.
        let comm = &mut self.comm;
        let pool = &self.pool;
        let stats = &self.stats;
        // analyze: allow(hot-path-alloc): one trace-sink handle for the
        // whole receive loop.
        let trace = self.trace.clone();
        let out_ptr = out.as_mut_ptr();
        let placed = task.run_tasks_overlapping(tasks, move || {
            let loop_start = trace.as_ref().map(|t| t.now_ns());
            let mut remote_received = 0usize;
            while remote_received < expected_remote {
                let pkt = comm.recv_packet(data_tag);
                let src = pkt.src;
                let (offset, chunk) = pkt.into_value::<(usize, Vec<T>)>();
                // SAFETY: the sender addressed this chunk inside the run
                // reserved for it by the count matrix, so
                // `offset + len <= total`; only this thread writes `out`.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        chunk.as_ptr(),
                        out_ptr.add(offset).cast::<T>(),
                        chunk.len(),
                    );
                }
                ledger.record(offset, chunk.len());
                remote_received += chunk.len();
                let bytes = chunk.len() * std::mem::size_of::<T>();
                stats.exchange.record_bytes_placed(bytes);
                if let Some(t) = &trace {
                    t.instant(LANE_MAIN, EventKind::ChunkRecv, src as u64, bytes as u64);
                    t.instant(LANE_MAIN, EventKind::ChunkPlace, offset as u64, bytes as u64);
                }
                pool.release_inbound(chunk);
            }
            // Debug builds: prove the self-copy and the arrived chunks
            // tiled [0, total) exactly once (§IV-C disjoint placement).
            ledger.finish();
            if let (Some(t), Some(t0)) = (&trace, loop_start) {
                t.span_since(
                    LANE_MAIN,
                    EventKind::RecvLoop,
                    t0,
                    expected_remote as u64,
                    0,
                );
            }
            remote_received
        });
        assert_eq!(
            self_len + placed,
            total,
            "exchange did not fill the output buffer"
        );

        let out = {
            let mut md = ManuallyDrop::new(out);
            let (ptr, len, cap) = (md.as_mut_ptr(), md.len(), md.capacity());
            // SAFETY: all `total` slots initialized (asserted above);
            // Vec<MaybeUninit<T>> and Vec<T> share layout for the same T.
            unsafe { Vec::from_raw_parts(ptr as *mut T, len, cap) }
        };
        (out, source_bounds)
    }

    /// The pre-rework exchange: sequential per-destination sends from the
    /// receive thread, a freshly allocated `Vec` per chunk, and
    /// element-wise placement loops. Kept verbatim as the *before* case
    /// for the `exp exchange` microbenchmark and the regression tests;
    /// production callers use
    /// [`exchange_by_offsets`](MachineCtx::exchange_by_offsets).
    // analyze: allow(panic-surface): reference implementation kept for
    // equivalence tests; same bounded-by-count-phase indexing as the
    // pooled path.
    pub fn exchange_by_offsets_legacy<T: Copy + Send + Sync + 'static>(
        &mut self,
        data: &[T],
        send_offsets: &[usize],
    ) -> (Vec<T>, Vec<usize>) {
        assert_eq!(send_offsets.len(), self.p + 1, "need p+1 send offsets");
        assert_eq!(*send_offsets.last().unwrap(), data.len());

        let counts_tag = Tag {
            kind: kinds::EXCHANGE_COUNTS,
            seq: self.next_seq(),
        };
        let (matrix, source_bounds, my_base_at) =
            self.exchange_count_phase(send_offsets, counts_tag);
        let total = source_bounds[self.p];

        let data_tag = Tag {
            kind: kinds::EXCHANGE_DATA,
            seq: self.next_seq(),
        };
        let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(total);
        // SAFETY: every slot is written exactly once below; asserted by the
        // `written` accounting before the final transmute.
        unsafe { out.set_len(total) };
        let mut written = 0usize;
        let mut ledger = self.comm.checker().offset_ledger(self.id, data_tag, total);

        // Self part: copied straight into place, no fabric involved.
        {
            let self_slice = &data[send_offsets[self.id]..send_offsets[self.id + 1]];
            let base = source_bounds[self.id];
            for (i, &v) in self_slice.iter().enumerate() {
                out[base + i] = MaybeUninit::new(v);
            }
            ledger.record(base, self_slice.len());
            written += self_slice.len();
        }

        let expected_remote = total - (matrix[self.id][self.id] as usize);
        let sender = self.comm.sender();
        let mut remote_received = 0usize;

        // Send to each destination in staggered order, draining arrivals
        // between flushes.
        for step in 1..self.p {
            let dst = (self.id + step) % self.p;
            let slice = &data[send_offsets[dst]..send_offsets[dst + 1]];
            if !slice.is_empty() {
                let mut buf: RequestBuffer<T> =
                    RequestBuffer::new(dst, data_tag, self.buffer_bytes, my_base_at[dst]);
                buf.push_slice(slice, &sender);
                buf.flush(&sender);
                // Redeliver any chunk a fault plan parked for this stream.
                sender.flush_held_chunks(dst, data_tag);
            }
            while let Some(pkt) = self.comm.try_recv_packet(data_tag) {
                let (offset, chunk) = pkt.into_value::<(usize, Vec<T>)>();
                for (i, &v) in chunk.iter().enumerate() {
                    out[offset + i] = MaybeUninit::new(v);
                }
                ledger.record(offset, chunk.len());
                remote_received += chunk.len();
                written += chunk.len();
            }
        }

        // Block for the rest.
        while remote_received < expected_remote {
            let pkt = self.comm.recv_packet(data_tag);
            let (offset, chunk) = pkt.into_value::<(usize, Vec<T>)>();
            for (i, &v) in chunk.iter().enumerate() {
                out[offset + i] = MaybeUninit::new(v);
            }
            ledger.record(offset, chunk.len());
            remote_received += chunk.len();
            written += chunk.len();
        }
        ledger.finish();
        assert_eq!(written, total, "exchange did not fill the output buffer");

        let out = {
            let mut md = ManuallyDrop::new(out);
            let (ptr, len, cap) = (md.as_mut_ptr(), md.len(), md.capacity());
            // SAFETY: all `total` slots initialized (asserted above);
            // Vec<MaybeUninit<T>> and Vec<T> share layout for the same T.
            unsafe { Vec::from_raw_parts(ptr as *mut T, len, cap) }
        };
        (out, source_bounds)
    }

    /// Shared count phase of both exchange variants: all-gathers the
    /// per-destination counts and derives (count matrix, receiver-side
    /// source bounds, this sender's base offset at each destination).
    // analyze: allow(panic-surface): the count matrix is dense p×p by
    // construction; indexing by machine id cannot miss.
    // analyze: allow(hot-path-alloc): O(p) control-plane allocations per
    // collective call — gather/broadcast bookkeeping scales with the
    // machine count, not the element count, and the payloads escape to
    // the caller.
    fn exchange_count_phase(
        &mut self,
        send_offsets: &[usize],
        counts_tag: Tag,
    ) -> (Vec<Vec<u64>>, Vec<usize>, Vec<usize>) {
        let my_counts: Vec<u64> = (0..self.p)
            .map(|j| (send_offsets[j + 1] - send_offsets[j]) as u64)
            .collect();
        let matrix = self.all_gather_with_tag(my_counts, counts_tag);

        // Receiver layout: arrivals from lower-numbered sources first.
        let mut source_bounds = Vec::with_capacity(self.p + 1);
        source_bounds.push(0usize);
        for src in 0..self.p {
            let c = matrix[src][self.id] as usize;
            source_bounds.push(source_bounds[src] + c);
        }

        // Sender-side base offset at each destination.
        let my_base_at: Vec<usize> = (0..self.p)
            .map(|dst| (0..self.id).map(|s| matrix[s][dst] as usize).sum())
            .collect();
        (matrix, source_bounds, my_base_at)
    }

    /// All-gather with a caller-provided tag (used by the exchange's count
    /// phase so counts and data cannot be confused). One shared payload
    /// per contributor; per-receiver wire accounting is unchanged.
    // analyze: allow(panic-surface): indexing is by machine id < p and a
    // missing packet is a protocol bug worth a panic.
    // analyze: allow(hot-path-alloc): O(p) control-plane allocations per
    // collective call — gather/broadcast bookkeeping scales with the
    // machine count, not the element count, and the payloads escape to
    // the caller.
    fn all_gather_with_tag<T: Send + Sync + Clone + 'static>(
        &mut self,
        data: Vec<T>,
        tag: Tag,
    ) -> Vec<Vec<T>> {
        let shared = Arc::new(data);
        let sender = self.comm.sender();
        for dst in 0..self.p {
            if dst != self.id {
                sender.send_shared_vec(dst, tag, shared.clone());
            }
        }
        let mut received: Vec<Option<Vec<T>>> = (0..self.p).map(|_| None).collect();
        let mine = Arc::try_unwrap(shared).unwrap_or_else(|a| (*a).clone());
        received[self.id] = Some(mine);
        for _ in 1..self.p {
            let (src, v) = self.comm.recv_shared_vec::<T>(tag);
            debug_assert!(received[src].is_none());
            received[src] = Some(v);
        }
        received
            .into_iter()
            .map(|v| v.expect("missing all_gather part"))
            .collect()
    }
}
