//! The data manager's request buffers (§III / §IV-B).
//!
//! PGX.D buffers outgoing remote writes per destination and ships a buffer
//! when it reaches its maximum size (256 KiB, the empirically tuned value
//! the sampling step also keys off) or when the worker finishes its
//! scheduled tasks. [`RequestBuffer`] reproduces that: elements pushed for
//! a destination accumulate until the buffer holds `capacity_bytes` worth,
//! then flush as one [`OffsetChunk`] packet tagged for the exchange.

use crate::comm::{CommSender, Tag};

/// A chunk of exchange data addressed to a receiver-side element offset,
/// so the receiver can write it straight into its preallocated output
/// (the §IV-C offset-write mechanism).
pub struct OffsetChunk<T> {
    /// Element offset in the receiver's assembled output buffer.
    pub offset: usize,
    /// The elements themselves.
    pub data: Vec<T>,
}

/// Per-destination outgoing buffer that flushes at a byte capacity.
pub struct RequestBuffer<T> {
    dst: usize,
    tag: Tag,
    /// Flush threshold in bytes (PGX.D: 256 KiB).
    capacity_bytes: usize,
    /// Receiver-side element offset the *next* flushed chunk starts at.
    next_offset: usize,
    buf: Vec<T>,
    flushed_chunks: usize,
}

impl<T: Send + Copy + 'static> RequestBuffer<T> {
    /// A buffer for `dst`, starting at receiver-side offset `base_offset`.
    pub fn new(dst: usize, tag: Tag, capacity_bytes: usize, base_offset: usize) -> Self {
        let cap_elems = Self::capacity_elems(capacity_bytes);
        RequestBuffer {
            dst,
            tag,
            capacity_bytes,
            next_offset: base_offset,
            buf: Vec::with_capacity(cap_elems),
            flushed_chunks: 0,
        }
    }

    /// Elements that fit under the byte capacity (at least 1).
    fn capacity_elems(capacity_bytes: usize) -> usize {
        (capacity_bytes / std::mem::size_of::<T>().max(1)).max(1)
    }

    /// Queues one element, flushing if the buffer reaches capacity.
    pub fn push(&mut self, value: T, sender: &CommSender) {
        self.buf.push(value);
        if self.buf.len() >= Self::capacity_elems(self.capacity_bytes) {
            self.flush(sender);
        }
    }

    /// Queues a slice, flushing as capacity boundaries are crossed.
    pub fn push_slice(&mut self, values: &[T], sender: &CommSender) {
        let cap = Self::capacity_elems(self.capacity_bytes);
        let mut rest = values;
        while !rest.is_empty() {
            let room = cap - self.buf.len();
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() >= cap {
                self.flush(sender);
            }
        }
    }

    /// Ships whatever is buffered as one offset-addressed chunk.
    pub fn flush(&mut self, sender: &CommSender) {
        if self.buf.is_empty() {
            return;
        }
        let cap = Self::capacity_elems(self.capacity_bytes);
        let data = std::mem::replace(&mut self.buf, Vec::with_capacity(cap));
        let chunk = OffsetChunk {
            offset: self.next_offset,
            data,
        };
        self.next_offset += chunk.data.len();
        let wire_bytes = std::mem::size_of::<T>() * chunk.data.len();
        self.flushed_chunks += 1;
        // OffsetChunk is sent as a value payload; wire cost is its data.
        sender_send_chunk(sender, self.dst, self.tag, chunk, wire_bytes);
    }

    /// Number of chunks flushed so far.
    pub fn flushed_chunks(&self) -> usize {
        self.flushed_chunks
    }

    /// Elements currently buffered (not yet flushed).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// The destination machine.
    pub fn dst(&self) -> usize {
        self.dst
    }
}

fn sender_send_chunk<T: Send + 'static>(
    sender: &CommSender,
    dst: usize,
    tag: Tag,
    chunk: OffsetChunk<T>,
    wire_bytes: usize,
) {
    // The payload travels as an `(offset, Vec<T>)` pair; the wire cost is
    // the element data plus the 8-byte offset header.
    sender.send_value_with_bytes(dst, tag, (chunk.offset, chunk.data), wire_bytes + 8);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommManager;
    use crate::metrics::CommStats;
    use std::sync::Arc;

    fn fabric2() -> Vec<CommManager> {
        CommManager::fabric(2, Arc::new(CommStats::new(2, Default::default())))
    }

    #[test]
    fn flushes_on_capacity() {
        let mut f = fabric2();
        let mut m1 = f.pop().unwrap();
        let m0 = f.pop().unwrap();
        let tag = Tag::user(0, 0);
        // capacity = 32 bytes = 4 u64 elements
        let mut buf: RequestBuffer<u64> = RequestBuffer::new(1, tag, 32, 100);
        let sender = m0.sender();
        for v in 0..10u64 {
            buf.push(v, &sender);
        }
        assert_eq!(buf.flushed_chunks(), 2);
        assert_eq!(buf.pending(), 2);
        buf.flush(&sender);
        assert_eq!(buf.flushed_chunks(), 3);

        // Receiver sees three chunks with consecutive offsets.
        let (_, c1) = m1.recv_value::<(usize, Vec<u64>)>(tag);
        let (_, c2) = m1.recv_value::<(usize, Vec<u64>)>(tag);
        let (_, c3) = m1.recv_value::<(usize, Vec<u64>)>(tag);
        assert_eq!(c1.0, 100);
        assert_eq!(c1.1, vec![0, 1, 2, 3]);
        assert_eq!(c2.0, 104);
        assert_eq!(c2.1, vec![4, 5, 6, 7]);
        assert_eq!(c3.0, 108);
        assert_eq!(c3.1, vec![8, 9]);
    }

    #[test]
    fn push_slice_spans_multiple_chunks() {
        let mut f = fabric2();
        let mut m1 = f.pop().unwrap();
        let m0 = f.pop().unwrap();
        let tag = Tag::user(0, 1);
        let mut buf: RequestBuffer<u32> = RequestBuffer::new(1, tag, 16, 0); // 4 elems
        let values: Vec<u32> = (0..11).collect();
        buf.push_slice(&values, &m0.sender());
        buf.flush(&m0.sender());
        let mut got = vec![0u32; 11];
        for _ in 0..3 {
            let (_, (off, data)) = m1.recv_value::<(usize, Vec<u32>)>(tag);
            got[off..off + data.len()].copy_from_slice(&data);
        }
        assert_eq!(got, values);
    }

    #[test]
    fn empty_flush_is_noop() {
        let mut f = fabric2();
        let _m1 = f.pop().unwrap();
        let m0 = f.pop().unwrap();
        let mut buf: RequestBuffer<u64> = RequestBuffer::new(1, Tag::user(0, 2), 64, 0);
        buf.flush(&m0.sender());
        assert_eq!(buf.flushed_chunks(), 0);
    }

    #[test]
    fn tiny_capacity_still_makes_progress() {
        let mut f = fabric2();
        let mut m1 = f.pop().unwrap();
        let m0 = f.pop().unwrap();
        let tag = Tag::user(0, 3);
        // capacity smaller than one element: every push flushes.
        let mut buf: RequestBuffer<u64> = RequestBuffer::new(1, tag, 1, 0);
        buf.push(5, &m0.sender());
        buf.push(6, &m0.sender());
        assert_eq!(buf.flushed_chunks(), 2);
        let (_, (o1, d1)) = m1.recv_value::<(usize, Vec<u64>)>(tag);
        assert_eq!((o1, d1), (0, vec![5]));
        let (_, (o2, d2)) = m1.recv_value::<(usize, Vec<u64>)>(tag);
        assert_eq!((o2, d2), (1, vec![6]));
    }
}
