//! The data manager's request buffers (§III / §IV-B).
//!
//! PGX.D buffers outgoing remote writes per destination and ships a buffer
//! when it reaches its maximum size (256 KiB, the empirically tuned value
//! the sampling step also keys off) or when the worker finishes its
//! scheduled tasks. [`RequestBuffer`] reproduces that: elements pushed for
//! a destination accumulate until the buffer holds `capacity_bytes` worth,
//! then flush as one [`OffsetChunk`] packet tagged for the exchange.

use crate::comm::{CommSender, Tag};
use crate::pool::ChunkPool;
use crate::trace::EventKind;
use std::sync::Arc;

/// A chunk of exchange data addressed to a receiver-side element offset,
/// so the receiver can write it straight into its preallocated output
/// (the §IV-C offset-write mechanism).
pub struct OffsetChunk<T> {
    /// Element offset in the receiver's assembled output buffer.
    pub offset: usize,
    /// The elements themselves.
    pub data: Vec<T>,
}

/// Per-destination outgoing buffer that flushes at a byte capacity.
pub struct RequestBuffer<T> {
    dst: usize,
    tag: Tag,
    /// Elements per chunk under the byte capacity (at least 1), computed
    /// once at construction.
    cap_elems: usize,
    /// Receiver-side element offset the *next* flushed chunk starts at.
    next_offset: usize,
    buf: Vec<T>,
    flushed_chunks: usize,
    /// Recycled backing stores for flushed chunks; `None` ⇒ allocate fresh.
    pool: Option<Arc<ChunkPool>>,
}

impl<T: Send + Copy + 'static> RequestBuffer<T> {
    /// A buffer for `dst`, starting at receiver-side offset `base_offset`.
    pub fn new(dst: usize, tag: Tag, capacity_bytes: usize, base_offset: usize) -> Self {
        let cap_elems = Self::capacity_elems(capacity_bytes);
        RequestBuffer {
            dst,
            tag,
            cap_elems,
            next_offset: base_offset,
            buf: Vec::with_capacity(cap_elems),
            flushed_chunks: 0,
            pool: None,
        }
    }

    /// Like [`new`](RequestBuffer::new), but chunk backing stores are
    /// acquired from `pool` instead of allocated — in a steady-state
    /// exchange the receiver releases consumed chunks back, so the same
    /// allocations circulate for the whole run.
    pub fn with_pool(
        dst: usize,
        tag: Tag,
        capacity_bytes: usize,
        base_offset: usize,
        pool: Arc<ChunkPool>,
    ) -> Self {
        let cap_elems = Self::capacity_elems(capacity_bytes);
        RequestBuffer {
            dst,
            tag,
            cap_elems,
            next_offset: base_offset,
            buf: pool.acquire(cap_elems),
            flushed_chunks: 0,
            pool: Some(pool),
        }
    }

    /// Elements that fit under the byte capacity (at least 1).
    fn capacity_elems(capacity_bytes: usize) -> usize {
        (capacity_bytes / std::mem::size_of::<T>().max(1)).max(1)
    }

    /// Queues one element, flushing if the buffer reaches capacity.
    pub fn push(&mut self, value: T, sender: &CommSender) {
        self.buf.push(value);
        if self.buf.len() >= self.cap_elems {
            self.flush(sender);
        }
    }

    /// Queues a slice, flushing as capacity boundaries are crossed. The
    /// copy into the buffer is a bulk `extend_from_slice` (memcpy for the
    /// `Copy` element types the exchange moves), not an element loop.
    pub fn push_slice(&mut self, values: &[T], sender: &CommSender) {
        let mut rest = values;
        while !rest.is_empty() {
            let room = self.cap_elems - self.buf.len();
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() >= self.cap_elems {
                self.flush(sender);
            }
        }
    }

    /// Ships whatever is buffered as one offset-addressed chunk.
    pub fn flush(&mut self, sender: &CommSender) {
        if self.buf.is_empty() {
            return;
        }
        let fresh = match &self.pool {
            Some(pool) => pool.acquire(self.cap_elems),
            None => Vec::with_capacity(self.cap_elems),
        };
        let data = std::mem::replace(&mut self.buf, fresh);
        let offset = self.next_offset;
        self.next_offset += data.len();
        self.flushed_chunks += 1;
        self.note_flush(sender, data.len());
        sender.send_offset_chunk(self.dst, self.tag, offset, data);
    }

    /// Flushes any remainder and retires the buffer. Unlike
    /// [`flush`](RequestBuffer::flush), no replacement backing store is
    /// acquired — and an unused pooled backing store is returned to the
    /// pool — so a steady-state exchange's acquires and releases balance
    /// exactly (the protocol checker's chunk-custody ledger verifies this
    /// balance at every barrier in debug builds).
    pub fn finish(mut self, sender: &CommSender) {
        let data = std::mem::take(&mut self.buf);
        if data.is_empty() {
            if let Some(pool) = &self.pool {
                if data.capacity() > 0 {
                    pool.release(data);
                }
            }
            return;
        }
        let offset = self.next_offset;
        self.next_offset += data.len();
        self.flushed_chunks += 1;
        self.note_flush(sender, data.len());
        sender.send_offset_chunk(self.dst, self.tag, offset, data);
    }

    /// Marks a buffer flush in the run's trace (distinct from the
    /// [`ChunkSend`](EventKind::ChunkSend) the sender emits: a flush is
    /// the data-manager capacity edge, a send is the fabric edge).
    fn note_flush(&self, sender: &CommSender, elems: usize) {
        if let Some(t) = sender.trace() {
            t.instant(
                1 + self.dst as u32,
                EventKind::ChunkFlush,
                self.dst as u64,
                (elems * std::mem::size_of::<T>()) as u64,
            );
        }
    }

    /// Number of chunks flushed so far.
    pub fn flushed_chunks(&self) -> usize {
        self.flushed_chunks
    }

    /// Elements currently buffered (not yet flushed).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// The destination machine.
    pub fn dst(&self) -> usize {
        self.dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommManager;
    use crate::metrics::CommStats;
    use std::sync::Arc;

    fn fabric2() -> Vec<CommManager> {
        CommManager::fabric(2, Arc::new(CommStats::new(2, Default::default())))
    }

    #[test]
    fn flushes_on_capacity() {
        let mut f = fabric2();
        let mut m1 = f.pop().unwrap();
        let m0 = f.pop().unwrap();
        let tag = Tag::user(0, 0);
        // capacity = 32 bytes = 4 u64 elements
        let mut buf: RequestBuffer<u64> = RequestBuffer::new(1, tag, 32, 100);
        let sender = m0.sender();
        for v in 0..10u64 {
            buf.push(v, &sender);
        }
        assert_eq!(buf.flushed_chunks(), 2);
        assert_eq!(buf.pending(), 2);
        buf.flush(&sender);
        assert_eq!(buf.flushed_chunks(), 3);

        // Receiver sees three chunks with consecutive offsets.
        let (_, c1) = m1.recv_value::<(usize, Vec<u64>)>(tag);
        let (_, c2) = m1.recv_value::<(usize, Vec<u64>)>(tag);
        let (_, c3) = m1.recv_value::<(usize, Vec<u64>)>(tag);
        assert_eq!(c1.0, 100);
        assert_eq!(c1.1, vec![0, 1, 2, 3]);
        assert_eq!(c2.0, 104);
        assert_eq!(c2.1, vec![4, 5, 6, 7]);
        assert_eq!(c3.0, 108);
        assert_eq!(c3.1, vec![8, 9]);
    }

    #[test]
    fn push_slice_spans_multiple_chunks() {
        let mut f = fabric2();
        let mut m1 = f.pop().unwrap();
        let m0 = f.pop().unwrap();
        let tag = Tag::user(0, 1);
        let mut buf: RequestBuffer<u32> = RequestBuffer::new(1, tag, 16, 0); // 4 elems
        let values: Vec<u32> = (0..11).collect();
        buf.push_slice(&values, &m0.sender());
        buf.flush(&m0.sender());
        let mut got = vec![0u32; 11];
        for _ in 0..3 {
            let (_, (off, data)) = m1.recv_value::<(usize, Vec<u32>)>(tag);
            got[off..off + data.len()].copy_from_slice(&data);
        }
        assert_eq!(got, values);
    }

    #[test]
    fn pooled_buffer_recycles_chunk_backing_stores() {
        let stats = Arc::new(CommStats::new(2, Default::default()));
        let mut f = CommManager::fabric(2, stats.clone());
        let mut m1 = f.pop().unwrap();
        let m0 = f.pop().unwrap();
        let tag = Tag::user(0, 9);
        let pool = Arc::new(ChunkPool::new(stats.clone()));
        // 32 bytes = 4 u64 elements per chunk.
        let mut buf: RequestBuffer<u64> = RequestBuffer::with_pool(1, tag, 32, 0, pool.clone());
        let sender = m0.sender();
        for round in 0..3u64 {
            for v in 0..4u64 {
                buf.push(round * 4 + v, &sender);
            }
            // Receiver consumes the chunk and returns its backing store.
            let (_, (off, data)) = m1.recv_value::<(usize, Vec<u64>)>(tag);
            assert_eq!(off as u64, round * 4);
            pool.release(data);
        }
        let ex = stats.summary().exchange;
        assert_eq!(ex.chunks_sent, 3);
        assert_eq!(ex.chunks_recycled, 3);
        // First two acquisitions (initial buf + first flush replacement)
        // miss; once chunks start coming back, flushes hit the pool.
        assert!(ex.pool_hits >= 1, "expected recycled buffers to be reused");
    }

    #[test]
    fn empty_flush_is_noop() {
        let mut f = fabric2();
        let _m1 = f.pop().unwrap();
        let m0 = f.pop().unwrap();
        let mut buf: RequestBuffer<u64> = RequestBuffer::new(1, Tag::user(0, 2), 64, 0);
        buf.flush(&m0.sender());
        assert_eq!(buf.flushed_chunks(), 0);
    }

    #[test]
    fn tiny_capacity_still_makes_progress() {
        let mut f = fabric2();
        let mut m1 = f.pop().unwrap();
        let m0 = f.pop().unwrap();
        let tag = Tag::user(0, 3);
        // capacity smaller than one element: every push flushes.
        let mut buf: RequestBuffer<u64> = RequestBuffer::new(1, tag, 1, 0);
        buf.push(5, &m0.sender());
        buf.push(6, &m0.sender());
        assert_eq!(buf.flushed_chunks(), 2);
        let (_, (o1, d1)) = m1.recv_value::<(usize, Vec<u64>)>(tag);
        assert_eq!((o1, d1), (0, vec![5]));
        let (_, (o2, d2)) = m1.recv_value::<(usize, Vec<u64>)>(tag);
        assert_eq!((o2, d2), (1, vec![6]));
    }
}
